"""Invocation timing for the dimension-II "offered slot" measurement.

Section 4.3 (crediting a Part-I reviewer): "we propose that the
partitioner when invoked calls a timer to determine the invocation
intervals.  These timing calls will impose insignificant overhead,
provided that the invocation frequency is small."  The timer supports a
real clock for live use and an injectable clock for deterministic trace
replay and tests.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["InvocationTimer"]


class InvocationTimer:
    """Records the time between successive partitioner invocations.

    Parameters
    ----------
    clock :
        A monotonically non-decreasing zero-argument callable returning
        seconds; defaults to :func:`time.monotonic`.  Trace replays inject
        a simulated clock.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.monotonic
        self._last: float | None = None
        self._intervals: list[float] = []

    def tick(self) -> float | None:
        """Record one invocation; return the interval since the previous.

        The first invocation has no interval and returns ``None``.
        """
        now = self._clock()
        if self._last is not None and now < self._last:
            raise ValueError("clock went backwards")
        interval = None if self._last is None else now - self._last
        self._last = now
        if interval is not None:
            self._intervals.append(interval)
        return interval

    @property
    def intervals(self) -> tuple[float, ...]:
        """All recorded intervals, oldest first."""
        return tuple(self._intervals)

    def mean_interval(self, window: int | None = None) -> float | None:
        """Mean of the last ``window`` intervals (all when ``None``)."""
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        if not self._intervals:
            return None
        data = self._intervals if window is None else self._intervals[-window:]
        return sum(data) / len(data)

    def reset(self) -> None:
        """Forget all recorded history."""
        self._last = None
        self._intervals.clear()
