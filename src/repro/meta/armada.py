"""The ArMADA-style octant baseline (section 3).

ArMADA was "a first attempt at an actual implementation of the model": it
"disregards the system component and uses simple box operations like e.g.
volume-to-surface ratio on the grid hierarchy to determine the
corresponding octant.  The classification is relative to the previous
state (octant)".  We rebuild that scheme as the comparison baseline for
the continuous meta-partitioner:

* three discrete axes (octant approach, Figure 3 left): refinement
  pattern (localized/scattered), time domination (computation/
  communication via volume-to-surface ratio), activity dynamics
  (slow/fast via hierarchy-size change);
* *relative* classification with hysteresis — an axis flips only when its
  feature crosses the threshold by a margin, mimicking ArMADA's
  change-tracking;
* a fixed octant -> partitioner mapping table (as derived for a set of
  partitioners in the cited prior work).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hierarchy import GridHierarchy
from ..partition import (
    DomainSfcPartitioner,
    NatureFableParams,
    NaturePlusFable,
    Partitioner,
    PartitionResult,
    PatchBasedPartitioner,
    StickyRepartitioner,
)
from ..trace import TraceStep

__all__ = ["ArmadaFeatures", "ArmadaClassifier", "armada_octant_table"]


@dataclass(frozen=True, slots=True)
class ArmadaFeatures:
    """The raw box-operation features of one snapshot."""

    volume_to_surface: float
    localization: float
    activity: float


def compute_features(
    hierarchy: GridHierarchy, previous: GridHierarchy | None
) -> ArmadaFeatures:
    """Simple box operations on the hierarchy (no system component)."""
    surface = sum(level.patches.surface_cells for level in hierarchy)
    volume = hierarchy.ncells
    v2s = volume / surface if surface else float(volume)
    # Localization: fraction of refined cells in the largest level-1 patch
    # footprint (scattered refinement spreads it thin).
    if hierarchy.nlevels > 1 and hierarchy.levels[1].ncells:
        biggest = max(b.ncells for b in hierarchy.levels[1].patches)
        localization = biggest / hierarchy.levels[1].ncells
    else:
        localization = 0.0
    if previous is None or previous.ncells == 0:
        activity = 0.0
    else:
        activity = abs(hierarchy.ncells - previous.ncells) / previous.ncells
    return ArmadaFeatures(
        volume_to_surface=v2s, localization=localization, activity=activity
    )


def armada_octant_table(octant: int) -> Partitioner:
    """The fixed octant -> partitioning-technique mapping.

    Bit 0: localized refinement; bit 1: communication dominated; bit 2:
    high activity dynamics.  The assignments follow the qualitative
    guidance of sections 3.1--3.3: scattered+computation -> hybrid;
    localized+computation -> patch-based balance specialist; communication
    dominated -> domain-based SFC; high dynamics -> sticky wrapping
    (cheap, low-migration repartitioning).
    """
    if not 0 <= octant < 8:
        raise ValueError("octant must be in [0, 8)")
    localized = bool(octant & 1)
    comm_dominated = bool(octant & 2)
    dynamic = bool(octant & 4)
    if comm_dominated:
        inner: Partitioner = DomainSfcPartitioner(
            curve="hilbert", unit_size=4, exact=not dynamic
        )
    elif localized:
        inner = PatchBasedPartitioner(strategy="lpt", split_oversized=True)
    else:
        inner = NaturePlusFable(NatureFableParams())
    if dynamic:
        return StickyRepartitioner(inner, migration_budget=0.15)
    return inner


class ArmadaClassifier:
    """Relative, discrete octant classification with hysteresis.

    Parameters
    ----------
    v2s_threshold :
        Volume-to-surface ratio below which the state counts as
        communication dominated (thin/fragmented grids communicate more).
    localization_threshold :
        Largest-patch fraction above which refinement counts as localized.
    activity_threshold :
        Relative size change above which dynamics count as high.
    hysteresis :
        Fractional margin a feature must cross beyond a threshold to flip
        its bit (the "relative to the previous state" behaviour).
    """

    def __init__(
        self,
        v2s_threshold: float = 4.0,
        localization_threshold: float = 0.5,
        activity_threshold: float = 0.15,
        hysteresis: float = 0.2,
    ) -> None:
        if hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        self.v2s_threshold = v2s_threshold
        self.localization_threshold = localization_threshold
        self.activity_threshold = activity_threshold
        self.hysteresis = hysteresis
        self._octant = 0
        self._prev_hierarchy: GridHierarchy | None = None
        self.history: list[int] = []

    def reset(self) -> None:
        """Forget replay state."""
        self._octant = 0
        self._prev_hierarchy = None
        self.history = []

    def _flip(self, current: bool, feature: float, threshold: float, above: bool) -> bool:
        """Hysteresis bit update: flip only past threshold*(1 +/- margin)."""
        m = self.hysteresis
        if current:
            # Need to fall clearly below (or rise clearly above) to clear.
            limit = threshold * (1 - m) if above else threshold * (1 + m)
            return feature > limit if above else feature < limit
        limit = threshold * (1 + m) if above else threshold * (1 - m)
        return feature > limit if above else feature < limit

    def classify(self, hierarchy: GridHierarchy) -> int:
        """The octant of one snapshot (stateful, relative to the last)."""
        f = compute_features(hierarchy, self._prev_hierarchy)
        localized = self._flip(
            bool(self._octant & 1),
            f.localization,
            self.localization_threshold,
            above=True,
        )
        comm = self._flip(
            bool(self._octant & 2),
            f.volume_to_surface,
            self.v2s_threshold,
            above=False,
        )
        dynamic = self._flip(
            bool(self._octant & 4), f.activity, self.activity_threshold, above=True
        )
        self._octant = localized + 2 * comm + 4 * dynamic
        self._prev_hierarchy = hierarchy
        self.history.append(self._octant)
        return self._octant

    def __call__(
        self,
        index: int,
        snapshot: TraceStep,
        previous: PartitionResult | None,
    ) -> Partitioner:
        """Schedule interface: classify and map through the octant table."""
        return armada_octant_table(self.classify(snapshot.hierarchy))
