"""The meta-partitioner: classification state -> partitioner configuration.

The ultimate aim of the research programme (section 1): "being able to
select and configure the optimal partitioner based on the dynamic
properties of the grid hierarchy and the computer".  The continuous
classification space enables "not only a coarse grained partitioner
selection, but also an extremely fine grained partitioner configuration"
(section 4); the rules below implement both stages:

* **Selection** (coarse): dimension I chooses the partitioner family —
  communication-dominated states get strictly domain-based SFC
  decompositions (no inter-level communication), balance-dominated states
  get the patch-based load-balance specialist (section 4's "migrate from
  domain-based techniques toward more elaborate patch-based techniques
  specializing in optimizing load balance"), the middle gets the hybrid.
* **Configuration** (fine): dimension II picks the curve/solver quality
  (Hilbert + exact chains when time is ample, Morton + greedy when speed
  is needed); dimension III wraps the choice in the sticky remapper with a
  migration budget that *shrinks* as ``beta_m`` grows — when the grid
  inherently wants to move a lot of data, the partitioner should resist
  amplifying it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hierarchy import GridHierarchy
from ..model import ClassificationPoint, StateSampler
from ..partition import (
    DomainSfcPartitioner,
    NatureFableParams,
    NaturePlusFable,
    Partitioner,
    PartitionResult,
    PatchBasedPartitioner,
    StickyRepartitioner,
)
from ..trace import TraceStep

__all__ = ["MetaPolicy", "MetaPartitioner", "MetaScheduler"]


@dataclass(frozen=True, slots=True)
class MetaPolicy:
    """Thresholds of the selection/configuration rules.

    The dimension-I cuts are calibrated against the machine-weighted
    dim1 ranges the four paper traces produce: network-starved and
    balanced clusters land below ~0.90 (communication worth optimizing),
    compute-bound machines above ~0.96 (balance is everything), with the
    hybrid serving the band between; the meta-vs-static benchmark sweeps
    the calibration.
    """

    dim1_low: float = 0.90
    dim1_high: float = 0.96
    dim2_speed: float = 0.75
    dim3_sticky: float = 0.35
    sticky_tolerance: float = 1.3
    sticky_cost_ratio: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.dim1_low <= self.dim1_high <= 1.0:
            raise ValueError("need 0 <= dim1_low <= dim1_high <= 1")
        for name in ("dim2_speed", "dim3_sticky"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.sticky_tolerance < 1.0:
            raise ValueError("sticky_tolerance must be >= 1.0")
        if self.sticky_cost_ratio < 0.0:
            raise ValueError("sticky_cost_ratio must be >= 0")


class MetaPartitioner:
    """Maps classification points onto configured partitioners."""

    def __init__(self, policy: MetaPolicy | None = None) -> None:
        self.policy = policy or MetaPolicy()

    def select(
        self, point: ClassificationPoint, sticky_ok: bool = True
    ) -> Partitioner:
        """The configured partitioner for one sampled state.

        ``sticky_ok`` gates the migration-minimizing wrapper: callers with
        cost context (the scheduler) disable it when the modeled migration
        cost is negligible next to the communication the wrapper would
        degrade — the paper's point that attacking data migration
        "trades-off whatever shortcomings the current partitioning is
        suffering from" (section 4), so it must only be done when
        migration is the *dominant* cost.
        """
        p = self.policy
        fast = point.dim2 >= p.dim2_speed
        # --- coarse selection from dimension I -------------------------
        if point.dim1 <= p.dim1_low:
            # Communication matters most: strictly domain-based, best curve
            # affordable.
            inner: Partitioner = DomainSfcPartitioner(
                curve="morton" if fast else "hilbert",
                unit_size=4,
                exact=not fast,
            )
        elif point.dim1 >= p.dim1_high:
            # Load balance matters most (compute-bound system): "migrate
            # from domain-based techniques toward more elaborate patch-
            # based techniques specializing in optimizing load balance"
            # (section 4).
            inner = PatchBasedPartitioner(strategy="lpt", split_oversized=True)
        else:
            # Mixed regime: hybrid defaults (the paper's static setup),
            # upgraded to the locality curve when time is ample.
            params = (
                NatureFableParams()
                if fast
                else NatureFableParams().locality_focused()
            )
            inner = NaturePlusFable(params)
        # --- fine configuration from dimension III ----------------------
        if sticky_ok and point.dim3 >= p.dim3_sticky:
            # High inherent migration: resist amplifying it.  Budget shrinks
            # as beta_m grows.
            budget = max(0.05, 0.5 * (1.0 - point.dim3))
            return StickyRepartitioner(
                inner,
                imbalance_tolerance=p.sticky_tolerance,
                migration_budget=budget,
            )
        return inner


class MetaScheduler:
    """Per-step schedule callable for :meth:`TraceSimulator.run_scheduled`.

    Realizes the fully dynamic PAC of Figure 2: at each regrid the sampler
    classifies the application/system state ab initio and the meta-
    partitioner re-selects and re-configures P.  Holds the running state
    (previous hierarchy, grid-size tracker) across invocations.
    """

    def __init__(
        self,
        sampler: StateSampler | None = None,
        meta: MetaPartitioner | None = None,
    ) -> None:
        self.sampler = sampler or StateSampler()
        self.meta = meta or MetaPartitioner()
        self._prev_hierarchy: GridHierarchy | None = None
        self._tracker_max = 0
        self._last_penalties: tuple[float, float, float] = (0.0, 0.0, 0.0)
        self.history: list[ClassificationPoint] = []

    def reset(self) -> None:
        """Forget replay state (call between traces)."""
        self._prev_hierarchy = None
        self._tracker_max = 0
        self._last_penalties = (0.0, 0.0, 0.0)
        self.history = []

    def classify(self, hierarchy: GridHierarchy) -> ClassificationPoint:
        """Classify one snapshot, updating the running state."""
        from ..model.penalties import (
            communication_penalty,
            dimension1,
            load_imbalance_penalty,
            migration_penalty,
        )

        beta_l = load_imbalance_penalty(hierarchy)
        beta_c = communication_penalty(
            hierarchy,
            nprocs=self.sampler.nprocs,
            ghost_width=self.sampler.ghost_width,
        )
        beta_m = (
            migration_penalty(
                self._prev_hierarchy,
                hierarchy,
                denominator=self.sampler.migration_denominator,
            )
            if self._prev_hierarchy is not None
            else 0.0
        )
        self._tracker_max = max(self._tracker_max, hierarchy.ncells)
        norm_size = (
            hierarchy.ncells / self._tracker_max if self._tracker_max else 0.0
        )
        interval = self.sampler.invocation_interval(hierarchy.workload)
        t2 = self.sampler.tradeoff2.evaluate(
            (beta_l, beta_c, beta_m), hierarchy.ncells, norm_size, interval
        )
        point = ClassificationPoint(
            dim1=dimension1(beta_l, self.sampler.effective_beta_c(beta_c)),
            dim2=t2.dimension2,
            dim3=beta_m,
        )
        self._prev_hierarchy = hierarchy
        self._last_penalties = (beta_l, beta_c, beta_m)
        self.history.append(point)
        return point

    def migration_dominates(self, hierarchy: GridHierarchy) -> bool:
        """Is the predicted migration cost significant next to the
        predicted communication cost of the inter-regrid interval?

        Migration moves about ``beta_m * |H_t|`` points once per regrid;
        ghost communication moves about ``beta_C * workload`` points per
        coarse step, for ``steps_per_snapshot`` steps.  The sticky wrapper
        only pays off when the former is a non-trivial fraction of the
        latter.
        """
        beta_l, beta_c, beta_m = self._last_penalties
        migration_points = beta_m * hierarchy.ncells
        comm_points = (
            beta_c * hierarchy.workload * self.sampler.steps_per_snapshot
        )
        threshold = self.meta.policy.sticky_cost_ratio
        return migration_points > threshold * max(comm_points, 1.0)

    def __call__(
        self,
        index: int,
        snapshot: TraceStep,
        previous: PartitionResult | None,
    ) -> Partitioner:
        """The schedule interface of the simulator."""
        point = self.classify(snapshot.hierarchy)
        sticky_ok = self.migration_dominates(snapshot.hierarchy)
        return self.meta.select(point, sticky_ok=sticky_ok)
