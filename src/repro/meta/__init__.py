"""The meta-partitioner (continuous) and the ArMADA octant baseline."""

from .armada import ArmadaClassifier, ArmadaFeatures, armada_octant_table
from .selector import MetaPartitioner, MetaPolicy, MetaScheduler
from .timer import InvocationTimer

__all__ = [
    "ArmadaClassifier",
    "ArmadaFeatures",
    "armada_octant_table",
    "MetaPartitioner",
    "MetaPolicy",
    "MetaScheduler",
    "InvocationTimer",
]
