"""The warehouse flatten layer: one stored run -> two columnar row groups.

The content-addressed store is the system of record — per-run
``meta.json`` + ``series.npz`` blobs keyed by content hash — but that
shape is wrong for analysis: comparing partitioner trade-off metrics
across apps, scales and machine models (the paper's whole point) means
touching *columns* across millions of runs, not whole blobs.  This
module defines the analytical schema and the pure function that maps a
:class:`~repro.engine.spec.RunResult` onto it:

* the ``runs`` table — one row per stored run: the spec descriptors
  (key, kind, app, ndim, scale, nprocs, partitioner, schedule flag,
  seed, ghost width), the *resolved* machine parameters as
  ``machine_<field>`` columns, the canonical partitioner params as one
  JSON string column, and every scalar summary statistic the executor
  recorded (``summary_<name>``, ``total_execution_seconds``, ...);
* the ``steps`` table — one row per regrid step: ``key`` +
  ``step_index`` plus every simulator/model metric series **exactly as
  stored** (dtype-preserving, so a warehouse scan reconstructs the
  in-memory series bit-identically).

:data:`WAREHOUSE_SCHEMA_VERSION` pins the column semantics; it is
recorded in every dataset manifest and checked on open, so a schema
change retires stale warehouses instead of silently mixing layouts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from ..engine.components import is_schedule, resolve_machine
from ..engine.spec import RunResult, RunSpec

__all__ = [
    "WAREHOUSE_SCHEMA_VERSION",
    "WAREHOUSE_KINDS",
    "PARTITION_COLUMNS",
    "FlatRun",
    "flatten_run",
    "partition_values",
    "partition_path",
]

#: Version of the warehouse column semantics; part of every manifest.
WAREHOUSE_SCHEMA_VERSION = 1

#: Store kinds the warehouse ingests.  Traces carry no metric series
#: (their artifact is the trace itself), so they stay in the store.
WAREHOUSE_KINDS = ("sim", "penalties")

#: Hive partition key, in directory order:
#: ``app=<a>/scale=<s>/partitioner=<p>/part-*.<ext>``.
PARTITION_COLUMNS = ("app", "scale", "partitioner")


def _partitioner_value(spec: RunSpec) -> str:
    """The ``partitioner`` partition value of one spec.

    ``sim`` runs partition by their partitioner/schedule name; model
    sampling runs have no partitioner, so their kind is the value —
    keeping the partition triple total without inventing a fourth
    directory level.
    """
    return spec.partitioner if spec.kind == "sim" else spec.kind


def partition_values(spec: RunSpec) -> dict[str, str]:
    """The hive partition triple ``{app, scale, partitioner}`` of a spec."""
    return {
        "app": spec.app,
        "scale": spec.scale,
        "partitioner": _partitioner_value(spec),
    }


def partition_path(values: dict[str, str]) -> str:
    """``{app: tp2d, ...}`` -> ``"app=tp2d/scale=small/partitioner=..."``."""
    parts = []
    for column in PARTITION_COLUMNS:
        value = str(values[column])
        if "/" in value or "=" in value or not value:
            raise ValueError(
                f"partition value {value!r} for {column!r} cannot form a "
                f"hive directory name"
            )
        parts.append(f"{column}={value}")
    return "/".join(parts)


def _flatten_meta(doc: dict, prefix: str = "") -> dict[str, float]:
    """Numeric scalars of a meta document, flattened by underscore path.

    Nested dicts recurse (``summary.mean_relative_comm`` becomes
    ``summary_mean_relative_comm``); strings and lists are skipped —
    the descriptive fields the tables need (trace name, denominator)
    are explicit columns.
    """
    out: dict[str, float] = {}
    for name in sorted(doc):
        value = doc[name]
        column = f"{prefix}{name}"
        if isinstance(value, dict):
            out.update(_flatten_meta(value, prefix=f"{column}_"))
        elif isinstance(value, bool):
            out[column] = bool(value)
        elif isinstance(value, (int, float)):
            out[column] = value
    return out


@dataclass(frozen=True)
class FlatRun:
    """One stored run flattened onto the warehouse schema.

    ``runs_row`` maps column name -> python scalar; ``steps`` maps
    column name -> 1-d array (all the same length, dtypes exactly as
    stored); ``partition`` is the hive triple both tables file under.
    """

    key: str
    partition: dict[str, str]
    runs_row: dict
    steps: dict[str, np.ndarray]

    @property
    def n_steps(self) -> int:
        return int(self.runs_row["n_steps"])


#: runs-table columns owned by the spec/flatten layer; meta-derived
#: scalar columns never shadow these.
_FIXED_RUNS_COLUMNS = frozenset(
    {
        "key",
        "kind",
        "app",
        "ndim",
        "scale",
        "nprocs",
        "partitioner",
        "is_schedule",
        "seed",
        "ghost_width",
        "migration_denominator",
        "params_json",
        "trace",
        "n_steps",
    }
)


def flatten_run(result: RunResult) -> FlatRun:
    """Flatten one :class:`RunResult` into its two warehouse row groups.

    Raises ``ValueError`` for kinds outside :data:`WAREHOUSE_KINDS` or
    results whose series lengths disagree (a corrupt entry the store
    should have retired).
    """
    spec = result.spec
    if spec.kind not in WAREHOUSE_KINDS:
        raise ValueError(
            f"cannot flatten kind {spec.kind!r}; warehouse ingests "
            f"{WAREHOUSE_KINDS}"
        )
    if not result.arrays:
        raise ValueError(f"result {result.key[:12]} holds no series")
    lengths = {name: arr.shape for name, arr in result.arrays.items()}
    n_steps = next(iter(lengths.values()))[0]
    if any(shape != (n_steps,) for shape in lengths.values()):
        raise ValueError(
            f"result {result.key[:12]} series disagree on length: {lengths}"
        )

    partition = partition_values(spec)
    row: dict = {
        "key": result.key,
        "kind": spec.kind,
        "app": spec.app,
        "ndim": int(spec.ndim),
        "scale": spec.scale,
        "nprocs": int(spec.nprocs),
        "partitioner": partition["partitioner"],
        "is_schedule": bool(
            spec.kind == "sim" and is_schedule(spec.partitioner)
        ),
        "seed": -1 if spec.seed is None else int(spec.seed),
        "ghost_width": int(spec.ghost_width),
        "migration_denominator": spec.migration_denominator,
        "params_json": json.dumps(
            [list(p) for p in spec.params], sort_keys=True,
            separators=(",", ":"),
        ),
        "trace": str(result.meta.get("trace", "")),
        "n_steps": int(n_steps),
    }
    for name, value in asdict(resolve_machine(spec.machine)).items():
        row[f"machine_{name}"] = float(value)
    for column, value in _flatten_meta(result.meta).items():
        if column not in _FIXED_RUNS_COLUMNS:
            row[column] = value

    steps: dict[str, np.ndarray] = {
        "key": np.full(n_steps, result.key),
        "step_index": np.arange(n_steps, dtype=np.int64),
    }
    for name in sorted(result.arrays):
        if name in steps:
            raise ValueError(f"series name {name!r} shadows a schema column")
        steps[name] = result.arrays[name]
    return FlatRun(
        key=result.key, partition=partition, runs_row=row, steps=steps
    )
