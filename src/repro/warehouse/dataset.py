"""The sweep warehouse: a hive-partitioned columnar dataset on disk.

Layout (default root ``<store>/warehouse``, any directory works)::

    <root>/manifest.json                         schema + format + ingested keys
    <root>/runs/app=<a>/scale=<s>/partitioner=<p>/part-<digest>.<ext>
    <root>/steps/app=<a>/scale=<s>/partitioner=<p>/part-<digest>.<ext>

Both tables carry the same hive partition triple, so a query filtered
on app/scale/partitioner prunes whole directories without opening a
single shard.  The shard format (npz by default, Parquet with the
pyarrow extra) is pinned in the manifest — one dataset, one format.

**Incremental, idempotent ingest.**  The manifest records every store
key already flattened into the dataset, so ``build`` ingests exactly
the store keys it has not seen (content-hash keyed: the store key *is*
the content hash).  Re-building over an unchanged store ingests zero
runs; results published while a build runs are picked up by the next
one (or by ``repro warehouse build --follow``).  Ingest is crash-safe
without write-ahead logging:

* a chunk's two shards share one digest name derived from the sorted
  keys they hold, and a chunk *exists* only when both files do —
  readers skip dangling halves, and the next build deletes them and
  re-ingests their keys (the deterministic name makes the common
  crash-retry a byte-identical overwrite);
* complete chunk pairs missing from the manifest (a crash after the
  shard renames, before the manifest write) are *adopted* — their keys
  and row counts are read back from the shards instead of re-ingested.

The flatten step preserves series dtypes exactly, so scanning a run's
steps back out of the warehouse reproduces the stored ``RunResult``
arrays bit-for-bit — the property that lets ``repro report`` render
figures from the warehouse byte-identically to the store-scan path.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from ..engine.spec import RunSpec
from ..engine.store import ResultStore
from ..telemetry import counter, span
from .formats import WarehouseFormat, resolve_format
from .schema import (
    PARTITION_COLUMNS,
    WAREHOUSE_KINDS,
    WAREHOUSE_SCHEMA_VERSION,
    FlatRun,
    flatten_run,
    partition_path,
    partition_values,
)

__all__ = [
    "Warehouse",
    "BuildPlan",
    "BuildReport",
    "default_warehouse_root",
    "render_build_plan",
]

_MANIFEST = "manifest.json"
_TABLES = ("runs", "steps")


def default_warehouse_root(store: ResultStore) -> Path:
    """Where a store's warehouse lives unless overridden: ``<root>/warehouse``."""
    return store.root / "warehouse"


@dataclass(frozen=True)
class BuildPlan:
    """The pre-execution analysis of one ingest: what *would* be written.

    ``partitions`` maps hive path -> ``{"runs", "rows", "bytes"}`` for
    the new work only (``rows`` counts steps-table rows, read from the
    stored npy headers without loading any series; ``bytes`` is the
    size of the source store entries).  ``skipped`` tallies store
    entries the warehouse does not ingest, by reason.
    """

    new_keys: tuple[str, ...]
    partitions: dict[str, dict]
    already_ingested: int
    skipped: dict[str, int] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(p["rows"] for p in self.partitions.values())

    @property
    def total_bytes(self) -> int:
        return sum(p["bytes"] for p in self.partitions.values())


@dataclass(frozen=True)
class BuildReport:
    """What one ``build`` actually ingested."""

    runs: int
    rows: int
    shards: int
    partitions: tuple[str, ...]
    adopted: int = 0
    skipped_corrupt: int = 0


def _series_rows(store: ResultStore, key: str) -> int | None:
    """Steps-row count of a stored result, without loading any array.

    Reads the npy header of the ``step`` member straight out of the
    ``series.npz`` zip directory — a few hundred bytes per entry, which
    is what keeps ``--preview`` cheap on a million-run store.
    """
    path = store.entry_dir(key) / "series.npz"
    try:
        with zipfile.ZipFile(path) as zf:
            with zf.open("step.npy") as fh:
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    shape, _, _ = np.lib.format.read_array_header_1_0(fh)
                else:
                    shape, _, _ = np.lib.format.read_array_header_2_0(fh)
        return int(shape[0])
    except Exception:
        return None


def _chunk_digest(keys: Sequence[str]) -> str:
    """Deterministic shard name stem for the chunk holding ``keys``."""
    joined = "\n".join(sorted(keys))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def _rows_to_columns(rows: list[dict]) -> dict[str, np.ndarray]:
    """Stack aligned runs-table rows into columns (missing -> error)."""
    names = list(rows[0])
    for row in rows[1:]:
        if list(row) != names:
            raise ValueError(
                "runs rows disagree on columns: "
                f"{sorted(set(names) ^ set(row))}"
            )
    return {name: np.array([row[name] for row in rows]) for name in names}


class Warehouse:
    """One hive-partitioned columnar dataset over a result store."""

    def __init__(
        self,
        root: str | Path,
        format: "str | WarehouseFormat | None" = None,
    ) -> None:
        self.root = Path(root)
        self._manifest_path = self.root / _MANIFEST
        existing = self._read_manifest()
        if existing is not None:
            if existing.get("schema") != WAREHOUSE_SCHEMA_VERSION:
                raise ValueError(
                    f"warehouse at {self.root} has schema "
                    f"{existing.get('schema')!r}; this build speaks "
                    f"{WAREHOUSE_SCHEMA_VERSION} — rebuild it from the store"
                )
            pinned = existing.get("format", "npz")
            if format is not None:
                # Compare by name before resolving: asking for an
                # unavailable backend must still report the pin
                # conflict, not the backend's import error.
                requested = (
                    format.name
                    if isinstance(format, WarehouseFormat)
                    else str(format)
                )
                if requested != pinned:
                    raise ValueError(
                        f"warehouse at {self.root} is pinned to the "
                        f"{pinned!r} format; cannot open it as "
                        f"{requested!r}"
                    )
            self.format = (
                format
                if isinstance(format, WarehouseFormat)
                else resolve_format(pinned)
            )
            self._manifest = existing
        else:
            self.format = resolve_format(format)
            self._manifest = {
                "schema": WAREHOUSE_SCHEMA_VERSION,
                "format": self.format.name,
                "ingested": {},
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Warehouse({str(self.root)!r}, format={self.format.name!r})"

    # -- manifest ----------------------------------------------------------
    def _read_manifest(self) -> dict | None:
        try:
            return json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _save_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._manifest_path.with_name(
            f".{_MANIFEST}.{os.getpid()}.tmp"
        )
        tmp.write_text(
            json.dumps(self._manifest, sort_keys=True, indent=1),
            encoding="utf-8",
        )
        os.replace(tmp, self._manifest_path)

    @property
    def manifest(self) -> dict:
        return self._manifest

    def ingested(self) -> dict[str, dict]:
        """Store key -> ``{"partition", "rows"}`` for every ingested run."""
        return self._manifest["ingested"]

    # -- layout ------------------------------------------------------------
    def table_dir(self, table: str) -> Path:
        if table not in _TABLES:
            raise ValueError(f"table must be one of {_TABLES}, got {table!r}")
        return self.root / table

    def partitions(self, table: str = "steps") -> list[str]:
        """Hive partition paths that physically exist for one table."""
        base = self.table_dir(table)
        found = []
        for app_dir in sorted(base.glob("app=*")):
            for scale_dir in sorted(app_dir.glob("scale=*")):
                for part_dir in sorted(scale_dir.glob("partitioner=*")):
                    found.append(
                        str(part_dir.relative_to(base)).replace(os.sep, "/")
                    )
        return found

    def _partition_dir(self, table: str, partition: str) -> Path:
        return self.table_dir(table).joinpath(*partition.split("/"))

    def _chunk_pairs(self, partition: str) -> dict[str, dict[str, Path]]:
        """Digest -> ``{table: shard path}`` for one partition."""
        pairs: dict[str, dict[str, Path]] = {}
        for table in _TABLES:
            pdir = self._partition_dir(table, partition)
            for shard in pdir.glob(f"part-*{self.format.suffix}"):
                digest = shard.name[len("part-"):].removesuffix(
                    self.format.suffix
                )
                pairs.setdefault(digest, {})[table] = shard
        return pairs

    def shards(self, table: str, partition: str) -> list[Path]:
        """Readable shards of one table partition (complete chunks only).

        A chunk exists only when both its ``runs`` and ``steps`` shards
        do; a dangling half is a crashed write the next build cleans up,
        and readers must not surface its rows.
        """
        return sorted(
            paths[table]
            for paths in self._chunk_pairs(partition).values()
            if len(paths) == len(_TABLES)
        )

    def partition_values(self, partition: str) -> dict[str, str]:
        """``"app=tp2d/..."`` -> ``{"app": "tp2d", ...}``."""
        values = dict(part.split("=", 1) for part in partition.split("/"))
        if tuple(values) != PARTITION_COLUMNS:
            raise ValueError(f"malformed partition path {partition!r}")
        return values

    def partition_rows(self) -> dict[str, int]:
        """Manifest-derived steps-row count per partition (for pruning
        telemetry and ``status`` — no shard is opened)."""
        rows: dict[str, int] = {}
        for entry in self.ingested().values():
            rows[entry["partition"]] = (
                rows.get(entry["partition"], 0) + entry["rows"]
            )
        return rows

    # -- planning ----------------------------------------------------------
    def plan(
        self,
        store: ResultStore,
        kinds: Sequence[str] = WAREHOUSE_KINDS,
    ) -> BuildPlan:
        """Analyze an ingest before writing anything (``--preview``)."""
        for kind in kinds:
            if kind not in WAREHOUSE_KINDS:
                raise ValueError(
                    f"cannot ingest kind {kind!r}; choose from "
                    f"{WAREHOUSE_KINDS}"
                )
        ingested = self.ingested()
        new_keys: list[str] = []
        partitions: dict[str, dict] = {}
        already = 0
        skipped: dict[str, int] = {}
        for key, doc in store.iter_results():
            kind = doc.get("kind")
            if kind not in kinds:
                skipped[kind] = skipped.get(kind, 0) + 1
                continue
            if key in ingested:
                already += 1
                continue
            try:
                spec = RunSpec.from_json(doc["spec"])
                partition = partition_path(partition_values(spec))
            except Exception:
                skipped["corrupt"] = skipped.get("corrupt", 0) + 1
                continue
            rows = _series_rows(store, key)
            new_keys.append(key)
            slot = partitions.setdefault(
                partition, {"runs": 0, "rows": 0, "bytes": 0}
            )
            slot["runs"] += 1
            slot["rows"] += rows if rows is not None else 0
            slot["bytes"] += int(doc.get("nbytes", 0))
        return BuildPlan(
            new_keys=tuple(new_keys),
            partitions=partitions,
            already_ingested=already,
            skipped=skipped,
        )

    # -- repair ------------------------------------------------------------
    def _repair_partition(self, partition: str) -> int:
        """Reconcile one partition's shards with the manifest.

        Deletes dangling chunk halves (crash mid-chunk) and adopts
        complete chunks the manifest missed (crash after the renames).
        Returns the number of adopted runs.
        """
        ingested = self.ingested()
        adopted = 0
        for paths in self._chunk_pairs(partition).values():
            if len(paths) < len(_TABLES):
                for half in paths.values():
                    half.unlink(missing_ok=True)
                continue
            run_keys = self.format.read(paths["runs"], columns=["key"])["key"]
            if all(str(k) in ingested for k in run_keys):
                continue
            step_keys = self.format.read(paths["steps"], columns=["key"])[
                "key"
            ]
            uniques, counts = np.unique(step_keys, return_counts=True)
            rows_by_key = {str(k): int(n) for k, n in zip(uniques, counts)}
            for k in run_keys:
                k = str(k)
                if k not in ingested:
                    ingested[k] = {
                        "partition": partition,
                        "rows": rows_by_key.get(k, 0),
                    }
                    adopted += 1
        if adopted:
            self._save_manifest()
        return adopted

    # -- ingest ------------------------------------------------------------
    def _flush_chunk(
        self, partition: str, flats: list[FlatRun]
    ) -> tuple[int, int]:
        """Write one chunk (steps shard, runs shard, manifest) atomically
        enough: the chunk becomes visible only once both shards exist,
        and the manifest write is last."""
        digest = _chunk_digest([f.key for f in flats])
        steps_cols: dict[str, np.ndarray] = {}
        for name in flats[0].steps:
            steps_cols[name] = np.concatenate(
                [f.steps[name] for f in flats]
            )
        runs_cols = _rows_to_columns([f.runs_row for f in flats])
        nbytes = 0
        for table, cols in (("steps", steps_cols), ("runs", runs_cols)):
            shard = self._partition_dir(table, partition) / (
                f"part-{digest}{self.format.suffix}"
            )
            nbytes += self.format.write(shard, cols)
        ingested = self.ingested()
        for flat in flats:
            ingested[flat.key] = {
                "partition": partition,
                "rows": flat.n_steps,
            }
        self._save_manifest()
        return sum(f.n_steps for f in flats), nbytes

    def ingest_keys(
        self,
        store: ResultStore,
        keys: Sequence[str],
        max_rows_per_shard: int = 250_000,
        progress: Callable[[str], None] | None = None,
    ) -> BuildReport:
        """Flatten and append explicit store keys (the post-publish hook
        API; ``build`` is this over a plan's new keys).

        Keys already in the manifest are skipped, so calling this from
        a publish hook and running periodic builds cannot duplicate
        rows.  Chunks are flushed once they reach ``max_rows_per_shard``
        steps rows, so ingest memory stays bounded by the chunk size,
        not the store size.
        """
        if max_rows_per_shard < 1:
            raise ValueError("max_rows_per_shard must be >= 1")
        say = progress or (lambda line: None)
        by_partition: dict[str, list[str]] = {}
        skipped_corrupt = 0
        plan_keys: list[str] = []
        ingested = self.ingested()
        for key in sorted(set(keys)):
            if key in ingested:
                continue
            doc = store.load_meta(key)
            if doc is None:
                skipped_corrupt += 1
                continue
            try:
                spec = RunSpec.from_json(doc["spec"])
                partition = partition_path(partition_values(spec))
            except Exception:
                skipped_corrupt += 1
                continue
            by_partition.setdefault(partition, []).append(key)
            plan_keys.append(key)

        runs = rows = shards = adopted = 0
        touched: list[str] = []
        with span(
            "warehouse.build", cat="warehouse", root=str(self.root),
            format=self.format.name, candidates=len(plan_keys),
        ):
            for partition in sorted(by_partition):
                adopted += self._repair_partition(partition)
                pending = [
                    k for k in by_partition[partition]
                    if k not in self.ingested()
                ]
                if not pending:
                    continue
                buffer: list[FlatRun] = []
                buffered_rows = 0

                def flush() -> None:
                    nonlocal buffer, buffered_rows, rows, runs, shards
                    if not buffer:
                        return
                    with span(
                        "warehouse.flush", cat="warehouse",
                        partition=partition, runs=len(buffer),
                    ):
                        chunk_rows, _ = self._flush_chunk(partition, buffer)
                    rows += chunk_rows
                    runs += len(buffer)
                    shards += 1
                    say(
                        f"  {partition}: +{len(buffer)} runs "
                        f"({chunk_rows} rows)"
                    )
                    buffer = []
                    buffered_rows = 0

                for key in pending:
                    result = store.get_result(key)
                    if result is None:
                        skipped_corrupt += 1
                        continue
                    flat = flatten_run(result)
                    if buffer and (
                        buffered_rows + flat.n_steps > max_rows_per_shard
                        or list(flat.steps) != list(buffer[0].steps)
                        or list(flat.runs_row) != list(buffer[0].runs_row)
                    ):
                        flush()
                    buffer.append(flat)
                    buffered_rows += flat.n_steps
                flush()
                touched.append(partition)
        counter("warehouse.ingest.runs", runs)
        counter("warehouse.ingest.rows", rows)
        return BuildReport(
            runs=runs,
            rows=rows,
            shards=shards,
            partitions=tuple(touched),
            adopted=adopted,
            skipped_corrupt=skipped_corrupt,
        )

    def build(
        self,
        store: ResultStore,
        kinds: Sequence[str] = WAREHOUSE_KINDS,
        max_rows_per_shard: int = 250_000,
        progress: Callable[[str], None] | None = None,
    ) -> BuildReport:
        """Incrementally ingest everything the store holds that the
        warehouse does not.  Idempotent: a second build over an
        unchanged store ingests zero runs."""
        plan = self.plan(store, kinds=kinds)
        return self.ingest_keys(
            store,
            plan.new_keys,
            max_rows_per_shard=max_rows_per_shard,
            progress=progress,
        )

    # -- per-run readback --------------------------------------------------
    def _run_entry(self, key: str) -> dict:
        try:
            return self.ingested()[key]
        except KeyError:
            raise KeyError(
                f"run {key[:12]} is not in the warehouse at {self.root}; "
                f"run `repro warehouse build` first"
            ) from None

    def run_row(self, key: str) -> dict:
        """One run's ``runs``-table row as a dict of python scalars."""
        partition = self._run_entry(key)["partition"]
        for shard in self.shards("runs", partition):
            cols = self.format.read(shard)
            mask = cols["key"] == key
            if mask.any():
                idx = int(np.flatnonzero(mask)[0])
                return {
                    name: col[idx].item()
                    if isinstance(col[idx], np.generic)
                    else col[idx]
                    for name, col in cols.items()
                }
        raise KeyError(
            f"run {key[:12]} is in the manifest but its runs shard is "
            f"missing; rebuild the warehouse at {self.root}"
        )

    def run_series(
        self, key: str, names: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:
        """One run's metric series, reconstructed from the steps table.

        Bit-identical (values *and* dtypes) to the stored
        ``RunResult.arrays`` — the flatten/write/scan pipeline never
        converts a series.
        """
        partition = self._run_entry(key)["partition"]
        wanted = None if names is None else list(names)
        pieces: list[dict[str, np.ndarray]] = []
        for shard in self.shards("steps", partition):
            keys = self.format.read(shard, columns=["key"])["key"]
            mask = keys == key
            if not mask.any():
                continue
            columns = (
                self.format.columns(shard)
                if wanted is None
                else ["step_index", *wanted]
            )
            cols = self.format.read(shard, columns=list(columns))
            pieces.append({name: col[mask] for name, col in cols.items()})
        if not pieces:
            raise KeyError(
                f"run {key[:12]} is in the manifest but its steps rows are "
                f"missing; rebuild the warehouse at {self.root}"
            )
        merged = {
            name: np.concatenate([p[name] for p in pieces])
            for name in pieces[0]
        }
        order = np.argsort(merged["step_index"], kind="stable")
        out = {}
        for name, col in merged.items():
            if name in ("key", "step_index") and (
                wanted is None or name not in wanted
            ):
                continue
            out[name] = col[order]
        return out

    # -- status ------------------------------------------------------------
    def disk_bytes(self) -> int:
        """Total shard bytes on disk (manifest excluded)."""
        return sum(
            f.stat().st_size
            for table in _TABLES
            for f in self.table_dir(table).rglob(f"*{self.format.suffix}")
            if f.is_file()
        )

    def status(self, store: ResultStore | None = None) -> dict:
        """Summary document for ``repro warehouse status``."""
        ingested = self.ingested()
        partitions: dict[str, dict] = {}
        for key, entry in ingested.items():
            slot = partitions.setdefault(
                entry["partition"], {"runs": 0, "rows": 0}
            )
            slot["runs"] += 1
            slot["rows"] += entry["rows"]
        doc = {
            "root": str(self.root),
            "schema": WAREHOUSE_SCHEMA_VERSION,
            "format": self.format.name,
            "runs": len(ingested),
            "rows": sum(p["rows"] for p in partitions.values()),
            "partitions": dict(sorted(partitions.items())),
            "bytes": self.disk_bytes() if self.root.exists() else 0,
        }
        if store is not None:
            plan = self.plan(store)
            doc["pending"] = len(plan.new_keys)
            doc["pending_rows"] = plan.total_rows
        return doc

    def iter_chunks(
        self,
        table: str,
        partition: str,
        columns: Sequence[str] | None = None,
    ) -> Iterator[dict[str, np.ndarray]]:
        """Stream one partition's shards (the query layer's feed)."""
        for shard in self.shards(table, partition):
            yield self.format.read(
                shard, columns=None if columns is None else list(columns)
            )


def render_build_plan(plan: BuildPlan, format_name: str = "npz") -> str:
    """The ``--preview`` partition plan: partitions, rows and bytes
    before anything is written (smart pre-execution analysis)."""
    lines = [
        f"warehouse build plan: {len(plan.new_keys)} new runs, "
        f"{plan.total_rows} steps rows, "
        f"{plan.total_bytes / 1e6:.1f} MB of source entries "
        f"({format_name} backend)"
    ]
    if plan.partitions:
        width = max(len(p) for p in plan.partitions)
        lines.append(
            f"  {'partition':<{width}} {'runs':>6} {'rows':>8} {'kB':>9}"
        )
        for partition in sorted(plan.partitions):
            slot = plan.partitions[partition]
            lines.append(
                f"  {partition:<{width}} {slot['runs']:>6} "
                f"{slot['rows']:>8} {slot['bytes'] / 1024:>9.1f}"
            )
    else:
        lines.append("  nothing to ingest: the warehouse is current")
    detail = [f"{plan.already_ingested} already ingested"]
    detail += [
        f"{count} {reason} skipped"
        for reason, count in sorted(plan.skipped.items())
    ]
    lines.append("  " + ", ".join(detail))
    return "\n".join(lines)
