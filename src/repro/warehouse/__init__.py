"""The sweep warehouse: columnar analytics over the result store.

The content-addressed store (:mod:`repro.engine.store`) is the system
of record — one npz/json blob per run, keyed by content hash.  That is
the right shape for replay and resumability, and the wrong shape for
the paper's actual product: *characterization*, i.e. comparing
partitioner trade-off metrics across applications, scales, machine
models and schedules, at sweep sizes where "load every blob" stops
being a plan.  This package flattens stored runs into hive-partitioned
columnar datasets and answers analytical queries out-of-core:

* :mod:`repro.warehouse.schema` — the flatten layer
  (:func:`flatten_run`): one run -> a ``runs`` row (spec descriptors +
  resolved machine params + scalar summaries) and ``steps`` rows
  (every metric series, dtype-preserving), pinned by
  :data:`WAREHOUSE_SCHEMA_VERSION`;
* :mod:`repro.warehouse.formats` — shard formats behind one
  :class:`WarehouseFormat` interface (registry kind
  ``warehouse-format``): zero-dependency ``npz`` column shards by
  default, Apache Parquet when the optional ``pyarrow`` extra is
  installed;
* :mod:`repro.warehouse.dataset` — the :class:`Warehouse` dataset:
  ``app=<a>/scale=<s>/partitioner=<p>`` hive partitioning, an
  incremental content-hash-keyed ingest manifest (idempotent,
  crash-safe, resumable ``build`` with a ``--preview`` partition
  plan), and bit-identical per-run readback (:meth:`Warehouse.run_series`);
* :mod:`repro.warehouse.query` — streaming :func:`scan` with partition
  pruning and chunked :func:`group_stats` aggregation.

``repro warehouse build | status | query`` is the CLI surface, and
``repro report --from-warehouse`` renders the paper's figures from the
warehouse byte-identically to the store-scan path.
"""

from .dataset import (
    BuildPlan,
    BuildReport,
    Warehouse,
    default_warehouse_root,
    render_build_plan,
)
from .formats import (
    NpzColumnFormat,
    ParquetFormat,
    WarehouseFormat,
    parquet_available,
    resolve_format,
)
from .query import group_stats, scan, scan_table
from .schema import (
    PARTITION_COLUMNS,
    WAREHOUSE_KINDS,
    WAREHOUSE_SCHEMA_VERSION,
    FlatRun,
    flatten_run,
    partition_path,
    partition_values,
)

__all__ = [
    # schema / flatten
    "WAREHOUSE_SCHEMA_VERSION",
    "WAREHOUSE_KINDS",
    "PARTITION_COLUMNS",
    "FlatRun",
    "flatten_run",
    "partition_values",
    "partition_path",
    # formats
    "WarehouseFormat",
    "NpzColumnFormat",
    "ParquetFormat",
    "parquet_available",
    "resolve_format",
    # dataset
    "Warehouse",
    "BuildPlan",
    "BuildReport",
    "default_warehouse_root",
    "render_build_plan",
    # query
    "scan",
    "scan_table",
    "group_stats",
]
