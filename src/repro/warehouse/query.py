"""Out-of-core queries over a warehouse: scan, project, filter, aggregate.

The characterization study's questions are all of the shape "compare a
metric across apps / scales / partitioners / machine models" — column
projections plus grouped aggregation.  This module answers them without
ever materializing the dataset:

* :func:`scan` streams one chunk (dict of aligned columns) per shard,
  pruning whole hive partitions when a filter binds ``app`` / ``scale``
  / ``partitioner`` (no shard in a pruned partition is opened — the
  manifest's per-partition row counts feed the
  ``warehouse.scan.rows_pruned`` telemetry counter);
* :func:`scan_table` concatenates a scan (convenience for small
  results);
* :func:`group_stats` folds a scan into per-group count/mean/std/
  min/max with bounded memory (one running accumulator per group —
  chunked Welford-free sums, never the rows themselves).

Filters are equality / membership: ``{"app": "tp2d"}`` or
``{"partitioner": ("nature+fable", "patch-lpt")}``.  Partition-column
filters prune directories; any other column filters rows per chunk.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..telemetry import counter, span
from .dataset import Warehouse
from .schema import PARTITION_COLUMNS

__all__ = ["scan", "scan_table", "group_stats"]


def _filter_values(value) -> tuple:
    """Normalize one filter into a tuple of accepted values."""
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        return (value,)
    return tuple(value)


def _normalize_filters(filters: Mapping | None) -> dict[str, tuple]:
    return {
        name: _filter_values(value) for name, value in (filters or {}).items()
    }


def _partition_pruned(
    warehouse: Warehouse, partition: str, filters: dict[str, tuple]
) -> bool:
    values = warehouse.partition_values(partition)
    for column in PARTITION_COLUMNS:
        accepted = filters.get(column)
        if accepted is not None and values[column] not in {
            str(v) for v in accepted
        }:
            return True
    return False


def scan(
    warehouse: Warehouse,
    table: str = "steps",
    columns: Sequence[str] | None = None,
    filters: Mapping | None = None,
) -> Iterator[dict[str, np.ndarray]]:
    """Stream a table as per-shard column chunks.

    Parameters
    ----------
    columns :
        Projection; ``None`` yields every column a shard holds.  The
        partition columns (``app``/``scale``/``partitioner``) are valid
        projections of either table — their values come from the hive
        path, so requesting them costs nothing.
    filters :
        Column -> accepted value(s).  Partition-column filters prune
        directories before any I/O; other filters load only the filter
        columns first and mask each chunk.

    Yields chunks whose columns are aligned 1-d arrays; empty chunks
    (fully masked shards) are skipped.  Telemetry counters record rows
    scanned vs. rows pruned (``warehouse.scan.*``).
    """
    filters = _normalize_filters(filters)
    wanted = None if columns is None else list(columns)
    partition_rows = warehouse.partition_rows()
    rows_scanned = rows_pruned = shards_opened = partitions_pruned = 0
    with span(
        "warehouse.scan", cat="warehouse", table=table,
        columns=",".join(wanted) if wanted else "*",
    ) as sp:
        for partition in warehouse.partitions(table):
            if _partition_pruned(warehouse, partition, filters):
                partitions_pruned += 1
                if table == "steps":
                    rows_pruned += partition_rows.get(partition, 0)
                continue
            hive_values = warehouse.partition_values(partition)
            row_filters = {
                name: accepted
                for name, accepted in filters.items()
                if name not in PARTITION_COLUMNS
            }
            for shard in warehouse.shards(table, partition):
                shards_opened += 1
                available = warehouse.format.columns(shard)
                needed = set(row_filters)
                if wanted is not None:
                    needed |= set(wanted)
                needed -= set(PARTITION_COLUMNS)  # synthesized from the path
                missing = sorted(needed - set(available))
                if missing:
                    raise ValueError(
                        f"shard {shard.name} in {partition} has no column(s) "
                        f"{missing}; it holds {sorted(available)} (filter on "
                        f"the partition columns to restrict the scan to one "
                        f"run kind)"
                    )
                load = None if wanted is None else sorted(needed)
                if load is not None and not load:
                    # Only partition columns requested: read one real
                    # column for the row count, synthesize the rest.
                    load = ["key"]
                chunk = warehouse.format.read(shard, columns=load)
                n = len(next(iter(chunk.values())))
                mask = None
                for name, accepted in row_filters.items():
                    hit = np.isin(chunk[name], np.array(accepted))
                    mask = hit if mask is None else (mask & hit)
                if mask is not None:
                    kept = int(mask.sum())
                    rows_pruned += n - kept
                    if kept == 0:
                        continue
                    chunk = {k: v[mask] for k, v in chunk.items()}
                    n = kept
                rows_scanned += n
                out = chunk
                if wanted is not None:
                    out = {}
                    for name in wanted:
                        if name in chunk:
                            out[name] = chunk[name]
                        else:  # a partition column: synthesize from the path
                            out[name] = np.full(n, hive_values[name])
                yield out
        sp.annotate(
            rows=rows_scanned, rows_pruned=rows_pruned,
            shards=shards_opened, partitions_pruned=partitions_pruned,
        )
    counter("warehouse.scan.rows", rows_scanned, table=table)
    counter("warehouse.scan.rows_pruned", rows_pruned, table=table)
    counter("warehouse.scan.shards", shards_opened, table=table)


def scan_table(
    warehouse: Warehouse,
    table: str = "steps",
    columns: Sequence[str] | None = None,
    filters: Mapping | None = None,
) -> dict[str, np.ndarray]:
    """Materialize a (presumably small) scan into one column dict."""
    chunks = list(scan(warehouse, table, columns=columns, filters=filters))
    if not chunks:
        return {}
    return {
        name: np.concatenate([chunk[name] for chunk in chunks])
        for name in chunks[0]
    }


def group_stats(
    warehouse: Warehouse,
    table: str = "steps",
    by: Sequence[str] = ("app",),
    values: Sequence[str] = (),
    filters: Mapping | None = None,
) -> dict[tuple, dict[str, dict]]:
    """Grouped scalar statistics with bounded memory.

    Returns ``{group key tuple: {value column: {count, mean, std, min,
    max}}}``; ``std`` is the population standard deviation (matching
    ``np.std``).  Accumulation is chunked — per group and value column
    only ``(count, sum, sum of squares, min, max)`` are held, so the
    aggregation is out-of-core no matter how many rows the warehouse
    holds.
    """
    by = list(by)
    values = list(values)
    if not by:
        raise ValueError("need at least one group-by column")
    if not values:
        raise ValueError("need at least one value column")
    acc: dict[tuple, dict[str, list]] = {}
    for chunk in scan(
        warehouse, table, columns=[*by, *values], filters=filters
    ):
        group_cols = [np.asarray(chunk[name]) for name in by]
        stacked = np.stack(
            [col.astype(str) for col in group_cols], axis=1
        )
        uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
        for gid, row in enumerate(uniques):
            mask = inverse == gid
            raw_key = tuple(
                col[np.flatnonzero(mask)[0]].item() for col in group_cols
            )
            slot = acc.setdefault(raw_key, {})
            for name in values:
                data = np.asarray(
                    chunk[name][mask], dtype=np.float64
                )
                stats = slot.setdefault(
                    name, [0, 0.0, 0.0, np.inf, -np.inf]
                )
                stats[0] += data.size
                stats[1] += float(data.sum())
                stats[2] += float((data * data).sum())
                if data.size:
                    stats[3] = min(stats[3], float(data.min()))
                    stats[4] = max(stats[4], float(data.max()))
    out: dict[tuple, dict[str, dict]] = {}
    for key in sorted(acc, key=lambda k: tuple(str(v) for v in k)):
        out[key] = {}
        for name, (count, total, sumsq, lo, hi) in acc[key].items():
            mean = total / count if count else float("nan")
            var = max(sumsq / count - mean * mean, 0.0) if count else 0.0
            out[key][name] = {
                "count": int(count),
                "mean": mean,
                "std": float(np.sqrt(var)),
                "min": lo,
                "max": hi,
            }
    return out
