"""Columnar shard formats: one interface, npz default, Parquet optional.

A warehouse shard is one file holding a dict of equally-long columns.
Two backends implement the :class:`WarehouseFormat` interface, both
registered under the ``warehouse-format`` component kind (so
``repro describe --kind warehouse-format`` lists them and plugins can
add more):

* ``npz`` — zero-dependency column shards via ``np.savez``.  Each
  column is one ``.npy`` zip member, so a projection (``columns=...``)
  decompresses only the requested members; numpy pins the zip
  timestamps, so equal columns produce byte-identical shards.  This is
  the default backend: CI and bare installs need no extra wheel.
* ``parquet`` — Apache Parquet via the *optional* ``pyarrow`` extra
  (``pip install repro-samr-meta-partitioner[warehouse]``).  Columns
  map onto arrow types losslessly for every dtype the engine stores
  (int64 / float64 / bool / unicode); scans of the two backends are
  value-identical, which the test suite asserts whenever pyarrow is
  importable.

Writes are atomic (tmp file + rename) so a killed ingest never leaves
a truncated shard behind.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import Sequence

import numpy as np

from ..registry import register, registry

__all__ = [
    "WarehouseFormat",
    "NpzColumnFormat",
    "ParquetFormat",
    "parquet_available",
    "resolve_format",
]


class WarehouseFormat:
    """One columnar shard format: write/read a dict of aligned columns."""

    #: Registry name; pinned in the dataset manifest.
    name: str = ""
    #: Shard filename suffix (``part-<digest><suffix>``).
    suffix: str = ""

    def write(self, path: Path, columns: dict[str, np.ndarray]) -> int:
        """Atomically write one shard; returns its size in bytes."""
        raise NotImplementedError

    def read(
        self, path: Path, columns: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Load a shard (or a column projection of it)."""
        raise NotImplementedError

    def columns(self, path: Path) -> tuple[str, ...]:
        """Column names of a shard, without loading any data."""
        raise NotImplementedError

    def _replace_into(self, tmp: Path, path: Path) -> int:
        path.parent.mkdir(parents=True, exist_ok=True)
        os.replace(tmp, path)
        return path.stat().st_size


def _check_columns(columns: dict[str, np.ndarray]) -> None:
    if not columns:
        raise ValueError("a shard needs at least one column")
    lengths = {name: np.asarray(col).shape for name, col in columns.items()}
    first = next(iter(lengths.values()))
    if len(first) != 1 or any(shape != first for shape in lengths.values()):
        raise ValueError(f"columns must be aligned 1-d arrays, got {lengths}")


@register(
    "warehouse-format",
    "npz",
    description="zero-dependency npz column shards (the default backend)",
)
class NpzColumnFormat(WarehouseFormat):
    """Column shards as ``.npz`` archives (one ``.npy`` member each)."""

    name = "npz"
    suffix = ".npz"

    def write(self, path: Path, columns: dict[str, np.ndarray]) -> int:
        _check_columns(columns)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **{k: np.asarray(v) for k, v in columns.items()})
            return self._replace_into(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def read(
        self, path: Path, columns: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:
        with np.load(path) as npz:
            names = npz.files if columns is None else list(columns)
            return {name: npz[name] for name in names}

    def columns(self, path: Path) -> tuple[str, ...]:
        with zipfile.ZipFile(path) as zf:
            return tuple(
                name.removesuffix(".npy")
                for name in zf.namelist()
                if name.endswith(".npy")
            )


def parquet_available() -> bool:
    """Whether the optional ``pyarrow`` dependency is importable."""
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


@register(
    "warehouse-format",
    "parquet",
    description="Apache Parquet shards (optional pyarrow extra)",
)
class ParquetFormat(WarehouseFormat):
    """Column shards as Parquet files (requires the ``pyarrow`` extra)."""

    name = "parquet"
    suffix = ".parquet"

    def __init__(self) -> None:
        if not parquet_available():
            raise RuntimeError(
                "the 'parquet' warehouse format needs pyarrow; install the "
                "[warehouse] extra or use the default 'npz' backend"
            )

    def write(self, path: Path, columns: dict[str, np.ndarray]) -> int:
        import pyarrow as pa
        import pyarrow.parquet as pq

        _check_columns(columns)
        table = pa.table(
            {name: pa.array(np.asarray(col)) for name, col in columns.items()}
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            pq.write_table(table, tmp)
            return self._replace_into(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def read(
        self, path: Path, columns: Sequence[str] | None = None
    ) -> dict[str, np.ndarray]:
        import pyarrow.parquet as pq

        table = pq.read_table(
            path, columns=None if columns is None else list(columns)
        )
        out: dict[str, np.ndarray] = {}
        for name in table.column_names:
            arr = table.column(name).to_numpy(zero_copy_only=False)
            if arr.dtype == object:
                # Arrow strings come back as objects; the npz backend
                # stores unicode arrays — normalize so backends agree.
                arr = arr.astype(str)
            out[name] = arr
        return out

    def columns(self, path: Path) -> tuple[str, ...]:
        import pyarrow.parquet as pq

        return tuple(pq.read_schema(path).names)


def resolve_format(fmt: "str | WarehouseFormat | None") -> WarehouseFormat:
    """Resolve a format name / instance / ``None`` (-> npz default)."""
    if fmt is None:
        fmt = "npz"
    if isinstance(fmt, WarehouseFormat):
        return fmt
    formats = registry("warehouse-format")
    if fmt not in formats:
        raise ValueError(
            f"unknown warehouse format {fmt!r}; choose from {tuple(formats)}"
        )
    return formats.create(fmt)
