"""The unified component registry: one naming layer for every plugin.

The paper's premise is selecting and configuring components *by name*
from a dynamic state — partitioners above all, but the same goes for
application kernels, machine scenarios, dynamic schedules and workload
scales.  This module is the single place where a name becomes a
configured object:

* a :class:`Registry` per component kind (``app``, ``partitioner``,
  ``schedule``, ``machine``, ``scale``) mapping names to factories;
* decorator registration — ``@register("partitioner", "my-sfc")`` on a
  factory or class is all a new component needs; engine internals are
  never touched;
* introspection — :meth:`Registry.describe` exposes descriptions and
  parameter schemas (names, defaults, annotations) derived from factory
  signatures, which the CLI uses for help text and the registry uses to
  validate ``create()`` parameters up front;
* optional entry-point discovery — distributions can expose a callable
  under the ``repro.components`` entry-point group; it runs (once, on
  the first unresolved name or an explicit :func:`load_plugins`) and
  registers third-party components.

A registry is a live :class:`~collections.abc.Mapping` from names to
factories, so existing ``name in REGISTRY`` / ``REGISTRY[name]`` idioms
keep working while staying current as components are added.

This module imports nothing from the rest of :mod:`repro`, so any layer
(kernels included) can register itself without import cycles.
"""

from __future__ import annotations

import inspect
import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "COMPONENT_KINDS",
    "PLUGIN_GROUP",
    "ParamSpec",
    "RegistryEntry",
    "Registry",
    "registry",
    "register",
    "create",
    "describe",
    "component_kinds",
    "declare_kind",
    "load_plugins",
]

#: Entry-point group scanned by :func:`load_plugins`.
PLUGIN_GROUP = "repro.components"

_REQUIRED = inspect.Parameter.empty


@dataclass(frozen=True)
class ParamSpec:
    """One constructor parameter of a registered component."""

    name: str
    default: Any = _REQUIRED
    annotation: str = ""

    @property
    def required(self) -> bool:
        """Whether the parameter has no default."""
        return self.default is _REQUIRED

    def to_json(self) -> dict:
        """JSON-able form for CLI help and ``describe --json``."""
        doc: dict[str, Any] = {"name": self.name, "required": self.required}
        if self.annotation:
            doc["type"] = self.annotation
        if not self.required:
            doc["default"] = self.default
        return doc


@dataclass(frozen=True)
class RegistryEntry:
    """A named component: factory plus introspection metadata.

    ``params`` is the validated parameter schema, or ``None`` when the
    factory's signature could not be introspected (then ``create()``
    forwards parameters unchecked).
    """

    kind: str
    name: str
    factory: Callable
    description: str = ""
    tags: tuple[str, ...] = ()
    params: tuple[ParamSpec, ...] | None = None


def _annotation_str(annotation: Any) -> str:
    if annotation is _REQUIRED:
        return ""
    if isinstance(annotation, str):  # `from __future__ import annotations`
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _param_schema(
    target: Callable, exclude: tuple[str, ...] = ()
) -> tuple[ParamSpec, ...] | None:
    """Derive a parameter schema from ``target``'s call signature.

    Returns ``None`` when the signature is unavailable or the target
    takes ``**kwargs`` (no finite parameter set to validate against).
    """
    try:
        sig = inspect.signature(target)
    except (TypeError, ValueError):
        return None
    out: list[ParamSpec] = []
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if param.name in exclude or param.name == "self":
            continue
        out.append(
            ParamSpec(
                name=param.name,
                default=param.default,
                annotation=_annotation_str(param.annotation),
            )
        )
    return tuple(out)


class Registry(Mapping):
    """Names -> factories for one component kind.

    Iterating / indexing sees factories (``REGISTRY[name]`` is the
    registered class or function), in registration order; ``create``
    instantiates with validated parameters.
    """

    def __init__(self, kind: str, label: str | None = None) -> None:
        self.kind = kind
        #: Human label used in error messages ("unknown application ...").
        self.label = label or kind
        self._entries: dict[str, RegistryEntry] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"

    # -- Mapping interface -------------------------------------------------
    def __len__(self) -> int:
        load_plugins()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        # Enumeration surfaces must see plugin components too, not just
        # direct name lookups (which discover on a miss).
        load_plugins()
        return iter(self._entries)

    def __getitem__(self, name: str) -> Callable:
        return self.entry(name).factory

    # -- registration ------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Callable | None = None,
        *,
        description: str = "",
        tags: tuple[str, ...] = (),
        schema_from: Callable | None = None,
        schema_exclude: tuple[str, ...] = (),
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        ``schema_from`` points parameter introspection at a different
        callable — for wrapper factories taking ``**params`` whose real
        parameter set lives on the wrapped class (``schema_exclude``
        drops parameters the wrapper binds itself).  Re-registering a
        name raises unless ``replace`` is set.
        """

        def _add(obj: Callable) -> Callable:
            if not callable(obj):
                raise TypeError(
                    f"{self.kind} {name!r}: factory must be callable, "
                    f"got {obj!r}"
                )
            if name in self._entries and not replace:
                raise ValueError(
                    f"{self.label} {name!r} is already registered; pass "
                    f"replace=True to override"
                )
            self._entries[name] = RegistryEntry(
                kind=self.kind,
                name=name,
                factory=obj,
                description=description or (inspect.getdoc(obj) or "").split(
                    "\n"
                )[0],
                tags=tuple(tags),
                params=_param_schema(schema_from or obj, schema_exclude),
            )
            return obj

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> bool:
        """Remove one entry; returns whether anything was removed."""
        return self._entries.pop(name, None) is not None

    # -- lookup ------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """The :class:`RegistryEntry` for ``name`` (KeyError on a miss).

        A miss triggers one entry-point discovery pass before failing,
        so components from installed plugins resolve on first use.
        """
        try:
            return self._entries[name]
        except KeyError:
            if load_plugins() and name in self._entries:
                return self._entries[name]
            raise KeyError(name) from None

    def names(self, tag: str | None = None) -> tuple[str, ...]:
        """Registered names, optionally restricted to one tag."""
        load_plugins()
        if tag is None:
            return tuple(self._entries)
        return tuple(
            name for name, e in self._entries.items() if tag in e.tags
        )

    def _unknown(self, name: str) -> ValueError:
        return ValueError(
            f"unknown {self.label} {name!r}; choose from {tuple(self._entries)}"
        )

    def create(self, name: str, **params):
        """Instantiate the component ``name`` with validated parameters.

        Unknown names and unknown parameter names raise ``ValueError``
        listing the valid choices (parameter validation is skipped when
        the factory's signature is open-ended).
        """
        try:
            entry = self.entry(name)
        except KeyError:
            raise self._unknown(name) from None
        if entry.params is not None:
            valid = {p.name for p in entry.params}
            unknown = sorted(set(params) - valid)
            if unknown:
                raise ValueError(
                    f"unknown parameter(s) {unknown} for {self.label} "
                    f"{name!r}; valid parameters: {sorted(valid)}"
                )
        return entry.factory(**params)

    def describe(self, name: str | None = None) -> dict:
        """Introspection document for one entry, or all of them.

        Per entry: description, tags and the parameter schema (used by
        ``repro describe`` and argument validation).
        """
        if name is None:
            load_plugins()
            return {n: self.describe(n) for n in self._entries}
        try:
            entry = self.entry(name)
        except KeyError:
            raise self._unknown(name) from None
        return {
            "kind": entry.kind,
            "name": entry.name,
            "description": entry.description,
            "tags": list(entry.tags),
            "params": (
                None
                if entry.params is None
                else [p.to_json() for p in entry.params]
            ),
        }


# -- the global kind table -------------------------------------------------

_REGISTRIES: dict[str, Registry] = {}


def declare_kind(kind: str, label: str | None = None) -> Registry:
    """Create (or fetch) the registry for a component kind."""
    if kind not in _REGISTRIES:
        _REGISTRIES[kind] = Registry(kind, label)
    return _REGISTRIES[kind]


for _kind, _label in (
    ("app", "application"),
    ("partitioner", "partitioner"),
    ("schedule", "schedule"),
    ("machine", "machine scenario"),
    ("scale", "workload scale"),
    ("backend", "execution backend"),
    ("warehouse-format", "warehouse format"),
):
    declare_kind(_kind, _label)

#: The built-in component kinds (plugins may declare more).
COMPONENT_KINDS: tuple[str, ...] = tuple(_REGISTRIES)


def component_kinds() -> tuple[str, ...]:
    """Every declared kind, live (built-ins plus plugin-declared ones)."""
    load_plugins()
    return tuple(_REGISTRIES)


def registry(kind: str) -> Registry:
    """The live registry of one component kind."""
    if kind not in _REGISTRIES:
        load_plugins()  # a plugin may declare the kind
    try:
        return _REGISTRIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown component kind {kind!r}; choose from "
            f"{tuple(_REGISTRIES)}"
        ) from None


def register(kind: str, name: str, factory: Callable | None = None, **options):
    """Module-level registration decorator: ``@register(kind, name)``."""
    return registry(kind).register(name, factory, **options)


def create(kind: str, name: str, **params):
    """Instantiate a registered component: ``create("partitioner", ...)``."""
    return registry(kind).create(name, **params)


def describe(kind: str | None = None, name: str | None = None) -> dict:
    """Introspection over one kind (or every kind when omitted)."""
    if kind is None:
        load_plugins()
        return {k: r.describe() for k, r in _REGISTRIES.items()}
    return registry(kind).describe(name)


# -- entry-point discovery -------------------------------------------------

_loaded_groups: set[str] = set()


def load_plugins(group: str = PLUGIN_GROUP, *, reload: bool = False) -> int:
    """Run every ``repro.components`` entry point (once per group).

    Each entry point should resolve to a zero-argument callable that
    performs its registrations; hooks should be idempotent (pass
    ``replace=True`` when re-registering) so ``reload=True`` is safe.
    Returns the number of plugins loaded this call; broken plugins are
    skipped with a warning rather than taking the engine down.
    """
    if group in _loaded_groups and not reload:
        return 0
    _loaded_groups.add(group)
    from importlib import metadata

    count = 0
    try:
        entry_points = list(metadata.entry_points(group=group))
    except Exception:  # pragma: no cover - importlib metadata quirks
        return 0
    for entry_point in entry_points:
        try:
            hook = entry_point.load()
            if callable(hook):
                hook()
            count += 1
        except Exception as exc:
            warnings.warn(
                f"failed to load repro plugin {entry_point.name!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return count
