"""``python -m repro`` — the experiment-engine command line."""

from .engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
