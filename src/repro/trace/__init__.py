"""Trace substrate: regrid-step hierarchy snapshots, serialization, stats."""

from .trace import Trace, TraceStats, TraceStep

__all__ = ["Trace", "TraceStats", "TraceStep"]
