"""Application execution traces: sequences of grid-hierarchy snapshots.

The paper's validation (section 5.1.3) is *trace-driven*: each application
is run once on a single processor, and the state of the SAMR grid
hierarchy is recorded at every regrid step, independent of any
partitioning.  The trace is then replayed through the execution simulator
under different partitioners.  This module is the trace substrate: the
snapshot record, the trace container, JSON (de)serialization and summary
statistics.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..hierarchy import GridHierarchy

__all__ = ["TraceStep", "Trace", "TraceStats"]


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One regrid-step snapshot.

    Parameters
    ----------
    step :
        Coarse time-step index at which the regrid happened.
    time :
        Physical simulation time of the snapshot.
    hierarchy :
        The full grid hierarchy immediately *after* regridding.
    """

    step: int
    time: float
    hierarchy: GridHierarchy

    def to_json(self) -> dict:
        """JSON form of the snapshot."""
        return {
            "step": self.step,
            "time": self.time,
            "hierarchy": self.hierarchy.to_json(),
        }

    @staticmethod
    def from_json(data: dict) -> "TraceStep":
        """Inverse of :meth:`to_json`."""
        return TraceStep(
            step=int(data["step"]),
            time=float(data["time"]),
            hierarchy=GridHierarchy.from_json(data["hierarchy"]),
        )


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of a trace (used in EXPERIMENTS.md tables)."""

    nsteps: int
    min_cells: int
    max_cells: int
    mean_cells: float
    max_levels: int
    mean_patches: float

    def to_json(self) -> dict:
        """JSON form (plain dict of the fields)."""
        return {
            "nsteps": self.nsteps,
            "min_cells": self.min_cells,
            "max_cells": self.max_cells,
            "mean_cells": self.mean_cells,
            "max_levels": self.max_levels,
            "mean_patches": self.mean_patches,
        }


class Trace:
    """An ordered sequence of :class:`TraceStep` snapshots plus metadata.

    Parameters
    ----------
    name :
        Application identifier (``"rm2d"``, ``"bl2d"``, ``"sc2d"``,
        ``"tp2d"`` for the paper's suite).
    steps :
        Snapshots in increasing ``step`` order.
    metadata :
        Free-form generation parameters (resolution, seeds, tolerances);
        persisted alongside the snapshots for reproducibility.
    """

    __slots__ = ("name", "steps", "metadata")

    def __init__(
        self,
        name: str,
        steps: Sequence[TraceStep],
        metadata: dict | None = None,
    ) -> None:
        steps = list(steps)
        if not steps:
            raise ValueError("a trace needs at least one snapshot")
        for prev, cur in zip(steps, steps[1:]):
            if cur.step <= prev.step:
                raise ValueError(
                    f"trace steps must be strictly increasing: "
                    f"{prev.step} then {cur.step}"
                )
        self.name = name
        self.steps = tuple(steps)
        self.metadata = dict(metadata or {})

    # -- container protocol ----------------------------------------------
    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, i: int) -> TraceStep:
        return self.steps[i]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.name!r}, {len(self.steps)} snapshots)"

    # -- derived ----------------------------------------------------------
    def hierarchies(self) -> list[GridHierarchy]:
        """The snapshot hierarchies in order."""
        return [s.hierarchy for s in self.steps]

    def consecutive_pairs(self) -> Iterator[tuple[TraceStep, TraceStep]]:
        """Iterate over ``(H_{t-1}, H_t)`` snapshot pairs."""
        return zip(self.steps, self.steps[1:])

    def stats(self) -> TraceStats:
        """Aggregate size/depth/patch statistics over the trace."""
        cells = [s.hierarchy.ncells for s in self.steps]
        patches = [s.hierarchy.npatches for s in self.steps]
        return TraceStats(
            nsteps=len(self.steps),
            min_cells=min(cells),
            max_cells=max(cells),
            mean_cells=sum(cells) / len(cells),
            max_levels=max(s.hierarchy.nlevels for s in self.steps),
            mean_patches=sum(patches) / len(patches),
        )

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        """Full JSON form of the trace."""
        return {
            "name": self.name,
            "metadata": self.metadata,
            "steps": [s.to_json() for s in self.steps],
        }

    @staticmethod
    def from_json(data: dict) -> "Trace":
        """Inverse of :meth:`to_json`."""
        return Trace(
            name=data["name"],
            steps=[TraceStep.from_json(s) for s in data["steps"]],
            metadata=data.get("metadata", {}),
        )

    def save(self, path: str | Path) -> None:
        """Write the trace as (optionally gzipped) JSON.

        Paths ending in ``.gz`` are gzip-compressed with a pinned header
        timestamp, so equal traces produce byte-identical files no
        matter when or where they were generated (the guarantee "a
        cluster sweep's store is bit-identical to a serial one" rests on
        this).
        """
        path = Path(path)
        payload = json.dumps(self.to_json(), separators=(",", ":"))
        if path.suffix == ".gz":
            with open(path, "wb") as raw:
                with gzip.GzipFile(
                    filename="", mode="wb", fileobj=raw, mtime=0
                ) as fh:
                    fh.write(payload.encode("utf-8"))
        else:
            path.write_text(payload, encoding="utf-8")

    @staticmethod
    def load(path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                data = json.load(fh)
        else:
            data = json.loads(path.read_text(encoding="utf-8"))
        return Trace.from_json(data)
