"""Profiling surfaces over the telemetry event logs.

Three consumers of the raw spans live here:

* :func:`run_scope` — the single integration point the executor wraps
  around every spec execution.  It opens the ``run`` root span, scopes
  the pair-kernel counters to the run (so pruning ratios are per-run
  accurate under any backend), and on success writes a **run profile**
  (``<store>/telemetry/runs/<k..>/<key>.json``: wall time, counter
  snapshot, the span subtree) that ``repro profile <key>`` renders.
  Because it self-activates an ephemeral recorder when telemetry is on
  but no session is live, profiles appear identically whether the run
  happened in-process, in a pool worker, or in a ``repro worker``
  daemon on another host.
* :func:`aggregate_timings` / :func:`render_timings` — ``repro report
  --timings``: fold every run profile of a store into one table of span
  totals across the sweep.
* :func:`render_cluster_status` — ``repro top``: the live worker /
  lease / queue table read straight off the queue directory.

Everything here writes only under ``<store>/telemetry/`` — never into
``objects/`` — so run profiles cannot perturb a content hash.
"""

from __future__ import annotations

import os
import socket
from contextlib import contextmanager
from pathlib import Path

from .core import (
    TelemetryRecorder,
    activate,
    active_recorder,
    deactivate,
    telemetry_mode,
)
from .sinks import read_jsonl, write_json_atomic  # noqa: F401  (re-export)

__all__ = [
    "aggregate_timings",
    "find_run_profiles",
    "load_run_profile",
    "profile_tree",
    "render_cluster_status",
    "render_profile",
    "render_timings",
    "run_profile_path",
    "run_scope",
    "telemetry_root",
]

#: Version stamp of the run-profile document schema.
RUN_PROFILE_SCHEMA = 1


def telemetry_root(store_root: str | os.PathLike) -> Path:
    """Where a store's telemetry artifacts live (sibling of objects/)."""
    return Path(store_root) / "telemetry"


def run_profile_path(store_root: str | os.PathLike, key: str) -> Path:
    """The run-profile document of ``key`` (store-style key sharding)."""
    return telemetry_root(store_root) / "runs" / key[:2] / f"{key}.json"


@contextmanager
def run_scope(spec, store):
    """Instrument one spec execution (see module docstring).

    A no-op when telemetry is off and no recorder is active — the check
    is one global read plus one env read, satisfying the <3% overhead
    budget of the acceptance criteria.
    """
    rec = active_recorder()
    ephemeral: TelemetryRecorder | None = None
    if rec is None:
        if telemetry_mode() == "off":
            yield
            return
        # Telemetry requested but no session: a bare execute() — e.g. a
        # process-pool shard worker.  Record just this run and flush it
        # into the shared per-process event log.
        ephemeral = TelemetryRecorder(
            meta={"session": "exec", "pid": os.getpid(),
                  "host": socket.gethostname()}
        )
        ephemeral.bind_jsonl(
            telemetry_root(store.root)
            / f"exec-{socket.gethostname()}-{os.getpid()}.jsonl"
        )
        rec = activate(ephemeral)
    from ..geometry.pairindex import pair_counters_scope

    key = spec.key()
    failed = False
    try:
        with pair_counters_scope() as frame:
            root = rec.span("run", cat="engine", kind=spec.kind,
                            label=spec.label(), key=key[:12])
            with root:
                try:
                    yield
                except BaseException:
                    failed = True
                    raise
    finally:
        if not failed:
            events = rec.subtree(root.id)
            root_event = next(
                (e for e in events if e.get("id") == root.id), None
            )
            doc = {
                "schema": RUN_PROFILE_SCHEMA,
                "key": key,
                "kind": spec.kind,
                "label": spec.label(),
                "app": spec.app,
                "scale": spec.scale,
                "wall_s": root_event["dur"] if root_event else 0.0,
                "pair_counters": frame.as_dict(),
                "spans": events,
            }
            write_json_atomic(run_profile_path(store.root, key), doc)
        if ephemeral is not None:
            if active_recorder() is ephemeral:
                deactivate()
            ephemeral.flush()
            if telemetry_mode() == "chrome":
                # Sessionless executions (bare `repro run`, pool shards)
                # still get a loadable trace, one file per run.
                from .sinks import write_chrome_trace

                write_chrome_trace(
                    telemetry_root(store.root)
                    / f"exec-{socket.gethostname()}-{os.getpid()}"
                      f"-{key[:12]}.trace.json",
                    ephemeral,
                )


# ---------------------------------------------------------------------------
# run-profile loading
# ---------------------------------------------------------------------------

def find_run_profiles(store_root: str | os.PathLike) -> list[Path]:
    """Every run-profile document under a store, in stable order."""
    runs = telemetry_root(store_root) / "runs"
    if not runs.is_dir():
        return []
    return sorted(runs.glob("*/*.json"))


def load_run_profile(store_root: str | os.PathLike, key_prefix: str) -> dict:
    """Load the unique run profile whose key starts with ``key_prefix``.

    Raises ``FileNotFoundError`` when nothing matches and ``ValueError``
    when the prefix is ambiguous — same contract as store key lookups.
    """
    import json

    matches = [
        path for path in find_run_profiles(store_root)
        if path.stem.startswith(key_prefix)
    ]
    if not matches:
        raise FileNotFoundError(
            f"no run profile matching {key_prefix!r} under "
            f"{telemetry_root(store_root)} — was the run executed with "
            f"telemetry enabled (REPRO_TELEMETRY=json|chrome)?"
        )
    if len(matches) > 1:
        raise ValueError(
            f"key prefix {key_prefix!r} is ambiguous: "
            f"{[p.stem[:12] for p in matches]}"
        )
    return json.loads(matches[0].read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# timing-tree aggregation and rendering
# ---------------------------------------------------------------------------

def profile_tree(events: list[dict]) -> list[dict]:
    """Aggregate span events into a nested name tree.

    Same-named siblings merge (count/total accumulate); each node gets
    ``self`` = total minus its children's totals.  Roots are spans whose
    parent is not in the event list (the stored subtree's top).
    """
    spans = [e for e in events if e.get("type") == "span"]
    ids = {e["id"] for e in spans}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for e in spans:
        if e["parent"] in ids:
            children.setdefault(e["parent"], []).append(e)
        else:
            roots.append(e)

    def aggregate(level: list[dict]) -> list[dict]:
        groups: dict[str, dict] = {}
        for e in level:
            g = groups.setdefault(
                e["name"], {"name": e["name"], "count": 0, "total": 0.0,
                            "ids": []}
            )
            g["count"] += 1
            g["total"] += e["dur"]
            g["ids"].append(e["id"])
        nodes = []
        for g in groups.values():
            kids = aggregate(
                [c for i in g["ids"] for c in children.get(i, [])]
            )
            child_total = sum(k["total"] for k in kids)
            nodes.append({
                "name": g["name"],
                "count": g["count"],
                "total": g["total"],
                "self": max(0.0, g["total"] - child_total),
                "children": kids,
            })
        nodes.sort(key=lambda n: -n["total"])
        return nodes

    return aggregate(roots)


def _format_tree(nodes: list[dict], indent: int, lines: list[str]) -> None:
    for node in nodes:
        lines.append(
            f"  {'  ' * indent}{node['name']:<{max(4, 38 - 2 * indent)}}"
            f"{node['count']:>6}  {node['total']:>9.3f}s {node['self']:>9.3f}s"
        )
        _format_tree(node["children"], indent + 1, lines)


def _counters_summary(counters: dict) -> list[str]:
    """Human lines for a pair-kernel counter snapshot."""
    product = counters.get("pair_product", 0)
    candidates = counters.get("candidate_pairs", 0)
    exact = counters.get("exact_pairs", 0)
    brute = counters.get("bruteforce_pairs", 0)
    examined = candidates + brute
    lines = [
        f"  pair kernels: {counters.get('queries', 0)} queries, "
        f"{product:,} brute-force pair product"
    ]
    if examined:
        lines.append(
            f"  candidates examined: {examined:,} "
            f"(x{product / examined:.1f} pruning), "
            f"{exact:,} exact pairs survived"
        )
    builds = counters.get("index_builds", 0)
    reuses = counters.get("index_reuses", 0)
    deltas = counters.get("delta_updates", 0)
    if builds or reuses or deltas:
        served = builds + reuses
        reuse_frac = reuses / served if served else 0.0
        lines.append(
            f"  index reuse: {builds} builds, {deltas} delta updates, "
            f"{reuses} reuses ({reuse_frac:.0%} of queries served warm)"
        )
    return lines


def render_profile(doc: dict) -> str:
    """Render one run-profile document as the ``repro profile`` tree."""
    lines = [
        f"run {doc.get('kind', '?')} {doc.get('label', '?')} "
        f"({doc.get('key', '')[:12]})  wall {doc.get('wall_s', 0.0):.3f}s",
        f"  {'span':<38}{'count':>6}  {'total':>10} {'self':>10}",
    ]
    _format_tree(profile_tree(doc.get("spans", [])), 0, lines)
    lines.extend(_counters_summary(doc.get("pair_counters", {})))
    return "\n".join(lines)


def aggregate_timings(store_root: str | os.PathLike) -> dict:
    """Fold every run profile of a store into one span-total table."""
    import json

    spans: dict[str, dict] = {}
    runs = []
    counters: dict[str, int] = {}
    for path in find_run_profiles(store_root):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        runs.append({
            "key": doc.get("key", path.stem),
            "label": doc.get("label", ""),
            "kind": doc.get("kind", ""),
            "wall_s": doc.get("wall_s", 0.0),
        })
        for event in doc.get("spans", []):
            if event.get("type") != "span":
                continue
            g = spans.setdefault(
                event["name"], {"name": event["name"], "count": 0,
                                "total": 0.0}
            )
            g["count"] += 1
            g["total"] += event["dur"]
        for name, value in (doc.get("pair_counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
    return {
        "runs": sorted(runs, key=lambda r: -r["wall_s"]),
        "spans": sorted(spans.values(), key=lambda g: -g["total"]),
        "pair_counters": counters,
    }


def render_timings(doc: dict) -> str:
    """Render :func:`aggregate_timings` output as the ``--timings`` table."""
    runs = doc["runs"]
    total_wall = sum(r["wall_s"] for r in runs)
    lines = [
        f"{len(runs)} profiled runs, {total_wall:.3f}s total wall",
        f"  {'span':<38}{'count':>8}  {'total':>10}  {'mean':>10}",
    ]
    for g in doc["spans"]:
        mean = g["total"] / g["count"] if g["count"] else 0.0
        lines.append(
            f"  {g['name']:<38}{g['count']:>8}  {g['total']:>9.3f}s "
            f"{mean * 1e3:>8.2f}ms"
        )
    lines.append("  slowest runs:")
    for r in runs[:8]:
        lines.append(
            f"    {r['wall_s']:>8.3f}s  {r['kind']:<10} {r['label']} "
            f"({r['key'][:12]})"
        )
    lines.extend(_counters_summary(doc.get("pair_counters", {})))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# `repro top`: live cluster status
# ---------------------------------------------------------------------------

def render_cluster_status(store, queue, lease_timeout: float = 30.0,
                          now: float | None = None) -> str:
    """One snapshot of the worker/lease/queue state as a status table.

    ``store``/``queue`` are duck-typed (`.root`, and the JobQueue read
    API) so this module never imports the engine — the CLI hands in
    live objects.
    """
    import time as _time

    now = _time.time() if now is None else now
    workers = queue.workers()
    alive = {
        w["worker_id"]
        for w in queue.alive_workers(max(lease_timeout, 10.0), now=now)
    }
    tickets = queue.tickets()
    leases = queue.leases()
    failures = queue.failures()
    leased_keys = {lease.get("key") for lease in leases}
    waiting = [t for t in tickets if t.get("key") not in leased_keys]

    lines = [
        f"store {store.root}",
        f"queue {queue.root}: {len(tickets)} open tickets "
        f"({len(leases)} leased, {len(waiting)} waiting), "
        f"{len(failures)} failure records",
        f"workers ({len(alive)} alive / {len(workers)} registered):",
    ]
    if workers:
        lines.append(
            f"  {'worker':<34}{'host':<12}{'pid':>7}{'jobs':>6}"
            f"{'beat age':>10}  state"
        )
        for w in sorted(workers, key=lambda w: w["worker_id"]):
            beat_age = now - (w.get("heartbeat_at") or 0.0)
            state = "alive" if w["worker_id"] in alive else "stale"
            lines.append(
                f"  {w['worker_id']:<34}{w.get('host', '?'):<12}"
                f"{w.get('pid', 0):>7}{w.get('jobs_done', 0):>6}"
                f"{beat_age:>9.1f}s  {state}"
            )
    else:
        lines.append("  (none registered)")
    if leases:
        lines.append("leases:")
        lines.append(
            f"  {'key':<14}{'owner':<34}{'attempt':>8}{'age':>9}"
            f"{'beat age':>10}"
        )
        for lease in leases:
            age = now - (lease.get("claimed_at") or now)
            beat_age = now - (lease.get("heartbeat_at") or now)
            lines.append(
                f"  {str(lease.get('key', ''))[:12]:<14}"
                f"{str(lease.get('owner')):<34}"
                f"{lease.get('attempt', 0):>8}{age:>8.1f}s{beat_age:>9.1f}s"
            )
    if waiting:
        lines.append("waiting tickets:")
        for t in waiting[:20]:
            lines.append(
                f"  {str(t.get('key', ''))[:12]:<14}"
                f"{t.get('label', ''):<40}"
                f"attempt {t.get('attempt', 0)}/{t.get('max_attempts', 0)}"
            )
        if len(waiting) > 20:
            lines.append(f"  ... and {len(waiting) - 20} more")
    if failures:
        lines.append(f"failures ({len(failures)} records):")
        for f in failures[-5:]:
            lines.append(
                f"  {str(f.get('key', ''))[:12]} attempt "
                f"{f.get('attempt', 0)} by {f.get('owner')}"
            )
    return "\n".join(lines)
