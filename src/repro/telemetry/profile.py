"""Profiling surfaces over the telemetry event logs.

Three consumers of the raw spans live here:

* :func:`run_scope` — the single integration point the executor wraps
  around every spec execution.  It opens the ``run`` root span, scopes
  the pair-kernel counters to the run (so pruning ratios are per-run
  accurate under any backend), and on success writes a **run profile**
  (``<store>/telemetry/runs/<k..>/<key>.json``: wall time, counter
  snapshot, the span subtree) that ``repro profile <key>`` renders.
  Because it self-activates an ephemeral recorder when telemetry is on
  but no session is live, profiles appear identically whether the run
  happened in-process, in a pool worker, or in a ``repro worker``
  daemon on another host.
* :func:`aggregate_timings` / :func:`render_timings` — ``repro report
  --timings``: fold every run profile of a store into one table of span
  totals across the sweep.
* :func:`cluster_status_doc` / :func:`render_cluster_status` —
  ``repro top`` (and ``repro top --json``): the live worker / lease /
  queue table read straight off the queue directory, enriched with
  per-worker job rates from the metrics file snapshots.
* :func:`evaluate_health` — ``repro health``: machine-checkable
  threshold evaluation (stale heartbeats, stuck leases, queue stall,
  retry spikes, crash dumps) with a nonzero exit for CI/cron.

Everything here writes only under ``<store>/telemetry/`` — never into
``objects/`` — so run profiles cannot perturb a content hash.
"""

from __future__ import annotations

import os
import socket
from contextlib import contextmanager
from pathlib import Path

from .core import (
    TelemetryRecorder,
    activate,
    active_recorder,
    deactivate,
    telemetry_mode,
)
from .sinks import read_jsonl, write_json_atomic  # noqa: F401  (re-export)

__all__ = [
    "aggregate_timings",
    "cluster_status_doc",
    "evaluate_health",
    "find_run_profiles",
    "load_run_profile",
    "profile_tree",
    "render_cluster_status",
    "render_profile",
    "render_timings",
    "run_profile_path",
    "run_scope",
    "telemetry_root",
]

#: Version stamp of the run-profile document schema.
RUN_PROFILE_SCHEMA = 1


def telemetry_root(store_root: str | os.PathLike) -> Path:
    """Where a store's telemetry artifacts live (sibling of objects/)."""
    return Path(store_root) / "telemetry"


def run_profile_path(store_root: str | os.PathLike, key: str) -> Path:
    """The run-profile document of ``key`` (store-style key sharding)."""
    return telemetry_root(store_root) / "runs" / key[:2] / f"{key}.json"


@contextmanager
def run_scope(spec, store):
    """Instrument one spec execution (see module docstring).

    A no-op when telemetry is off and no recorder is active — the check
    is one global read plus one env read, satisfying the <3% overhead
    budget of the acceptance criteria.
    """
    rec = active_recorder()
    ephemeral: TelemetryRecorder | None = None
    if rec is None:
        if telemetry_mode() == "off":
            yield
            return
        # Telemetry requested but no session: a bare execute() — e.g. a
        # process-pool shard worker.  Record just this run and flush it
        # into the shared per-process event log.
        ephemeral = TelemetryRecorder(
            meta={"session": "exec", "pid": os.getpid(),
                  "host": socket.gethostname()}
        )
        ephemeral.bind_jsonl(
            telemetry_root(store.root)
            / f"exec-{socket.gethostname()}-{os.getpid()}.jsonl"
        )
        rec = activate(ephemeral)
    from ..geometry.pairindex import pair_counters_scope

    key = spec.key()
    failed = False
    try:
        with pair_counters_scope() as frame:
            root = rec.span("run", cat="engine", kind=spec.kind,
                            label=spec.label(), key=key[:12])
            with root:
                try:
                    yield
                except BaseException:
                    failed = True
                    raise
    finally:
        if not failed:
            events = rec.subtree(root.id)
            root_event = next(
                (e for e in events if e.get("id") == root.id), None
            )
            doc = {
                "schema": RUN_PROFILE_SCHEMA,
                "key": key,
                "kind": spec.kind,
                "label": spec.label(),
                "app": spec.app,
                "scale": spec.scale,
                "wall_s": root_event["dur"] if root_event else 0.0,
                "pair_counters": frame.as_dict(),
                "spans": events,
            }
            write_json_atomic(run_profile_path(store.root, key), doc)
        if ephemeral is not None:
            if active_recorder() is ephemeral:
                deactivate()
            ephemeral.flush()
            if telemetry_mode() == "chrome":
                # Sessionless executions (bare `repro run`, pool shards)
                # still get a loadable trace, one file per run.
                from .sinks import write_chrome_trace

                write_chrome_trace(
                    telemetry_root(store.root)
                    / f"exec-{socket.gethostname()}-{os.getpid()}"
                      f"-{key[:12]}.trace.json",
                    ephemeral,
                )


# ---------------------------------------------------------------------------
# run-profile loading
# ---------------------------------------------------------------------------

def find_run_profiles(store_root: str | os.PathLike) -> list[Path]:
    """Every run-profile document under a store, in stable order."""
    runs = telemetry_root(store_root) / "runs"
    if not runs.is_dir():
        return []
    return sorted(runs.glob("*/*.json"))


def load_run_profile(store_root: str | os.PathLike, key_prefix: str) -> dict:
    """Load the unique run profile whose key starts with ``key_prefix``.

    Raises ``FileNotFoundError`` when nothing matches and ``ValueError``
    when the prefix is ambiguous — same contract as store key lookups.
    """
    import json

    matches = [
        path for path in find_run_profiles(store_root)
        if path.stem.startswith(key_prefix)
    ]
    if not matches:
        raise FileNotFoundError(
            f"no run profile matching {key_prefix!r} under "
            f"{telemetry_root(store_root)} — was the run executed with "
            f"telemetry enabled (REPRO_TELEMETRY=json|chrome)?"
        )
    if len(matches) > 1:
        raise ValueError(
            f"key prefix {key_prefix!r} is ambiguous: "
            f"{[p.stem[:12] for p in matches]}"
        )
    return json.loads(matches[0].read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# timing-tree aggregation and rendering
# ---------------------------------------------------------------------------

def profile_tree(events: list[dict]) -> list[dict]:
    """Aggregate span events into a nested name tree.

    Same-named siblings merge (count/total accumulate); each node gets
    ``self`` = total minus its children's totals.  Roots are spans whose
    parent is not in the event list (the stored subtree's top).
    """
    spans = [e for e in events if e.get("type") == "span"]
    ids = {e["id"] for e in spans}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for e in spans:
        if e["parent"] in ids:
            children.setdefault(e["parent"], []).append(e)
        else:
            roots.append(e)

    def aggregate(level: list[dict]) -> list[dict]:
        groups: dict[str, dict] = {}
        for e in level:
            g = groups.setdefault(
                e["name"], {"name": e["name"], "count": 0, "total": 0.0,
                            "ids": []}
            )
            g["count"] += 1
            g["total"] += e["dur"]
            g["ids"].append(e["id"])
        nodes = []
        for g in groups.values():
            kids = aggregate(
                [c for i in g["ids"] for c in children.get(i, [])]
            )
            child_total = sum(k["total"] for k in kids)
            nodes.append({
                "name": g["name"],
                "count": g["count"],
                "total": g["total"],
                "self": max(0.0, g["total"] - child_total),
                "children": kids,
            })
        nodes.sort(key=lambda n: -n["total"])
        return nodes

    return aggregate(roots)


def _format_tree(nodes: list[dict], indent: int, lines: list[str]) -> None:
    for node in nodes:
        lines.append(
            f"  {'  ' * indent}{node['name']:<{max(4, 38 - 2 * indent)}}"
            f"{node['count']:>6}  {node['total']:>9.3f}s {node['self']:>9.3f}s"
        )
        _format_tree(node["children"], indent + 1, lines)


def _counters_summary(counters: dict) -> list[str]:
    """Human lines for a pair-kernel counter snapshot."""
    product = counters.get("pair_product", 0)
    candidates = counters.get("candidate_pairs", 0)
    exact = counters.get("exact_pairs", 0)
    brute = counters.get("bruteforce_pairs", 0)
    examined = candidates + brute
    lines = [
        f"  pair kernels: {counters.get('queries', 0)} queries, "
        f"{product:,} brute-force pair product"
    ]
    if examined:
        lines.append(
            f"  candidates examined: {examined:,} "
            f"(x{product / examined:.1f} pruning), "
            f"{exact:,} exact pairs survived"
        )
    builds = counters.get("index_builds", 0)
    reuses = counters.get("index_reuses", 0)
    deltas = counters.get("delta_updates", 0)
    if builds or reuses or deltas:
        served = builds + reuses
        reuse_frac = reuses / served if served else 0.0
        lines.append(
            f"  index reuse: {builds} builds, {deltas} delta updates, "
            f"{reuses} reuses ({reuse_frac:.0%} of queries served warm)"
        )
    return lines


def render_profile(doc: dict) -> str:
    """Render one run-profile document as the ``repro profile`` tree."""
    lines = [
        f"run {doc.get('kind', '?')} {doc.get('label', '?')} "
        f"({doc.get('key', '')[:12]})  wall {doc.get('wall_s', 0.0):.3f}s",
        f"  {'span':<38}{'count':>6}  {'total':>10} {'self':>10}",
    ]
    _format_tree(profile_tree(doc.get("spans", [])), 0, lines)
    lines.extend(_counters_summary(doc.get("pair_counters", {})))
    return "\n".join(lines)


def aggregate_timings(store_root: str | os.PathLike) -> dict:
    """Fold every run profile of a store into one span-total table."""
    import json

    spans: dict[str, dict] = {}
    runs = []
    counters: dict[str, int] = {}
    for path in find_run_profiles(store_root):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        runs.append({
            "key": doc.get("key", path.stem),
            "label": doc.get("label", ""),
            "kind": doc.get("kind", ""),
            "wall_s": doc.get("wall_s", 0.0),
        })
        for event in doc.get("spans", []):
            if event.get("type") != "span":
                continue
            g = spans.setdefault(
                event["name"], {"name": event["name"], "count": 0,
                                "total": 0.0}
            )
            g["count"] += 1
            g["total"] += event["dur"]
        for name, value in (doc.get("pair_counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
    from .export import load_metrics_snapshots

    metrics: dict[str, float] = {}
    snapshots = load_metrics_snapshots(store_root)
    for snap in snapshots:
        for entry in snap.get("counters", ()):
            name = entry.get("name")
            try:
                value = float(entry.get("value", 0.0))
            except (TypeError, ValueError):
                continue
            metrics[name] = metrics.get(name, 0.0) + value
    return {
        "runs": sorted(runs, key=lambda r: -r["wall_s"]),
        "spans": sorted(spans.values(), key=lambda g: -g["total"]),
        "pair_counters": counters,
        "metrics": metrics,
        "metrics_snapshots": len(snapshots),
    }


def render_timings(doc: dict) -> str:
    """Render :func:`aggregate_timings` output as the ``--timings`` table."""
    runs = doc["runs"]
    total_wall = sum(r["wall_s"] for r in runs)
    lines = [
        f"{len(runs)} profiled runs, {total_wall:.3f}s total wall",
        f"  {'span':<38}{'count':>8}  {'total':>10}  {'mean':>10}",
    ]
    for g in doc["spans"]:
        mean = g["total"] / g["count"] if g["count"] else 0.0
        lines.append(
            f"  {g['name']:<38}{g['count']:>8}  {g['total']:>9.3f}s "
            f"{mean * 1e3:>8.2f}ms"
        )
    lines.append("  slowest runs:")
    for r in runs[:8]:
        lines.append(
            f"    {r['wall_s']:>8.3f}s  {r['kind']:<10} {r['label']} "
            f"({r['key'][:12]})"
        )
    lines.extend(_counters_summary(doc.get("pair_counters", {})))
    lines.extend(_metrics_summary(doc))
    return "\n".join(lines)


def _metrics_summary(doc: dict) -> list[str]:
    """Fleet-wide lines from the metrics file snapshots (if any)."""
    metrics = doc.get("metrics") or {}
    if not metrics:
        return []
    lines = [
        f"  fleet metrics ({doc.get('metrics_snapshots', 0)} process "
        f"snapshots):"
    ]
    hits = metrics.get("repro_store_read_cache_hits_total", 0.0)
    misses = metrics.get("repro_store_read_cache_misses_total", 0.0)
    if hits + misses:
        lines.append(
            f"    store read cache: {int(hits):,} hits / "
            f"{int(misses):,} misses ({hits / (hits + misses):.0%} hit "
            f"rate), {int(metrics.get('repro_store_read_cache_evictions_total', 0)):,} "
            f"evictions, "
            f"{int(metrics.get('repro_store_read_cache_mmap_loads_total', 0)):,} "
            f"mmap loads"
        )
    builds = metrics.get("repro_pair_index_builds_total", 0.0)
    reuses = metrics.get("repro_pair_index_reuses_total", 0.0)
    deltas = metrics.get("repro_pair_delta_updates_total", 0.0)
    if builds or reuses or deltas:
        served = builds + reuses
        warm = reuses / served if served else 0.0
        lines.append(
            f"    pair-index reuse: {int(builds):,} builds, "
            f"{int(deltas):,} delta updates, {int(reuses):,} reuses "
            f"({warm:.0%} served warm)"
        )
    jobs = sum(
        v for k, v in metrics.items() if k == "repro_worker_jobs_total"
    )
    if jobs:
        lines.append(f"    worker jobs completed: {int(jobs):,}")
    return lines


# ---------------------------------------------------------------------------
# `repro top` / `repro health`: live cluster status
# ---------------------------------------------------------------------------

def _worker_rates(store_root) -> dict[tuple, float]:
    """Per-process jobs/minute from the metrics file snapshots.

    Keyed by ``(host, pid)`` — the same identity the snapshot filenames
    carry — so the status table can join rates onto the worker registry
    without any live connection to the worker.
    """
    from .export import load_metrics_snapshots

    rates: dict[tuple, float] = {}
    for snap in load_metrics_snapshots(store_root):
        elapsed = (snap.get("written_at") or 0.0) - (
            snap.get("started_at") or 0.0
        )
        if elapsed <= 0:
            continue
        jobs = sum(
            float(entry.get("value", 0.0))
            for entry in snap.get("counters", ())
            if entry.get("name") == "repro_worker_jobs_total"
        )
        rates[(snap.get("host"), snap.get("pid"))] = jobs / elapsed * 60.0
    return rates


def cluster_status_doc(store, queue, lease_timeout: float = 30.0,
                       now: float | None = None) -> dict:
    """Machine-readable worker/lease/queue snapshot (``repro top --json``).

    ``store``/``queue`` are duck-typed (`.root`, and the JobQueue read
    API) so this module never imports the engine — the CLI hands in
    live objects.  All ages are clamped at zero: on a shared-filesystem
    cluster the heartbeat stamps come from *other hosts' clocks*, and
    skew must render as "just now", not a negative age.
    """
    import time as _time

    from .flight import find_crash_dumps

    now = _time.time() if now is None else now
    workers = queue.workers()
    alive = {
        w["worker_id"]
        for w in queue.alive_workers(max(lease_timeout, 10.0), now=now)
    }
    tickets = queue.tickets()
    leases = queue.leases()
    failures = queue.failures()
    leased_keys = {lease.get("key") for lease in leases}
    waiting = [t for t in tickets if t.get("key") not in leased_keys]
    rates = _worker_rates(store.root)

    worker_rows = []
    for w in sorted(workers, key=lambda w: w["worker_id"]):
        beat_age = max(0.0, now - (w.get("heartbeat_at") or 0.0))
        worker_rows.append({
            "worker_id": w["worker_id"],
            "host": w.get("host", "?"),
            "pid": w.get("pid", 0),
            "jobs_done": w.get("jobs_done", 0),
            "beat_age_s": beat_age,
            "state": "alive" if w["worker_id"] in alive else "stale",
            "jobs_per_min": rates.get((w.get("host"), w.get("pid"))),
        })
    lease_rows = [
        {
            "key": lease.get("key"),
            "owner": lease.get("owner"),
            "attempt": lease.get("attempt", 0),
            "age_s": max(0.0, now - (lease.get("claimed_at") or now)),
            "beat_age_s": max(
                0.0, now - (lease.get("heartbeat_at") or now)
            ),
        }
        for lease in leases
    ]
    waiting_rows = [
        {
            "key": t.get("key"),
            "label": t.get("label", ""),
            "attempt": t.get("attempt", 0),
            "max_attempts": t.get("max_attempts", 0),
        }
        for t in waiting
    ]
    failure_rows = [
        {
            "key": f.get("key"),
            "attempt": f.get("attempt", 0),
            "owner": f.get("owner"),
            "error": f.get("error"),
        }
        for f in failures
    ]
    return {
        "now": now,
        "store": str(store.root),
        "queue": str(queue.root),
        "tickets_open": len(tickets),
        "workers": worker_rows,
        "workers_alive": len(alive),
        "leases": lease_rows,
        "waiting": waiting_rows,
        "failures": failure_rows,
        "crash_dumps": len(find_crash_dumps(store.root)),
    }


def render_cluster_status(store, queue, lease_timeout: float = 30.0,
                          now: float | None = None) -> str:
    """One snapshot of the worker/lease/queue state as a status table."""
    doc = cluster_status_doc(store, queue, lease_timeout=lease_timeout,
                             now=now)
    lines = [
        f"store {doc['store']}",
        f"queue {doc['queue']}: {doc['tickets_open']} open tickets "
        f"({len(doc['leases'])} leased, {len(doc['waiting'])} waiting), "
        f"{len(doc['failures'])} failure records",
        f"workers ({doc['workers_alive']} alive / "
        f"{len(doc['workers'])} registered):",
    ]
    if doc["workers"]:
        lines.append(
            f"  {'worker':<34}{'host':<12}{'pid':>7}{'jobs':>6}"
            f"{'j/min':>8}{'beat age':>10}  state"
        )
        for w in doc["workers"]:
            rate = w["jobs_per_min"]
            rate_txt = f"{rate:>7.1f} " if rate is not None else f"{'-':>7} "
            lines.append(
                f"  {w['worker_id']:<34}{w['host']:<12}"
                f"{w['pid']:>7}{w['jobs_done']:>6}{rate_txt}"
                f"{w['beat_age_s']:>9.1f}s  {w['state']}"
            )
    else:
        lines.append("  (none registered)")
    if doc["leases"]:
        lines.append("leases:")
        lines.append(
            f"  {'key':<14}{'owner':<34}{'attempt':>8}{'age':>9}"
            f"{'beat age':>10}"
        )
        for lease in doc["leases"]:
            lines.append(
                f"  {str(lease['key'] or '')[:12]:<14}"
                f"{str(lease['owner']):<34}"
                f"{lease['attempt']:>8}{lease['age_s']:>8.1f}s"
                f"{lease['beat_age_s']:>9.1f}s"
            )
    if doc["waiting"]:
        lines.append("waiting tickets:")
        for t in doc["waiting"][:20]:
            lines.append(
                f"  {str(t['key'] or '')[:12]:<14}"
                f"{t['label']:<40}"
                f"attempt {t['attempt']}/{t['max_attempts']}"
            )
        if len(doc["waiting"]) > 20:
            lines.append(f"  ... and {len(doc['waiting']) - 20} more")
    if doc["failures"]:
        lines.append(f"failures ({len(doc['failures'])} records):")
        for f in doc["failures"][-5:]:
            lines.append(
                f"  {str(f['key'] or '')[:12]} attempt "
                f"{f['attempt']} by {f['owner']}"
            )
    if doc["crash_dumps"]:
        lines.append(
            f"crash dumps: {doc['crash_dumps']} under telemetry/crash/ "
            f"(inspect with `repro blackbox`)"
        )
    return "\n".join(lines)


def evaluate_health(store, queue, *, lease_timeout: float = 30.0,
                    max_failures: int = 3,
                    now: float | None = None) -> dict:
    """Threshold checks over the cluster state (``repro health``).

    Each check contributes ``{"name", "ok", "detail"}``; overall
    ``status`` is ``"ok"`` only when every check passes, so the CLI can
    exit nonzero for CI/cron.  Checks:

    * ``stale_workers`` — registered workers whose heartbeat exceeds the
      lease timeout (likely dead, leases pending expiry);
    * ``stale_leases`` — leases whose job heartbeat went quiet (the
      holder died mid-job; a broker will requeue on expiry);
    * ``queue_stall`` — waiting tickets with zero alive workers (nobody
      will ever drain the queue);
    * ``retry_spikes`` — ``failed/`` records at or above
      ``max_failures`` (systematic job failure, not a one-off);
    * ``crash_dumps`` — flight-recorder dumps present (a worker died
      unhandled; clear ``telemetry/crash/`` after triage).
    """
    doc = cluster_status_doc(store, queue, lease_timeout=lease_timeout,
                             now=now)
    checks = []

    stale = [w for w in doc["workers"] if w["state"] == "stale"]
    checks.append({
        "name": "stale_workers",
        "ok": not stale,
        "detail": (
            f"{len(stale)} of {len(doc['workers'])} registered workers "
            f"have stale heartbeats"
            + (f": {', '.join(w['worker_id'] for w in stale[:4])}"
               if stale else "")
        ),
    })
    quiet = [
        lease for lease in doc["leases"]
        if lease["beat_age_s"] > lease_timeout
    ]
    checks.append({
        "name": "stale_leases",
        "ok": not quiet,
        "detail": (
            f"{len(quiet)} of {len(doc['leases'])} leases exceed the "
            f"{lease_timeout:.0f}s heartbeat timeout"
            + (f": {', '.join(str(q['key'] or '')[:12] for q in quiet[:4])}"
               if quiet else "")
        ),
    })
    stalled = bool(doc["waiting"]) and doc["workers_alive"] == 0
    checks.append({
        "name": "queue_stall",
        "ok": not stalled,
        "detail": (
            f"{len(doc['waiting'])} waiting tickets, "
            f"{doc['workers_alive']} alive workers"
        ),
    })
    checks.append({
        "name": "retry_spikes",
        "ok": len(doc["failures"]) < max_failures,
        "detail": (
            f"{len(doc['failures'])} failure records "
            f"(threshold {max_failures})"
        ),
    })
    checks.append({
        "name": "crash_dumps",
        "ok": doc["crash_dumps"] == 0,
        "detail": f"{doc['crash_dumps']} crash dumps under telemetry/crash/",
    })
    return {
        "status": "ok" if all(c["ok"] for c in checks) else "unhealthy",
        "now": doc["now"],
        "store": doc["store"],
        "queue": doc["queue"],
        "checks": checks,
    }
