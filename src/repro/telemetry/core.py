"""Zero-dependency span/counter/gauge telemetry.

The paper's Section 4.3 argues the partitioner should "call a timer to
determine the invocation intervals" because "these timing calls will
impose insignificant overhead".  This module generalises that stance to
the whole stack: hierarchical **spans** (context-managed wall-clock
intervals), **counters** (monotonic event tallies) and **gauges**
(instantaneous levels) recorded against an injectable monotonic clock,
with a hard zero-cost guarantee when disabled.

Design constraints, in order:

1. **No hash impact.**  Telemetry must never change a ``RunSpec`` key,
   a published series, or any store artifact byte.  Event logs are
   written under ``<store>/telemetry/`` which the content-addressed
   store never scans (``ResultStore.entries`` walks ``objects/`` only),
   and no telemetry value flows into result payloads.
2. **Free when off.**  The module-level :func:`span` / :func:`counter`
   / :func:`gauge` fast-path is a single global-``None`` check; with no
   active recorder :func:`span` returns a shared do-nothing singleton.
3. **Deterministic under test.**  ``TelemetryRecorder(clock=...)``
   accepts any zero-argument float callable, mirroring
   :class:`repro.meta.timer.InvocationTimer`.

Activation is process-global (one recorder at a time) because spans
must nest across module boundaries without threading a handle through
every signature.  Worker threads get their own span stacks (and their
own ``tid`` ordinals in the event log) via thread-local storage.

Event-log schema (one JSON object per line, ``sort_keys=True``):

``{"type": "meta", ...}``
    First line of every log: free-form session metadata.
``{"type": "span", "name", "cat", "id", "parent", "tid", "ts", "dur",
"attrs", ["error"]}``
    Appended when a span *closes*; ``ts``/``dur`` are seconds relative
    to the recorder epoch; ``parent`` is the enclosing span id (0 for
    top-level); ``error`` marks spans exited by an exception.
``{"type": "counter"|"gauge", "name", "value", "parent", "tid", "ts",
["attrs"]}``
    Point samples, parented to the span open at emission time.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from contextlib import contextmanager
from itertools import count
from pathlib import Path
from typing import Callable

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_MODES",
    "Span",
    "TelemetryRecorder",
    "activate",
    "active_recorder",
    "annotate",
    "counter",
    "deactivate",
    "flush_active",
    "gauge",
    "recording",
    "session",
    "span",
    "telemetry_active",
    "telemetry_mode",
]

#: Environment variable selecting the telemetry sink mode.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Recognized ``REPRO_TELEMETRY`` values.  ``json`` emits the JSONL
#: event log only; ``chrome`` additionally converts each session into a
#: Chrome trace-event file (chrome://tracing / Perfetto loadable).
TELEMETRY_MODES = ("off", "json", "chrome")


def telemetry_mode() -> str:
    """The configured sink mode (env read per call, like the pair index)."""
    mode = os.environ.get(TELEMETRY_ENV) or "off"
    if mode not in TELEMETRY_MODES:
        raise ValueError(
            f"{TELEMETRY_ENV} must be one of {TELEMETRY_MODES}, got {mode!r}"
        )
    return mode


def telemetry_enabled() -> bool:
    """True when the environment asks for telemetry output."""
    return telemetry_mode() != "off"


class _NullSpan:
    """The shared do-nothing span handed out while no recorder is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One open span of an active recorder (use as a context manager)."""

    __slots__ = ("_recorder", "id", "name", "cat", "attrs", "parent", "_start")

    def __init__(self, recorder: "TelemetryRecorder", span_id: int,
                 name: str, cat: str, attrs: dict):
        self._recorder = recorder
        self.id = span_id
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.parent = 0
        self._start = 0.0

    def annotate(self, **attrs) -> None:
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._recorder._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._pop(self, error=exc_type is not None)
        return False


class TelemetryRecorder:
    """An in-memory event log with hierarchical spans.

    ``clock`` is any zero-argument callable returning monotonic seconds
    (defaults to :func:`time.monotonic`); all timestamps are relative to
    the clock value at construction, so a fake clock yields fully
    deterministic event logs.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 meta: dict | None = None):
        self._clock = clock if clock is not None else time.monotonic
        self._epoch = self._clock()
        self._ids = count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}
        self._jsonl_path: Path | None = None
        self._flushed = 0
        self.meta = dict(meta or {})
        self.events: list[dict] = []

    # -- clock / identity ---------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _tid(self) -> int:
        """Stable small ordinal for the calling thread."""
        ident = threading.get_ident()
        with self._lock:
            return self._tids.setdefault(ident, len(self._tids))

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> int:
        """Id of the innermost open span on this thread (0 if none)."""
        stack = self._stack()
        return stack[-1].id if stack else 0

    # -- spans --------------------------------------------------------------

    def span(self, name: str, cat: str = "", **attrs) -> Span:
        """A new span; opens on ``__enter__``, logs on ``__exit__``."""
        return Span(self, next(self._ids), name, cat, attrs)

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.parent = stack[-1].id if stack else 0
        span._start = self._now()
        stack.append(span)

    def _pop(self, span: Span, error: bool) -> None:
        stack = self._stack()
        # Tolerate out-of-order exits (a leaked inner span) by unwinding
        # to the span being closed rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        event = {
            "type": "span",
            "name": span.name,
            "cat": span.cat,
            "id": span.id,
            "parent": span.parent,
            "tid": self._tid(),
            "ts": span._start,
            "dur": max(0.0, self._now() - span._start),
            "attrs": span.attrs,
        }
        if error:
            event["error"] = True
        with self._lock:
            self.events.append(event)

    def annotate_current(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op if none)."""
        stack = self._stack()
        if stack:
            stack[-1].attrs.update(attrs)

    # -- point samples ------------------------------------------------------

    def counter(self, name: str, value: float = 1.0, **attrs) -> None:
        """Record a monotonic event tally (e.g. jobs completed)."""
        self._sample("counter", name, value, attrs)

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record an instantaneous level (e.g. queue depth)."""
        self._sample("gauge", name, value, attrs)

    def _sample(self, type_: str, name: str, value: float, attrs: dict) -> None:
        event = {
            "type": type_,
            "name": name,
            "value": float(value),
            "parent": self.current_span_id(),
            "tid": self._tid(),
            "ts": self._now(),
        }
        if attrs:
            event["attrs"] = attrs
        with self._lock:
            self.events.append(event)

    # -- persistence --------------------------------------------------------

    def bind_jsonl(self, path: str | os.PathLike) -> None:
        """Set the JSONL sink; :meth:`flush` appends unwritten events."""
        self._jsonl_path = Path(path)

    def flush(self) -> int:
        """Append events recorded since the last flush to the JSONL sink.

        Returns the number of event lines written (0 when unbound).  The
        first flush prepends the session ``meta`` line.  Crash-safe in
        the sense that everything flushed so far survives the process:
        workers flush after every job.
        """
        if self._jsonl_path is None:
            return 0
        with self._lock:
            fresh = self.events[self._flushed:]
            first = self._flushed == 0
            self._flushed = len(self.events)
        if not fresh and not first:
            return 0
        self._jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._jsonl_path, "a", encoding="utf-8") as fh:
            if first:
                fh.write(json.dumps({"type": "meta", **self.meta},
                                    sort_keys=True) + "\n")
            for event in fresh:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(fresh)

    # -- queries ------------------------------------------------------------

    def subtree(self, root_id: int) -> list[dict]:
        """All events at or under the span ``root_id``, in log order."""
        with self._lock:
            events = list(self.events)
        parent_of = {e["id"]: e["parent"] for e in events if e["type"] == "span"}

        def under(span_id: int) -> bool:
            seen: set[int] = set()
            while span_id and span_id not in seen:
                if span_id == root_id:
                    return True
                seen.add(span_id)
                span_id = parent_of.get(span_id, 0)
            return False

        kept = []
        for e in events:
            if e["type"] == "span":
                if e["id"] == root_id or under(e["parent"]):
                    kept.append(e)
            elif under(e.get("parent", 0)):
                kept.append(e)
        return kept


# ---------------------------------------------------------------------------
# the process-global recorder and its zero-cost front door
# ---------------------------------------------------------------------------

_ACTIVE: TelemetryRecorder | None = None


def active_recorder() -> TelemetryRecorder | None:
    """The currently active recorder, if any."""
    return _ACTIVE


def telemetry_active() -> bool:
    """True when a recorder is live (instrumentation should do work)."""
    return _ACTIVE is not None


def activate(recorder: TelemetryRecorder) -> TelemetryRecorder:
    """Install ``recorder`` as the process-global recorder."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a telemetry recorder is already active")
    _ACTIVE = recorder
    return recorder


def deactivate() -> None:
    """Clear the process-global recorder."""
    global _ACTIVE
    _ACTIVE = None


def span(name: str, cat: str = "", **attrs):
    """A span on the active recorder, or the shared null span when off."""
    rec = _ACTIVE
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, cat=cat, **attrs)


def counter(name: str, value: float = 1.0, **attrs) -> None:
    """Counter sample on the active recorder (no-op when off)."""
    rec = _ACTIVE
    if rec is not None:
        rec.counter(name, value, **attrs)


def gauge(name: str, value: float, **attrs) -> None:
    """Gauge sample on the active recorder (no-op when off)."""
    rec = _ACTIVE
    if rec is not None:
        rec.gauge(name, value, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span (no-op when off)."""
    rec = _ACTIVE
    if rec is not None:
        rec.annotate_current(**attrs)


def flush_active() -> int:
    """Flush the active recorder's JSONL sink (0 when off/unbound)."""
    rec = _ACTIVE
    if rec is None:
        return 0
    return rec.flush()


@contextmanager
def recording(clock: Callable[[], float] | None = None,
              meta: dict | None = None):
    """Activate a fresh in-memory recorder for a block (test harness)."""
    rec = TelemetryRecorder(clock=clock, meta=meta)
    activate(rec)
    try:
        yield rec
    finally:
        if _ACTIVE is rec:
            deactivate()


@contextmanager
def session(store_root: str | os.PathLike | None = None,
            name: str = "session",
            mode: str | None = None,
            clock: Callable[[], float] | None = None,
            meta: dict | None = None):
    """Activate a recorder and persist its event log next to the store.

    The outermost telemetry scope of a process: ``run_specs`` sweeps and
    ``repro worker`` daemons open one around their whole lifetime.  When
    the mode is ``off``, or a session is already active (nested sweeps
    share the outer log), this is a transparent no-op yielding the
    current recorder (possibly ``None``).

    With a ``store_root``, events land in
    ``<store_root>/telemetry/<name>-<stamp>-<pid>-<nonce>.jsonl`` — a
    sibling of ``objects/`` that the content-addressed store never
    scans, preserving the no-hash-impact invariant.  ``chrome`` mode
    additionally writes ``...trace.json`` on exit.
    """
    resolved = telemetry_mode() if mode is None else mode
    if resolved not in TELEMETRY_MODES:
        raise ValueError(
            f"telemetry mode must be one of {TELEMETRY_MODES}, got {resolved!r}"
        )
    if resolved == "off" or _ACTIVE is not None:
        yield _ACTIVE
        return
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name)
    doc_meta = {"session": safe, "pid": os.getpid(), **(meta or {})}
    rec = TelemetryRecorder(clock=clock, meta=doc_meta)
    base: Path | None = None
    if store_root is not None:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        base = (Path(store_root) / "telemetry"
                / f"{safe}-{stamp}-{os.getpid()}-{secrets.token_hex(3)}")
        rec.bind_jsonl(base.with_suffix(".jsonl"))
    activate(rec)
    try:
        yield rec
    finally:
        if _ACTIVE is rec:
            deactivate()
        if base is not None:
            rec.flush()
            if resolved == "chrome":
                from .sinks import write_chrome_trace

                write_chrome_trace(base.with_suffix(".trace.json"), rec)
