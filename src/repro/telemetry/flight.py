"""Crash flight recorder: a bounded ring of recent events, dumped on death.

Span tracing answers "what happened in that run" — *if* you turned it
on first.  When a worker dies at 3am with ``REPRO_TELEMETRY`` unset,
there is nothing to inspect.  The flight recorder closes that gap the
way an aircraft black box does: a fixed-size ring buffer
(:class:`collections.deque` with ``maxlen``) records the last N
interesting events **unconditionally** — claims, job starts/finishes,
lease transitions, failures — at the cost of one deque append, and is
only ever *persisted* when something goes wrong:

* an unhandled exception in a worker's main loop;
* SIGTERM arriving while a job is in flight (mid-job kill);
* the broker exhausting retries for a job (``ClusterJobError``);
* fault-injection self-kill (``--die-after-claims`` dumps just before
  raising SIGKILL against itself, since SIGKILL is uncatchable).

Dumps land in ``<store>/telemetry/crash/`` as standalone JSON — the
event ring plus a full metrics snapshot and the failure reason — and
are rendered by ``repro blackbox``.  ``repro health`` treats their
presence as an unhealthy signal until an operator clears them.

Like all telemetry, dumps live outside ``objects/`` and can never
perturb a content hash.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque
from pathlib import Path

from .metrics import metrics_registry
from .sinks import write_json_atomic

__all__ = [
    "FLIGHT_CAPACITY_ENV",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "crash_dir",
    "find_crash_dumps",
    "flight_dump",
    "flight_record",
    "flight_recorder",
    "load_crash_dump",
    "render_blackbox",
    "reset_flight",
]

FLIGHT_SCHEMA = 1

#: Ring capacity override (events). 0 disables recording entirely.
FLIGHT_CAPACITY_ENV = "REPRO_FLIGHT_EVENTS"
DEFAULT_FLIGHT_CAPACITY = 512


def _capacity() -> int:
    raw = os.environ.get(FLIGHT_CAPACITY_ENV, "")
    try:
        return max(0, int(raw)) if raw else DEFAULT_FLIGHT_CAPACITY
    except ValueError:
        return DEFAULT_FLIGHT_CAPACITY


class FlightRecorder:
    """Bounded, thread-safe ring of recent events (always recording)."""

    def __init__(self, capacity: int | None = None):
        self.capacity = _capacity() if capacity is None else max(0, capacity)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity or 1)

    def record(self, kind: str, name: str, **fields) -> None:
        """Append one event; O(1), oldest events fall off the end."""
        if self.capacity == 0:
            return
        event = {"ts": time.time(), "kind": kind, "name": name}
        if fields:
            event.update(fields)
        with self._lock:
            self._ring.append(event)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def dump(
        self,
        store_root: str | os.PathLike,
        reason: str,
        error: str | None = None,
        extra: dict | None = None,
    ) -> Path:
        """Persist the ring + a metrics snapshot to the crash directory.

        Filenames carry host, pid, timestamp, and a nonce so concurrent
        dumps from one host never collide; writes are atomic.
        """
        doc = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "error": error,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "events": self.events(),
            "metrics": metrics_registry().snapshot(),
        }
        if extra:
            doc.update(extra)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        nonce = os.urandom(3).hex()
        name = f"{doc['host']}-{doc['pid']}-{stamp}-{nonce}.json"
        return write_json_atomic(crash_dir(store_root) / name, doc)


# ---------------------------------------------------------------------------
# process-global recorder
# ---------------------------------------------------------------------------

_GLOBAL: FlightRecorder | None = None
_GLOBAL_LOCK = threading.Lock()


def flight_recorder() -> FlightRecorder:
    """The process-global flight recorder (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = FlightRecorder()
    return _GLOBAL


def flight_record(kind: str, name: str, **fields) -> None:
    """Record one event on the global ring (always on, O(1))."""
    flight_recorder().record(kind, name, **fields)


def flight_dump(
    store_root: str | os.PathLike,
    reason: str,
    error: str | None = None,
    extra: dict | None = None,
) -> Path | None:
    """Dump the global ring; never raises (a dying process calls this)."""
    try:
        return flight_recorder().dump(
            store_root, reason, error=error, extra=extra
        )
    except Exception:
        return None


def reset_flight() -> None:
    """Clear the global ring (test isolation)."""
    flight_recorder().clear()


# ---------------------------------------------------------------------------
# dump inspection (repro blackbox / repro health)
# ---------------------------------------------------------------------------

def crash_dir(store_root: str | os.PathLike) -> Path:
    """``<store>/telemetry/crash`` (never scanned by the object store)."""
    return Path(store_root) / "telemetry" / "crash"


def find_crash_dumps(store_root: str | os.PathLike) -> list[Path]:
    """All dump files, newest last."""
    root = crash_dir(store_root)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"), key=lambda p: (p.stat().st_mtime, p.name))


def load_crash_dump(path: str | os.PathLike) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"not a crash dump: {path}")
    return doc


def _fmt_ts(ts: float) -> str:
    return time.strftime("%H:%M:%S", time.gmtime(ts)) + f".{int(ts % 1 * 1000):03d}"


def render_blackbox(doc: dict) -> str:
    """Human-readable rendering of one crash dump."""
    lines = [
        f"crash dump: {doc.get('reason', '?')} "
        f"on {doc.get('host', '?')}[{doc.get('pid', '?')}]",
    ]
    if doc.get("error"):
        lines.append(f"  error: {doc['error']}")
    if doc.get("worker_id"):
        lines.append(f"  worker: {doc['worker_id']}")
    if doc.get("job"):
        lines.append(f"  in-flight job: {doc['job']}")
    dumped = doc.get("dumped_at")
    if dumped:
        lines.append(
            "  dumped at: "
            + time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime(dumped))
        )
    events = doc.get("events") or []
    lines.append(f"  last {len(events)} events:")
    for event in events:
        ts = _fmt_ts(event.get("ts", 0.0))
        kind = event.get("kind", "?")
        name = event.get("name", "?")
        detail = " ".join(
            f"{k}={v}"
            for k, v in sorted(event.items())
            if k not in ("ts", "kind", "name")
        )
        lines.append(f"    {ts} [{kind}] {name}" + (f" {detail}" if detail else ""))
    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or []
    if counters:
        lines.append("  counters at dump:")
        for entry in counters:
            if entry["name"].startswith(("repro_worker", "repro_queue")):
                labels = entry.get("labels") or {}
                label_txt = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                lines.append(
                    f"    {entry['name']}{label_txt} = {entry['value']:g}"
                )
    return "\n".join(lines)
