"""Unified telemetry: spans, counters, gauges, and profiling surfaces.

Zero-dependency observability for the whole stack — see
:mod:`repro.telemetry.core` for the recorder and event-log schema,
:mod:`repro.telemetry.sinks` for the JSONL / Chrome trace-event
writers, and :mod:`repro.telemetry.profile` for run profiles and the
``repro profile`` / ``repro report --timings`` / ``repro top``
renderers.

The hard invariant, enforced by tests and CI: telemetry on or off,
every ``RunSpec`` key, result series, and store artifact byte is
identical.  Telemetry output lives only under ``<store>/telemetry/``,
which the content-addressed store never scans.
"""

from .core import (
    TELEMETRY_ENV,
    TELEMETRY_MODES,
    Span,
    TelemetryRecorder,
    activate,
    active_recorder,
    annotate,
    counter,
    deactivate,
    flush_active,
    gauge,
    recording,
    session,
    span,
    telemetry_active,
    telemetry_enabled,
    telemetry_mode,
)
from .profile import (
    aggregate_timings,
    find_run_profiles,
    load_run_profile,
    profile_tree,
    render_cluster_status,
    render_profile,
    render_timings,
    run_profile_path,
    run_scope,
    telemetry_root,
)
from .sinks import chrome_trace, read_jsonl, write_chrome_trace

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_MODES",
    "Span",
    "TelemetryRecorder",
    "activate",
    "active_recorder",
    "aggregate_timings",
    "annotate",
    "chrome_trace",
    "counter",
    "deactivate",
    "find_run_profiles",
    "flush_active",
    "gauge",
    "load_run_profile",
    "profile_tree",
    "read_jsonl",
    "recording",
    "render_cluster_status",
    "render_profile",
    "render_timings",
    "run_profile_path",
    "run_scope",
    "session",
    "span",
    "telemetry_active",
    "telemetry_enabled",
    "telemetry_mode",
    "telemetry_root",
    "write_chrome_trace",
]
