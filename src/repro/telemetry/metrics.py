"""Always-on aggregated metrics: counters, gauges, log-scale histograms.

PR 7's span tracing is an *event log*: rich, but off by default and
unbounded at service timescales.  This module is the complementary
*metrics plane* every long-lived service is actually run on — a
process-local, thread-safe registry of *aggregates* that is always on:

* **counters** — monotonic tallies (jobs completed, leases expired);
* **gauges** — instantaneous levels (queue depth, worker uptime);
* **histograms** — fixed-bucket log-scale distributions (job latency).

Cost model: one dict update under one lock per sample, no per-event
allocation beyond the first observation of a series, and **no event
log** — a counter incremented a billion times occupies one float.  That
is what makes it safe to leave on unconditionally, unlike the span
layer.

Aggregation happens in place at the existing hot seams two ways:

* *push* — instrumentation calls :func:`metric_inc` /
  :func:`metric_gauge` / :func:`metric_observe` (worker job outcomes,
  queue transitions, DAG layer progress);
* *pull* — **collectors** run at snapshot time and export state the
  codebase already aggregates in place (the pair-kernel counter frame
  of :mod:`repro.geometry.pairindex`, the store read-cache stats of
  :func:`repro.engine.store.read_cache_stats`), so the hottest paths
  pay nothing extra at all.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts;
:mod:`repro.telemetry.export` renders them as Prometheus text or JSON,
serves them over HTTP, and writes atomic file snapshots under
``<store>/telemetry/metrics/``.  Like every telemetry surface, metrics
never touch a content hash: nothing here flows into a spec payload or a
store artifact.

Metric and label names are validated against the Prometheus data model
on first use, so the text exposition is valid by construction.
"""

from __future__ import annotations

import logging
import math
import os
import re
import socket
import threading
import time
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "metric_inc",
    "metric_gauge",
    "metric_observe",
    "metrics_registry",
    "reset_metrics",
]

logger = logging.getLogger("repro.telemetry.metrics")

#: Version stamp of the snapshot document schema.
METRICS_SCHEMA = 1

#: Default histogram bounds: log-scale (powers of two) from 1 ms to
#: ~65 s — covering everything from a store cache hit to an ultra-scale
#: metric step.  Observations above the last bound land in the implicit
#: ``+Inf`` bucket, so the tail is never lost, only coarsened.
DEFAULT_BUCKETS = tuple(0.001 * 2.0**i for i in range(17))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A series key: the metric name plus its sorted ``(label, value)`` pairs.
SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


def _series_key(name: str, labels: dict) -> SeriesKey:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        )
    if not labels:
        return (name, ())
    pairs = []
    for label, value in sorted(labels.items()):
        if not _LABEL_RE.match(label):
            raise ValueError(
                f"invalid label name {label!r} on metric {name!r}"
            )
        pairs.append((label, str(value)))
    return (name, tuple(pairs))


class MetricsRegistry:
    """Thread-safe process-local metric aggregation.

    ``clock`` is any zero-argument callable returning wall-clock seconds
    (defaults to :func:`time.time`); snapshots stamp it so consumers can
    compute rates between two snapshots of the same process.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._counters: dict[SeriesKey, float] = {}
        self._gauges: dict[SeriesKey, float] = {}
        # histogram series: key -> [bucket counts (len(bounds)+1), sum, n]
        self._hists: dict[SeriesKey, list] = {}
        self._hist_bounds: dict[str, tuple[float, ...]] = {}
        self._collectors: dict[str, Callable[["MetricsRegistry"], None]] = {}
        self.started_at = self._clock()

    # -- write paths --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a counter series (monotonic tally)."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_total(self, name: str, value: float, **labels) -> None:
        """Set a counter series to an absolute cumulative total.

        The pull path for state the codebase already accumulates in
        place (collectors): the source owns the monotonic total, the
        registry just mirrors it.
        """
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = float(value)

    def set(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to an instantaneous level."""
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Iterable[float] | None = None,
        **labels,
    ) -> None:
        """Record one observation into a fixed-bucket histogram.

        The bucket bounds of a histogram name are pinned by its first
        observation (``buckets`` or :data:`DEFAULT_BUCKETS`); later
        calls may omit them.  Bounds must be strictly increasing.
        """
        key = _series_key(name, labels)
        value = float(value)
        with self._lock:
            bounds = self._hist_bounds.get(name)
            if bounds is None:
                bounds = tuple(
                    float(b) for b in (buckets or DEFAULT_BUCKETS)
                )
                if not bounds or any(
                    b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
                ):
                    raise ValueError(
                        f"histogram bounds of {name!r} must be strictly "
                        f"increasing and non-empty, got {bounds}"
                    )
                self._hist_bounds[name] = bounds
            state = self._hists.get(key)
            if state is None:
                state = self._hists[key] = [[0] * (len(bounds) + 1), 0.0, 0]
            counts, _, _ = state
            # First bound >= value; the +Inf bucket is the last slot.
            lo, hi = 0, len(bounds)
            while lo < hi:
                mid = (lo + hi) // 2
                if value <= bounds[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            counts[lo] += 1
            state[1] += value
            state[2] += 1

    # -- collectors ---------------------------------------------------------

    def add_collector(
        self, name: str, fn: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a pull-time exporter run by every :meth:`snapshot`.

        A collector receives the registry and mirrors externally
        aggregated state via :meth:`set_total` / :meth:`set`.  A raising
        collector is skipped (logged at debug), never fatal — the
        metrics plane must not take the worker down with it.
        """
        self._collectors[name] = fn

    def remove_collector(self, name: str) -> None:
        """Drop a collector by name (no-op when absent)."""
        self._collectors.pop(name, None)

    # -- read path ----------------------------------------------------------

    def snapshot(self, run_collectors: bool = True) -> dict:
        """One JSON-able snapshot of every series (stable ordering)."""
        if run_collectors:
            for name, fn in list(self._collectors.items()):
                try:
                    fn(self)
                except Exception:
                    logger.debug("collector %s failed", name, exc_info=True)
        with self._lock:
            counters = [
                {"name": name, "labels": dict(pairs), "value": value}
                for (name, pairs), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(pairs), "value": value}
                for (name, pairs), value in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": dict(pairs),
                    "bounds": list(self._hist_bounds[name]),
                    "counts": list(counts),
                    "sum": total,
                    "count": n,
                }
                for (name, pairs), (counts, total, n) in sorted(
                    self._hists.items()
                )
            ]
        return {
            "schema": METRICS_SCHEMA,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "started_at": self.started_at,
            "written_at": self._clock(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter series (0.0 when unseen)."""
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0.0)

    def reset(self) -> None:
        """Zero every series (test isolation; collectors are kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._hist_bounds.clear()
        self.started_at = self._clock()


# ---------------------------------------------------------------------------
# built-in collectors: state the codebase already aggregates in place
# ---------------------------------------------------------------------------

def _collect_pair_counters(registry: MetricsRegistry) -> None:
    """Mirror the process-global pair-kernel counter frame.

    ``index_builds`` / ``delta_updates`` / ``index_reuses`` and the
    candidate/exact pruning tallies accumulate in place inside the
    kernels (PR 6/9); exporting them is a pull, not extra hot-path work.
    """
    from ..geometry.pairindex import pair_index_counters

    for field, value in pair_index_counters().as_dict().items():
        registry.set_total(f"repro_pair_{field}_total", value)


def _collect_store_read_cache(registry: MetricsRegistry) -> None:
    """Mirror the store read-cache stats (hits/misses/evictions/mmap)."""
    from ..engine.store import read_cache_stats

    for field, value in read_cache_stats().items():
        registry.set_total(f"repro_store_read_cache_{field}_total", value)


def _collect_process(registry: MetricsRegistry) -> None:
    """Process-level vitals cheap enough to pull every snapshot."""
    registry.set(
        "repro_process_uptime_seconds",
        max(0.0, registry._clock() - registry.started_at),
    )
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; normalize to bytes.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        registry.set("repro_process_max_rss_bytes", usage.ru_maxrss * scale)
    except (ImportError, AttributeError, OSError):  # pragma: no cover
        pass


# ---------------------------------------------------------------------------
# the process-global registry and its always-on front door
# ---------------------------------------------------------------------------

_GLOBAL: MetricsRegistry | None = None
_GLOBAL_LOCK = threading.Lock()


def metrics_registry() -> MetricsRegistry:
    """The process-global registry (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                registry = MetricsRegistry()
                registry.add_collector("pair_kernels", _collect_pair_counters)
                registry.add_collector(
                    "store_read_cache", _collect_store_read_cache
                )
                registry.add_collector("process", _collect_process)
                _GLOBAL = registry
    return _GLOBAL


def reset_metrics() -> None:
    """Zero the global registry's series (test isolation)."""
    metrics_registry().reset()


def metric_inc(name: str, value: float = 1.0, **labels) -> None:
    """Increment a counter on the global registry (always on)."""
    metrics_registry().inc(name, value, **labels)


def metric_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the global registry (always on)."""
    metrics_registry().set(name, value, **labels)


def metric_observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation on the global registry."""
    metrics_registry().observe(name, value, **labels)


def _fmt_value(value: float) -> str:
    """Prometheus-friendly number formatting (ints stay integral)."""
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
