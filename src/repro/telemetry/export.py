"""Metrics exporters: Prometheus text, JSON, HTTP endpoints, file snapshots.

Three transports over the same :meth:`MetricsRegistry.snapshot` doc:

* **Prometheus text exposition** (:func:`render_prometheus`, format
  version 0.0.4) with a matching :func:`parse_prometheus` used by tests
  and CI to assert the output is valid by round-trip;
* **HTTP** — :class:`MetricsServer`, a stdlib
  :class:`~http.server.ThreadingHTTPServer` on a daemon thread serving
  ``/metrics`` (text), ``/metrics.json``, and ``/healthz`` (JSON;
  status 503 when unhealthy).  Wired to ``repro worker --metrics-port``
  and the sweep broker;
* **file snapshots** — :func:`write_metrics_files` atomically publishes
  ``<store>/telemetry/metrics/<host>-<pid>.prom`` (+ ``.json``) so a
  shared-filesystem cluster is scrapeable with Prometheus ``file_sd`` /
  node-exporter textfile collection without any open ports.

All output lives under ``<store>/telemetry/``, which the
content-addressed object store never scans — metrics on or off, every
store hash is bit-identical (CI-enforced).
"""

from __future__ import annotations

import http.server
import json
import os
import socket
import tempfile
import threading
from pathlib import Path
from typing import Callable

from .metrics import MetricsRegistry, _fmt_value, metrics_registry
from .sinks import write_json_atomic

__all__ = [
    "MetricsServer",
    "load_metrics_snapshots",
    "metrics_dir",
    "parse_prometheus",
    "render_prometheus",
    "write_metrics_files",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition 0.0.4.

    Histograms expand to the conventional cumulative ``_bucket{le=}``
    series (including ``+Inf``) plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        type_line(entry["name"], "counter")
        lines.append(
            f"{entry['name']}{_label_block(entry['labels'])} "
            f"{_fmt_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", ()):
        type_line(entry["name"], "gauge")
        lines.append(
            f"{entry['name']}{_label_block(entry['labels'])} "
            f"{_fmt_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        type_line(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            le = _label_block(labels, {"le": _fmt_value(float(bound))})
            lines.append(f"{name}_bucket{le} {cumulative}")
        inf = _label_block(labels, {"le": "+Inf"})
        lines.append(f"{name}_bucket{inf} {entry['count']}")
        lines.append(
            f"{name}_sum{_label_block(labels)} {_fmt_value(entry['sum'])}"
        )
        lines.append(f"{name}_count{_label_block(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse text exposition back into ``{"types": ..., "samples": ...}``.

    A deliberately strict reader for tests/CI round-trips: every
    non-comment line must be ``name[{labels}] value``, every label
    body must be well-formed, and sample names must carry a preceding
    ``# TYPE``.  Raises :class:`ValueError` on malformed input.
    """
    types: dict[str, str] = {}
    samples: list[dict] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        labels: dict[str, str] = {}
        if "{" in line:
            name, rest = line.split("{", 1)
            body, _, value_part = rest.rpartition("}")
            labels = _parse_label_body(body, lineno)
        else:
            name, _, value_part = line.partition(" ")
        name = name.strip()
        value_part = value_part.strip()
        if not name or not value_part:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        try:
            value = float(value_part)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {value_part!r}"
            ) from exc
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE")
        samples.append({"name": name, "labels": labels, "value": value})
    return {"types": types, "samples": samples}


def _parse_label_body(body: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value")
        j = eq + 2
        out = []
        while j < n:
            ch = body[j]
            if ch == "\\":
                nxt = body[j + 1]
                out.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                j += 2
            elif ch == '"':
                break
            else:
                out.append(ch)
                j += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value")
        labels[key] = "".join(out)
        i = j + 1
    return labels


# ---------------------------------------------------------------------------
# HTTP endpoints
# ---------------------------------------------------------------------------

class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    server_version = "repro-metrics"

    def do_GET(self):  # noqa: N802 - http.server API
        server = self.server  # a MetricsServer's inner ThreadingHTTPServer
        registry: MetricsRegistry = server.registry  # type: ignore[attr-defined]
        health: Callable[[], dict] | None = server.health  # type: ignore
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(registry.snapshot()).encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = json.dumps(registry.snapshot(), sort_keys=True).encode()
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            doc = {"status": "ok"}
            if health is not None:
                try:
                    doc = health()
                except Exception as exc:
                    doc = {"status": "unhealthy", "error": str(exc)}
            code = 200 if doc.get("status") == "ok" else 503
            body = json.dumps(doc, sort_keys=True).encode()
            self._reply(code, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence per-request stderr noise
        pass


class MetricsServer:
    """``/metrics`` + ``/metrics.json`` + ``/healthz`` on a daemon thread.

    ``health`` is an optional zero-argument callable returning a JSON
    doc with a ``status`` key; anything but ``"ok"`` serves 503 so a
    load balancer or orchestrator can eject the process.  ``port=0``
    binds an ephemeral port, published as ``.port`` after
    :meth:`start`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        health: Callable[[], dict] | None = None,
    ):
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else metrics_registry()
        self.health = health
        self._server: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsServer":
        server = http.server.ThreadingHTTPServer(
            (self.host, self.port), _MetricsHandler
        )
        server.daemon_threads = True
        server.registry = self.registry  # type: ignore[attr-defined]
        server.health = self.health  # type: ignore[attr-defined]
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# file snapshots: scrape a shared-fs cluster with zero open ports
# ---------------------------------------------------------------------------

def metrics_dir(store_root: str | os.PathLike) -> Path:
    """``<store>/telemetry/metrics`` (sibling of runs/, never hashed)."""
    return Path(store_root) / "telemetry" / "metrics"


def _snapshot_stem() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _write_text_atomic(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def write_metrics_files(
    store_root: str | os.PathLike,
    registry: MetricsRegistry | None = None,
) -> Path:
    """Atomically publish this process's ``.prom`` + ``.json`` snapshot.

    Stable per-process filenames (``<host>-<pid>``) mean repeated writes
    replace rather than accumulate; ``os.replace`` keeps scrapers from
    ever seeing a torn file.  Returns the ``.prom`` path.
    """
    registry = registry if registry is not None else metrics_registry()
    snapshot = registry.snapshot()
    stem = _snapshot_stem()
    target = metrics_dir(store_root)
    write_json_atomic(target / f"{stem}.json", snapshot)
    return _write_text_atomic(
        target / f"{stem}.prom", render_prometheus(snapshot)
    )


def load_metrics_snapshots(store_root: str | os.PathLike) -> list[dict]:
    """Every ``.json`` snapshot under the store, unreadable ones skipped."""
    root = metrics_dir(store_root)
    if not root.is_dir():
        return []
    out = []
    for path in sorted(root.glob("*.json")):
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict):
            doc["path"] = str(path)
            out.append(doc)
    return out
