"""Telemetry sinks: JSONL event logs and Chrome trace-event files.

The JSONL log is the source of truth (one JSON object per line, schema
in :mod:`repro.telemetry.core`); the Chrome trace is a lossy projection
of the same events into the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
so a session can be dropped straight into ``chrome://tracing`` or
Perfetto.  Spans become complete events (``ph: "X"``, microsecond
``ts``/``dur``); counters and gauges become counter events
(``ph: "C"``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "chrome_trace",
    "read_jsonl",
    "write_chrome_trace",
    "write_json_atomic",
]


def chrome_trace(events, meta: dict | None = None, pid: int | None = None) -> dict:
    """Project an event list (or recorder) into a trace-event document."""
    if hasattr(events, "events"):  # a TelemetryRecorder
        meta = dict(events.meta) if meta is None else meta
        events = events.events
    pid = os.getpid() if pid is None else pid
    trace_events = []
    for event in events:
        kind = event.get("type")
        if kind == "span":
            entry = {
                "name": event["name"],
                "cat": event.get("cat") or "repro",
                "ph": "X",
                "ts": event["ts"] * 1e6,
                "dur": event["dur"] * 1e6,
                "pid": pid,
                "tid": event.get("tid", 0),
                "args": dict(event.get("attrs") or {}),
            }
            if event.get("error"):
                entry["args"]["error"] = True
            trace_events.append(entry)
        elif kind in ("counter", "gauge"):
            trace_events.append({
                "name": event["name"],
                "cat": kind,
                "ph": "C",
                "ts": event["ts"] * 1e6,
                "pid": pid,
                "tid": event.get("tid", 0),
                "args": {event["name"]: event["value"]},
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_chrome_trace(path: str | os.PathLike, events,
                       meta: dict | None = None) -> Path:
    """Write a trace-event file atomically; returns the path."""
    return write_json_atomic(path, chrome_trace(events, meta=meta))


def write_json_atomic(path: str | os.PathLike, doc: dict) -> Path:
    """Stage-then-rename JSON write (same discipline as the store)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_jsonl(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL event log (skips blank lines)."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
