"""The ``process`` backend: trace-aware shards over a local process pool.

This is the historical ``n_jobs>1`` executor path, extracted verbatim:
one :class:`~concurrent.futures.ProcessPoolExecutor` for the whole plan,
each layer dealt into trace-aware shards
(:func:`~repro.engine.executor.shard_specs`), workers publishing into
the store and returning only keys — which is what makes parallel
execution bit-identical to serial.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Sequence

from ...registry import register
from ..graph import Plan
from ..spec import RunSpec
from ..store import ResultStore
from .base import ExecutionBackend, Progress, layer_status
from .serial import SerialBackend

__all__ = ["ProcessBackend"]


@register(
    "backend",
    "process",
    description="trace-aware sharding across a local process pool",
    tags=("local",),
)
class ProcessBackend(ExecutionBackend):
    """Shard each layer across ``n_jobs`` local worker processes."""

    name = "process"

    def __init__(self, n_jobs: int = 2) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.n_jobs = n_jobs
        self._pool: ProcessPoolExecutor | None = None

    def run_plan(
        self,
        plan: Plan,
        store: ResultStore,
        *,
        force: bool = False,
        progress: Progress | None = None,
        verbose: bool = False,
    ) -> None:
        # One pool for the whole plan — but none at all when a single
        # pending job (or n_jobs=1) makes the spawn overhead pure waste.
        pending_total = len(plan.pending())
        self._pool = (
            ProcessPoolExecutor(max_workers=self.n_jobs)
            if self.n_jobs > 1 and pending_total > 1
            else None
        )
        try:
            super().run_plan(
                plan, store, force=force, progress=progress, verbose=verbose
            )
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def run_layer(
        self,
        depth: int,
        specs: Sequence[RunSpec],
        store: ResultStore,
        *,
        force: bool,
        say: Progress,
        verbose: bool,
    ) -> None:
        from ..executor import _run_shard, shard_specs

        if self._pool is None or len(specs) == 1:
            SerialBackend().run_layer(
                depth, specs, store, force=force, say=say, verbose=verbose
            )
            return
        total = len(specs)
        done = 0
        shards = shard_specs(specs, self.n_jobs)
        futures = {
            self._pool.submit(
                _run_shard,
                str(store.root),
                [s.to_json() for s in shard],
                force,
            ): i
            for i, shard in enumerate(shards)
        }
        for future in as_completed(futures):
            finished = future.result()  # propagate worker failures
            done += len(finished)
            say(f"shard {futures[future]} finished ({len(finished)} specs)")
            if verbose:
                say(
                    layer_status(
                        depth,
                        queued=0,
                        leased=total - done,
                        done=done,
                        total=total,
                    )
                )

    def placement(self, plan: Plan, store: ResultStore) -> list[str]:
        from ..executor import shard_specs

        lines = [f"process: pool of {self.n_jobs} local worker processes"]
        for depth in range(len(plan.layers)):
            specs = plan.layer_specs(depth)
            shards = shard_specs(specs, self.n_jobs)
            sizes = ",".join(str(len(s)) for s in shards)
            lines.append(
                f"  layer {depth}: {len(specs)} jobs over "
                f"{len(shards)} shard{'s' if len(shards) != 1 else ''} "
                f"[{sizes}]"
            )
        return lines
