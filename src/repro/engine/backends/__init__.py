"""Pluggable execution backends for draining spec plans.

Three built-ins, all registered under the component kind ``"backend"``
and all publishing through the content-addressed store (which is what
makes them bit-identical to each other):

* ``serial`` — everything in-process, one job at a time (the historical
  ``n_jobs=1`` path);
* ``process`` — trace-aware shards over a local
  :class:`~concurrent.futures.ProcessPoolExecutor` (the historical
  ``n_jobs>1`` path);
* ``cluster`` — a shared-filesystem job broker
  (:class:`~repro.engine.backends.queue.JobQueue`: lease files with
  owner/heartbeat/attempt metadata next to the store) over long-lived
  ``repro worker`` daemons, with crash requeue and a retry cap.

Select one through :func:`~repro.engine.executor.run_specs`
(``backend="serial" | "process" | "cluster"`` or an instance), the CLI
(``repro sweep --backend cluster --workers 2``), or build your own by
subclassing :class:`ExecutionBackend` and registering it::

    from repro.engine.backends import ExecutionBackend
    from repro.registry import register

    @register("backend", "my-scheduler")
    class MyBackend(ExecutionBackend):
        def run_layer(self, depth, specs, store, *, force, say, verbose):
            ...
"""

from .base import (
    BACKEND_KIND,
    ExecutionBackend,
    backend_names,
    layer_status,
    resolve_backend,
    verify_layer_inputs,
)
# Import order fixes registration order (serial, process, cluster) —
# what BACKEND_NAMES and `repro describe --kind backend` display.
from .serial import SerialBackend
from .process import ProcessBackend
from .cluster import ClusterBackend, ClusterJobError
from .queue import JobQueue, new_worker_id
from .worker import Worker

__all__ = [
    "BACKEND_KIND",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "ClusterBackend",
    "ClusterJobError",
    "JobQueue",
    "Worker",
    "backend_names",
    "layer_status",
    "new_worker_id",
    "resolve_backend",
    "verify_layer_inputs",
]
