"""The execution-backend contract and its name resolution.

A backend is a strategy for draining a resolved
:class:`~repro.engine.graph.Plan`: it walks the plan's topological
layers and gets every pending spec *published into the content-addressed
store* — how (in-process, a local process pool, a cluster of worker
daemons over a shared filesystem) is the backend's business.  Because
the store is the only channel results travel through, every backend is
bit-identical by construction: :func:`~repro.engine.executor.run_specs`
loads the final artifacts back from disk no matter who computed them.

Backends are ordinary registry components (kind ``"backend"``), so
``create("backend", "cluster", workers=2)`` works like any other
component, third parties can register their own (Slurm, ssh, ...), and
``repro describe --kind backend`` shows the parameter schemas.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

from ...registry import create, registry
from ...telemetry import metric_gauge, metric_inc, span
from ..graph import MissingInputError, Plan
from ..spec import RunSpec
from ..store import ResultStore

__all__ = [
    "BACKEND_KIND",
    "ExecutionBackend",
    "backend_names",
    "layer_status",
    "resolve_backend",
    "verify_layer_inputs",
]

#: The registry kind execution backends live under.
BACKEND_KIND = "backend"

Progress = Callable[[str], None]


def backend_names() -> tuple[str, ...]:
    """The registered backend names, live."""
    return tuple(registry(BACKEND_KIND))


def layer_status(
    depth: int, *, queued: int, leased: int, done: int, total: int
) -> str:
    """The per-layer progress line every backend emits under --verbose."""
    return (
        f"layer {depth}: {queued} queued, {leased} leased, "
        f"{done}/{total} done"
    )


def verify_layer_inputs(
    layer: Sequence[str], plan: Plan, store: ResultStore
) -> None:
    """Fail fast if a layer's inputs never materialized in the store."""
    for key in layer:
        node = plan.node(key)
        for input_key in node.inputs:
            if store.has(input_key):
                continue
            input_node = plan.nodes.get(input_key)
            input_label = (
                input_node.spec.label() if input_node else input_key[:12]
            )
            raise MissingInputError(
                f"{node.spec.label()} requires input {input_label} "
                f"({input_key[:12]}) which is not in the store"
            )


class ExecutionBackend(abc.ABC):
    """Drains a plan's pending layers into the result store.

    The base class owns the layer walk (input verification, layer
    announcements); subclasses implement :meth:`run_layer` — and may
    wrap :meth:`run_plan` for plan-scoped setup/teardown (a process
    pool, auto-spawned workers).
    """

    #: Registry name of the backend (cosmetic; the registry is canonical).
    name: str = "?"

    def run_plan(
        self,
        plan: Plan,
        store: ResultStore,
        *,
        force: bool = False,
        progress: Progress | None = None,
        verbose: bool = False,
    ) -> None:
        """Execute every pending node, layer by layer."""
        say = progress or (lambda line: None)
        metric_gauge("repro_plan_layers", len(plan.layers))
        for depth, layer in enumerate(plan.layers):
            verify_layer_inputs(layer, plan, store)
            specs = plan.layer_specs(depth)
            if len(plan.layers) > 1:
                say(f"layer {depth}: {len(specs)} jobs")
            metric_gauge("repro_plan_layer_current", depth)
            with span("plan.layer", cat="engine", depth=depth,
                      jobs=len(specs), backend=self.name):
                self.run_layer(
                    depth, specs, store, force=force, say=say, verbose=verbose
                )
            metric_inc("repro_plan_layers_done_total", backend=self.name)
            metric_inc(
                "repro_plan_jobs_done_total", len(specs), backend=self.name
            )

    @abc.abstractmethod
    def run_layer(
        self,
        depth: int,
        specs: Sequence[RunSpec],
        store: ResultStore,
        *,
        force: bool,
        say: Progress,
        verbose: bool,
    ) -> None:
        """Publish every spec of one (input-satisfied) layer."""

    def placement(self, plan: Plan, store: ResultStore) -> list[str]:
        """Human-readable lines describing where this backend would run
        the plan's pending jobs (``repro plan --backend ...``)."""
        jobs = sum(len(layer) for layer in plan.layers)
        return [f"{self.name}: {jobs} pending jobs"]


def resolve_backend(
    backend: "ExecutionBackend | str | None" = None,
    *,
    n_jobs: int = 1,
    workers: int | None = None,
) -> ExecutionBackend:
    """Turn ``run_specs``'s backend argument into a backend instance.

    ``None`` keeps the historical behavior: ``serial`` for ``n_jobs=1``,
    ``process`` (with that many jobs) otherwise.  A string resolves
    through the component registry — the built-in names get their
    obvious knobs threaded (``process`` ← ``n_jobs``, ``cluster`` ←
    ``workers``); other registered backends are created bare.  An
    instance passes through untouched.
    """
    if backend is None:
        backend = "process" if n_jobs > 1 else "serial"
    if isinstance(backend, ExecutionBackend):
        if workers:
            raise ValueError(
                "workers= cannot be combined with a backend instance; "
                "configure the instance itself"
            )
        return backend
    if isinstance(backend, str):
        if workers and backend != "cluster":
            raise ValueError(
                f"workers= is only meaningful for the cluster backend, "
                f"not {backend!r} (did you mean n_jobs?)"
            )
        kwargs: dict = {}
        if backend == "process":
            kwargs["n_jobs"] = n_jobs
        elif backend == "cluster" and workers is not None:
            kwargs["workers"] = workers
        instance = create(BACKEND_KIND, backend, **kwargs)
        if not isinstance(instance, ExecutionBackend):
            raise TypeError(
                f"backend {backend!r} resolved to {type(instance).__name__}, "
                f"which is not an ExecutionBackend"
            )
        return instance
    raise TypeError(
        f"backend must be a name, an ExecutionBackend or None, "
        f"got {backend!r}"
    )
