"""The ``repro worker`` daemon: claim leases, execute specs, heartbeat.

A worker is a long-lived process pointed at a store (and its co-located
:class:`~repro.engine.backends.queue.JobQueue`).  It polls the queue for
open tickets, claims one at a time via an atomic lease, executes the
spec, publishes the result into the content-addressed store, and closes
the ticket.  While a job runs, a daemon thread heartbeats the lease so
the broker can tell a slow worker from a dead one; a worker that is
SIGKILLed mid-job simply stops heartbeating, its lease expires, and the
broker requeues the job.

Failures are *per job*: an executing spec that raises gets a failure
record (full traceback) and charges one attempt, but the daemon keeps
serving.  Publishing is idempotent (content-addressed, first rename
wins), so a job executed twice — e.g. after a lease expired under a
worker that was merely slow — still lands exactly one artifact.

Fault injection for the failure-path tests (documented, not secret):

* ``die_after_claims=N`` / ``--die-after-claims N`` — SIGKILL ourselves
  after claiming the N-th job, before executing it (simulates a worker
  crash that leaves a lease behind);
* ``REPRO_WORKER_FAIL_KEYS`` — comma list of key prefixes whose
  execution raises instead of running (simulates a poisoned job).
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from typing import Callable

from ...telemetry import (
    flight_dump,
    flight_record,
    flush_active,
    gauge,
    metric_gauge,
    metric_inc,
    metric_observe,
    span,
    write_metrics_files,
)
from ..spec import RunSpec
from ..store import ResultStore
from .queue import JobQueue, new_worker_id

__all__ = ["Worker", "FAIL_KEYS_ENV"]

#: Env var naming store-key prefixes whose execution fails (test hook).
FAIL_KEYS_ENV = "REPRO_WORKER_FAIL_KEYS"


def _injected_fail_prefixes() -> tuple[str, ...]:
    raw = os.environ.get(FAIL_KEYS_ENV, "")
    return tuple(p for p in (part.strip() for part in raw.split(",")) if p)


class Worker:
    """One queue-draining daemon (the guts of ``repro worker``).

    Parameters
    ----------
    store :
        Result store jobs publish into.
    queue :
        Job queue to serve (default: the queue co-located with the
        store).
    worker_id :
        Identity used on leases and in the worker registry.
    poll_interval :
        Seconds between queue scans while idle.
    heartbeat_interval :
        Seconds between lease/registry heartbeats; must be comfortably
        below the broker's lease timeout.
    idle_timeout :
        Exit after this many consecutive idle seconds (``None``: serve
        until stopped).
    max_jobs :
        Exit after completing this many jobs (``None``: unlimited).
    die_after_claims :
        Fault injection: SIGKILL ourselves after the N-th claim.
    log :
        Callable receiving one line per event (``None``: silent).
    """

    def __init__(
        self,
        store: ResultStore,
        queue: JobQueue | None = None,
        *,
        worker_id: str | None = None,
        poll_interval: float = 0.5,
        heartbeat_interval: float = 5.0,
        idle_timeout: float | None = None,
        max_jobs: int | None = None,
        die_after_claims: int | None = None,
        snapshot_interval: float = 5.0,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if poll_interval <= 0 or heartbeat_interval <= 0:
            raise ValueError("poll/heartbeat intervals must be > 0")
        self.store = store
        self.queue = queue or JobQueue.for_store(store)
        self.worker_id = worker_id or new_worker_id()
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.idle_timeout = idle_timeout
        self.max_jobs = max_jobs
        self.die_after_claims = die_after_claims
        self.snapshot_interval = snapshot_interval
        self.jobs_done = 0
        self.jobs_failed = 0
        #: Key of the job currently executing (None while idle) — read
        #: by the SIGTERM handler to decide whether a kill is mid-job.
        self.current_job: str | None = None
        self._claims = 0
        self._last_snapshot = 0.0
        self._stop = threading.Event()
        self._log = log or (lambda line: None)

    def stop(self) -> None:
        """Ask the serving loop to exit after the current job."""
        self._stop.set()

    def _maybe_write_snapshot(self, force: bool = False) -> None:
        """Publish the metrics file snapshot, throttled to the interval.

        Best-effort: a full disk or a yanked store must not take the
        worker down — file snapshots are an observability convenience,
        the lease protocol is the correctness plane.
        """
        now = time.monotonic()
        if not force and now - self._last_snapshot < self.snapshot_interval:
            return
        self._last_snapshot = now
        try:
            write_metrics_files(self.store.root)
        except OSError:
            pass

    # -- the serving loop --------------------------------------------------
    def run(self) -> int:
        """Serve the queue until stopped; returns jobs completed.

        An exception escaping the serving loop (not a per-job failure —
        those are caught in :meth:`_process`) dumps the flight recorder
        to ``<store>/telemetry/crash/`` before propagating, so even a
        worker with telemetry off leaves a postmortem trail.
        """
        self.queue.register_worker(self.worker_id)
        self._log(
            f"worker {self.worker_id} serving {self.queue.root} "
            f"-> {self.store.root}"
        )
        flight_record(
            "worker", "start", worker=self.worker_id,
            queue=str(self.queue.root),
        )
        idle_since = time.time()
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                    break
                ticket = self._claim_next()
                if ticket is None:
                    if (
                        self.idle_timeout is not None
                        and time.time() - idle_since > self.idle_timeout
                    ):
                        self._log(f"worker {self.worker_id} idle; exiting")
                        break
                    self.queue.heartbeat_worker(
                        self.worker_id, jobs_done=self.jobs_done
                    )
                    self._maybe_write_snapshot()
                    self._stop.wait(self.poll_interval)
                    continue
                self._process(ticket)
                idle_since = time.time()
        except Exception:
            flight_dump(
                self.store.root, "worker-unhandled-exception",
                error=traceback.format_exc(),
                extra={"worker_id": self.worker_id, "job": self.current_job},
            )
            raise
        finally:
            flight_record(
                "worker", "exit", worker=self.worker_id,
                jobs_done=self.jobs_done, jobs_failed=self.jobs_failed,
            )
            self._maybe_write_snapshot(force=True)
            self.queue.unregister_worker(self.worker_id)
        return self.jobs_done

    def _claim_next(self) -> dict | None:
        """Scan open tickets and lease the first claimable one."""
        for ticket in self.queue.tickets():
            key = ticket.get("key")
            if not key:
                continue
            if self.store.has(key):
                # Finished job whose broker vanished before cleanup.
                self.queue.retire(key)
                continue
            attempt = ticket.get("attempt", 0)
            if attempt >= ticket.get("max_attempts", 1):
                continue  # exhausted: the broker owns the verdict
            if self.queue.lease_path(key).is_file():
                continue
            if self.queue.claim(key, self.worker_id, attempt):
                self._claims += 1
                metric_inc("repro_worker_claims_total")
                flight_record(
                    "claim", key[:12], worker=self.worker_id,
                    attempt=attempt,
                )
                if (
                    self.die_after_claims is not None
                    and self._claims >= self.die_after_claims
                ):
                    # Fault injection: crash while holding the lease.
                    # SIGKILL is uncatchable, so the black box must be
                    # written *before* the shot — exactly what a real
                    # OOM-killed worker cannot do, which is why the
                    # lease-expiry path in the broker also dumps.
                    flight_dump(
                        self.store.root, "fault-injection-sigkill",
                        extra={"worker_id": self.worker_id, "job": key},
                    )
                    os.kill(os.getpid(), signal.SIGKILL)
                return ticket
        return None

    def _process(self, ticket: dict) -> None:
        """Execute one claimed ticket, publishing or recording failure."""
        # Lazy import: backends resolve at executor call time, so the
        # backend layer only reaches back into the executor at call time.
        from ..executor import execute

        key = ticket["key"]
        attempt = ticket.get("attempt", 0)
        self.current_job = key
        flight_record(
            "job", "start", key=key[:12], worker=self.worker_id,
            attempt=attempt, label=ticket.get("label", ""),
        )
        stop_beat = threading.Event()
        last_beat = time.monotonic()

        def _beat() -> None:
            nonlocal last_beat
            while not stop_beat.wait(self.heartbeat_interval):
                now = time.monotonic()
                # Heartbeat lag: how far past the nominal interval this
                # beat landed — a loaded worker (or filesystem) shows up
                # here long before its lease expires.
                gauge(
                    "worker.heartbeat_lag",
                    max(0.0, now - last_beat - self.heartbeat_interval),
                    worker=self.worker_id, key=key[:12],
                )
                last_beat = now
                self.queue.heartbeat(key, self.worker_id)
                self.queue.heartbeat_worker(
                    self.worker_id, jobs_done=self.jobs_done
                )

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        started = time.time()
        job_span = span(
            "worker.job", cat="worker", worker=self.worker_id,
            key=key[:12], label=ticket.get("label", ""), attempt=attempt,
        )
        try:
            with job_span:
                spec = RunSpec.from_json(ticket["spec"])
                if spec.key() != key:
                    raise RuntimeError(
                        f"ticket key {key[:12]} does not match its spec "
                        f"(hash {spec.key()[:12]}): corrupt ticket"
                    )
                if any(key.startswith(p) for p in _injected_fail_prefixes()):
                    raise RuntimeError(
                        f"injected failure for {key[:12]} ({FAIL_KEYS_ENV})"
                    )
                result = execute(spec, self.store)
                self.store.put_result(
                    result,
                    overwrite=bool(ticket.get("overwrite"))
                    and spec.kind != "trace",
                )
                self.queue.complete(key, self.worker_id)
                self.jobs_done += 1
                job_span.annotate(
                    outcome="completed", wall_s=time.time() - started
                )
            metric_inc("repro_worker_jobs_total", outcome="completed")
            metric_observe(
                "repro_worker_job_seconds", time.time() - started,
                outcome="completed",
            )
            flight_record(
                "job", "completed", key=key[:12], worker=self.worker_id,
                wall_s=round(time.time() - started, 4),
            )
            self._log(
                f"worker {self.worker_id} completed "
                f"{ticket.get('label', key[:12])} "
                f"({time.time() - started:.2f}s, attempt {attempt})"
            )
        except Exception as exc:
            self.jobs_failed += 1
            job_span.annotate(outcome="failed")
            metric_inc("repro_worker_jobs_total", outcome="failed")
            metric_observe(
                "repro_worker_job_seconds", time.time() - started,
                outcome="failed",
            )
            flight_record(
                "job", "failed", key=key[:12], worker=self.worker_id,
                attempt=attempt, error=repr(exc),
            )
            self.queue.fail(
                key, self.worker_id, attempt, traceback.format_exc()
            )
            self._log(
                f"worker {self.worker_id} failed "
                f"{ticket.get('label', key[:12])} (attempt {attempt})"
            )
        finally:
            self.current_job = None
            metric_gauge("repro_worker_jobs_done", self.jobs_done)
            metric_gauge("repro_worker_jobs_failed", self.jobs_failed)
            stop_beat.set()
            beater.join(timeout=self.heartbeat_interval + 1.0)
            # A worker draining short jobs back to back never reaches the
            # idle branch; refresh the registry here so it reads alive.
            self.queue.heartbeat_worker(
                self.worker_id, jobs_done=self.jobs_done
            )
            # Crash-safe event log: everything up to and including this
            # job survives a SIGKILL during the next one.
            flush_active()
            self._maybe_write_snapshot()
