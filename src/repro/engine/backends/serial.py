"""The ``serial`` backend: everything in this process, one job at a time.

This is the historical ``n_jobs=1`` executor path, extracted verbatim:
no pool, no queue, results published straight into the store.  It is
also the fallback the ``process`` backend uses for single-job layers,
so the two stay behavior-identical by sharing this code.
"""

from __future__ import annotations

from typing import Sequence

from ...registry import register
from ..spec import RunSpec
from ..store import ResultStore
from .base import ExecutionBackend, Progress, layer_status

__all__ = ["SerialBackend"]


@register(
    "backend",
    "serial",
    description="in-process sequential execution (the n_jobs=1 baseline)",
    tags=("local",),
)
class SerialBackend(ExecutionBackend):
    """Run every pending job in-process, in layer order."""

    name = "serial"

    def run_layer(
        self,
        depth: int,
        specs: Sequence[RunSpec],
        store: ResultStore,
        *,
        force: bool,
        say: Progress,
        verbose: bool,
    ) -> None:
        # Lazy: the executor resolves backends at call time, so backends
        # may only reach back into it at call time.
        from ..executor import execute

        total = len(specs)
        for done, spec in enumerate(specs, start=1):
            store.put_result(
                execute(spec, store),
                overwrite=force and spec.kind != "trace",
            )
            say(f"computed {spec.label()}")
            if verbose:
                say(
                    layer_status(
                        depth,
                        queued=total - done,
                        leased=0,
                        done=done,
                        total=total,
                    )
                )

    def placement(self, plan, store) -> list[str]:
        jobs = sum(len(layer) for layer in plan.layers)
        return [
            f"serial: all {jobs} pending jobs run in this process, "
            f"layer by layer"
        ]
