"""The shared-filesystem job queue behind the ``cluster`` backend.

The broker (:class:`~repro.engine.backends.cluster.ClusterBackend`) and
the worker daemons (``repro worker``) never talk to each other directly
— they rendezvous through a directory of small JSON files living next to
the content-addressed store (default ``<store>/queue``)::

    queue/
      todo/<key>.json            job ticket: spec, attempt, retry cap
      leases/<key>.json          owner + heartbeat of the claiming worker
      failed/<key>.<n>.json      per-attempt failure record (traceback)
      workers/<worker-id>.json   worker registry entry (heartbeated)
      tmp/                       staging for atomic writes

Every mutation is a single atomic filesystem operation, so the protocol
needs no locks and survives hard-killed participants:

* tickets and heartbeats are staged in ``tmp/`` and published with
  ``os.replace`` (atomic overwrite);
* a lease is claimed with ``os.link`` (atomic create-if-absent — the
  loser of a claim race gets ``FileExistsError`` and moves on);
* job *completion* is the content-addressed store itself: a job is done
  exactly when ``store.has(key)`` — the queue files are only
  coordination, so losing any of them costs a retry, never a result.

The attempt counter lives in the ticket; :meth:`JobQueue.bump_attempt`
takes the expected current value so a crashed worker's lease expiry and
its own belated failure report cannot double-count one attempt.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import time
from pathlib import Path
from typing import TYPE_CHECKING

from ...telemetry import flight_record, metric_inc
from ..spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..store import ResultStore

__all__ = ["JobQueue", "new_worker_id"]

_TODO = "todo"
_LEASES = "leases"
_FAILED = "failed"
_WORKERS = "workers"
_TMP = "tmp"


def new_worker_id() -> str:
    """A globally unique worker identity: ``<host>-<pid>-<nonce>``."""
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(3)}"


class JobQueue:
    """Atomic file-based tickets, leases and worker registry."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @staticmethod
    def for_store(store: "ResultStore") -> "JobQueue":
        """The queue co-located with ``store`` (its ``queue/`` subdir)."""
        return JobQueue(Path(store.root) / "queue")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue({str(self.root)!r})"

    # -- atomic file primitives --------------------------------------------
    def _write_json(self, path: Path, doc: dict) -> None:
        """Publish ``doc`` at ``path`` atomically (stage + rename)."""
        tmp = self.root / _TMP
        tmp.mkdir(parents=True, exist_ok=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        stage = tmp / f"{path.name}.{os.getpid()}.{secrets.token_hex(3)}"
        stage.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        os.replace(stage, path)

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        """Parse one queue file; unreadable/vanished files read as None."""
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    # -- tickets -----------------------------------------------------------
    def ticket_path(self, key: str) -> Path:
        """Where the ticket of job ``key`` lives while the job is open."""
        return self.root / _TODO / f"{key}.json"

    def enqueue(
        self,
        spec: RunSpec,
        *,
        max_attempts: int = 3,
        overwrite: bool = False,
        now: float | None = None,
    ) -> bool:
        """Post a job ticket unless one is already open for its key.

        Returns whether a new ticket was written.  An existing ticket is
        left untouched so a re-submitted sweep cannot reset another
        broker's attempt counter mid-retry.
        """
        key = spec.key()
        path = self.ticket_path(key)
        if path.is_file():
            return False
        self._write_json(
            path,
            {
                "key": key,
                "spec": spec.to_json(),
                "label": spec.label(),
                "attempt": 0,
                "max_attempts": int(max_attempts),
                "overwrite": bool(overwrite),
                "enqueued_at": time.time() if now is None else now,
            },
        )
        metric_inc("repro_queue_enqueued_total")
        return True

    def read_ticket(self, key: str) -> dict | None:
        """The open ticket of ``key``, or ``None``."""
        return self._read_json(self.ticket_path(key))

    def tickets(self) -> list[dict]:
        """Every open ticket, in stable (key) order."""
        todo = self.root / _TODO
        if not todo.is_dir():
            return []
        out = []
        for path in sorted(todo.iterdir()):
            doc = self._read_json(path)
            if doc is not None:
                out.append(doc)
        return out

    def retire(self, key: str) -> None:
        """Drop the ticket of ``key`` (job finished or abandoned)."""
        self.ticket_path(key).unlink(missing_ok=True)

    def bump_attempt(self, key: str, expected: int) -> dict | None:
        """Advance the ticket's attempt counter past ``expected``.

        No-ops (returning the current ticket) when the counter already
        moved — the lease-expiry sweep and a slow worker's own failure
        report may both try to charge the same attempt.
        """
        ticket = self.read_ticket(key)
        if ticket is None:
            return None
        if ticket.get("attempt", 0) == expected:
            ticket["attempt"] = expected + 1
            self._write_json(self.ticket_path(key), ticket)
        return ticket

    # -- leases ------------------------------------------------------------
    def lease_path(self, key: str) -> Path:
        """Where the lease of job ``key`` lives while a worker holds it."""
        return self.root / _LEASES / f"{key}.json"

    def claim(
        self, key: str, owner: str, attempt: int, now: float | None = None
    ) -> bool:
        """Try to take the lease on ``key``; returns whether we won it.

        The lease file is created atomically with its full content
        (hard-link trick), so a concurrent reader never observes a
        half-written lease.
        """
        now = time.time() if now is None else now
        path = self.lease_path(key)
        tmp = self.root / _TMP
        tmp.mkdir(parents=True, exist_ok=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        stage = tmp / f"{path.name}.{os.getpid()}.{secrets.token_hex(3)}"
        stage.write_text(
            json.dumps(
                {
                    "key": key,
                    "owner": owner,
                    "attempt": int(attempt),
                    "claimed_at": now,
                    "heartbeat_at": now,
                },
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        try:
            os.link(stage, path)
        except FileExistsError:
            metric_inc("repro_queue_claims_total", outcome="lost")
            return False
        finally:
            stage.unlink(missing_ok=True)
        metric_inc("repro_queue_claims_total", outcome="won")
        return True

    def read_lease(self, key: str) -> dict | None:
        """The lease of ``key`` (heartbeat falls back to file mtime)."""
        path = self.lease_path(key)
        doc = self._read_json(path)
        if doc is not None:
            return doc
        try:  # unparsable but present: synthesize from the mtime
            return {"key": key, "owner": None,
                    "heartbeat_at": path.stat().st_mtime, "attempt": 0}
        except OSError:
            return None

    def heartbeat(self, key: str, owner: str, now: float | None = None) -> bool:
        """Refresh the lease we hold; returns False if we lost it."""
        lease = self.read_lease(key)
        if lease is None or lease.get("owner") != owner:
            return False
        lease["heartbeat_at"] = time.time() if now is None else now
        self._write_json(self.lease_path(key), lease)
        return True

    def release(self, key: str, owner: str | None = None) -> None:
        """Drop the lease of ``key`` (ours, or anyone's when owner=None)."""
        lease = self.read_lease(key)
        if lease is None:
            return
        if owner is not None and lease.get("owner") not in (owner, None):
            return
        self.lease_path(key).unlink(missing_ok=True)

    def leases(self) -> list[dict]:
        """Every live lease, in stable (key) order."""
        leases = self.root / _LEASES
        if not leases.is_dir():
            return []
        out = []
        for path in sorted(leases.iterdir()):
            doc = self.read_lease(path.stem.split(".")[0])
            if doc is not None:
                out.append(doc)
        return out

    def expire_leases(
        self, timeout: float, now: float | None = None
    ) -> list[dict]:
        """Requeue every job whose worker stopped heartbeating.

        A lease older than ``timeout`` means its worker crashed (or lost
        the filesystem); the lease is dropped and the ticket's attempt
        counter charged, which makes the job claimable again.  Returns
        the expired leases.
        """
        now = time.time() if now is None else now
        expired = []
        for lease in self.leases():
            beat = lease.get("heartbeat_at") or 0.0
            if now - beat <= timeout:
                continue
            key = lease["key"]
            self.lease_path(key).unlink(missing_ok=True)
            self.bump_attempt(key, lease.get("attempt", 0))
            metric_inc("repro_queue_lease_expired_total")
            flight_record(
                "lease", "expired", key=str(key)[:12],
                owner=lease.get("owner"),
                attempt=lease.get("attempt", 0),
            )
            expired.append(lease)
        return expired

    # -- completion / failure ----------------------------------------------
    def complete(self, key: str, owner: str) -> None:
        """Close out a job we finished (result already in the store)."""
        self.retire(key)
        self.release(key, owner)

    def fail(
        self,
        key: str,
        owner: str,
        attempt: int,
        error: str,
        now: float | None = None,
    ) -> None:
        """Record one failed attempt and put the job back up for grabs."""
        self._write_json(
            self.root / _FAILED / f"{key}.{attempt}.json",
            {
                "key": key,
                "owner": owner,
                "attempt": int(attempt),
                "error": error,
                "failed_at": time.time() if now is None else now,
            },
        )
        metric_inc("repro_queue_failures_total")
        flight_record(
            "job", "fail-recorded", key=key[:12], owner=owner,
            attempt=attempt,
        )
        self.bump_attempt(key, attempt)
        self.release(key, owner)

    def failures(self, key: str | None = None) -> list[dict]:
        """Failure records (of one job, or all), oldest attempt first."""
        failed = self.root / _FAILED
        if not failed.is_dir():
            return []
        out = []
        for path in sorted(failed.iterdir()):
            doc = self._read_json(path)
            if doc is None:
                continue
            if key is None or doc.get("key") == key:
                out.append(doc)
        return sorted(out, key=lambda d: (d["key"], d.get("attempt", 0)))

    def clear_failures(self, key: str | None = None) -> int:
        """Drop failure records (of one job, or all); returns the count."""
        failed = self.root / _FAILED
        if not failed.is_dir():
            return 0
        removed = 0
        for path in sorted(failed.iterdir()):
            if key is not None and not path.name.startswith(f"{key}."):
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    # -- worker registry -----------------------------------------------------
    def worker_path(self, worker_id: str) -> Path:
        """Registry entry of one worker daemon."""
        return self.root / _WORKERS / f"{worker_id}.json"

    def register_worker(self, worker_id: str, now: float | None = None) -> None:
        """Announce a worker daemon (heartbeated while it polls)."""
        now = time.time() if now is None else now
        self._write_json(
            self.worker_path(worker_id),
            {
                "worker_id": worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "started_at": now,
                "heartbeat_at": now,
                "jobs_done": 0,
            },
        )

    def heartbeat_worker(
        self,
        worker_id: str,
        jobs_done: int | None = None,
        now: float | None = None,
    ) -> None:
        """Refresh a worker's registry heartbeat (re-registers if lost)."""
        doc = self._read_json(self.worker_path(worker_id))
        if doc is None:
            self.register_worker(worker_id, now=now)
            doc = self._read_json(self.worker_path(worker_id))
            if doc is None:  # pragma: no cover - racing filesystem
                return
        doc["heartbeat_at"] = time.time() if now is None else now
        if jobs_done is not None:
            doc["jobs_done"] = int(jobs_done)
        self._write_json(self.worker_path(worker_id), doc)

    def unregister_worker(self, worker_id: str) -> None:
        """Remove a worker's registry entry (clean shutdown)."""
        self.worker_path(worker_id).unlink(missing_ok=True)

    def workers(self) -> list[dict]:
        """Every registered worker, in stable (id) order."""
        registry_dir = self.root / _WORKERS
        if not registry_dir.is_dir():
            return []
        out = []
        for path in sorted(registry_dir.iterdir()):
            doc = self._read_json(path)
            if doc is not None:
                out.append(doc)
        return out

    def alive_workers(
        self, timeout: float, now: float | None = None
    ) -> list[dict]:
        """Workers whose registry heartbeat is fresher than ``timeout``."""
        now = time.time() if now is None else now
        return [
            doc
            for doc in self.workers()
            if now - (doc.get("heartbeat_at") or 0.0) <= timeout
        ]
