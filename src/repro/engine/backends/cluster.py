"""The ``cluster`` backend: a shared-filesystem broker over worker daemons.

The broker side of the queue protocol (:mod:`.queue`).  For each
topological layer of the plan it posts one ticket per pending job, then
watches the queue while ``repro worker`` daemons — started by hand on
any host that mounts the store, or auto-spawned locally via
``workers=N`` for the zero-to-aha path — claim leases, execute and
publish.  The broker itself never computes: it requeues jobs whose
lease stops heartbeating (worker crash), charges attempts, enforces the
retry cap, and raises a per-job :class:`ClusterJobError` report when a
job exhausts its attempts.

Correctness leans entirely on the content-addressed store: completion
is ``store.has(key)``, publishing is atomic and idempotent, and results
travel only through the store — so a cluster sweep is bit-identical to
a serial one no matter how many workers raced, crashed or retried.
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Sequence

from ...registry import register
from ...telemetry import (
    counter,
    flight_dump,
    flight_record,
    gauge,
    metric_gauge,
    metric_inc,
    telemetry_active,
)
from ..graph import Plan
from ..spec import RunSpec
from ..store import ResultStore
from .base import ExecutionBackend, Progress, layer_status
from .queue import JobQueue

__all__ = ["ClusterBackend", "ClusterJobError"]

logger = logging.getLogger("repro.engine.cluster")


class ClusterJobError(RuntimeError):
    """One or more jobs exhausted their retry cap.

    ``failures`` maps store key -> list of failure-record dicts (owner,
    attempt, traceback), giving the per-job report the message
    summarizes.
    """

    def __init__(self, message: str, failures: dict[str, list[dict]]) -> None:
        super().__init__(message)
        self.failures = failures


def _last_error_line(records: list[dict]) -> str:
    """The most informative line of a job's latest failure record."""
    if not records:
        return "lease expired repeatedly (no failure record: worker crash)"
    lines = [
        ln for ln in records[-1].get("error", "").strip().splitlines() if ln
    ]
    return lines[-1] if lines else "unknown error"


@register(
    "backend",
    "cluster",
    description="shared-filesystem job broker over repro worker daemons",
    tags=("distributed",),
)
class ClusterBackend(ExecutionBackend):
    """Broker a plan through the shared job queue.

    Parameters
    ----------
    workers :
        Local ``repro worker`` daemons to auto-spawn for the duration of
        the plan (0: rely on externally started workers).
    queue_dir :
        Queue location (default: ``<store>/queue``).  Workers must be
        pointed at the same directory.
    lease_timeout :
        Seconds without a lease heartbeat before the broker declares the
        worker dead and requeues the job.
    poll_interval :
        Seconds between broker queue scans.
    max_attempts :
        Retry cap per job (crashes and failures both charge attempts).
    stall_timeout :
        Seconds without any observable progress (lease movement, job
        completion) before the broker gives up with a diagnosis —
        typically "no workers are serving this queue".
    """

    name = "cluster"

    def __init__(
        self,
        workers: int = 0,
        queue_dir: str | None = None,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
        stall_timeout: float = 600.0,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_timeout <= 0 or poll_interval <= 0 or stall_timeout <= 0:
            raise ValueError("timeouts/intervals must be > 0")
        self.workers = workers
        self.queue_dir = queue_dir
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.stall_timeout = stall_timeout
        self._spawned: list[subprocess.Popen] = []

    # -- wiring ------------------------------------------------------------
    def job_queue(self, store: ResultStore) -> JobQueue:
        """The queue this backend brokers for ``store``."""
        if self.queue_dir is not None:
            return JobQueue(self.queue_dir)
        return JobQueue.for_store(store)

    def worker_command(self, store: ResultStore) -> list[str]:
        """The ``repro worker`` invocation that serves this queue."""
        return [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--cache-dir",
            str(store.root),
            "--queue-dir",
            str(self.job_queue(store).root),
            "--poll-interval",
            str(min(self.poll_interval, 0.5)),
            "--heartbeat-interval",
            str(max(self.lease_timeout / 4.0, 0.05)),
        ]

    def _spawn_workers(self, store: ResultStore) -> list[subprocess.Popen]:
        """Start ``self.workers`` local daemons serving the queue."""
        import repro

        env = dict(os.environ)
        # The spawned interpreter must resolve the same repro tree no
        # matter what the caller's cwd is.
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root + (
            os.pathsep + existing if existing else ""
        )
        command = self.worker_command(store)
        return [
            subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            for _ in range(self.workers)
        ]

    def _reap_workers(self) -> None:
        """Terminate (then kill) every auto-spawned worker daemon."""
        for proc in self._spawned:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._spawned:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung child
                proc.kill()
                proc.wait()
        self._spawned = []

    # -- the broker --------------------------------------------------------
    def run_plan(
        self,
        plan: Plan,
        store: ResultStore,
        *,
        force: bool = False,
        progress: Progress | None = None,
        verbose: bool = False,
    ) -> None:
        say = progress or (lambda line: None)
        queue = self.job_queue(store)
        if plan.layers and self.workers:
            self._spawned = self._spawn_workers(store)
            say(
                f"cluster: spawned {self.workers} local worker"
                f"{'s' if self.workers != 1 else ''} on {queue.root}"
            )
        try:
            super().run_plan(
                plan, store, force=force, progress=progress, verbose=verbose
            )
        finally:
            self._reap_workers()

    def run_layer(
        self,
        depth: int,
        specs: Sequence[RunSpec],
        store: ResultStore,
        *,
        force: bool,
        say: Progress,
        verbose: bool,
    ) -> None:
        queue = self.job_queue(store)
        pending: dict[str, RunSpec] = {}
        for spec in specs:
            key = spec.key()
            pending[key] = spec
            if force and spec.kind != "trace" and store.has(key):
                # Completion is store.has(key), so a forced job must have
                # its stored result retired up front — otherwise the
                # broker (and every worker) would count it done as is.
                store.remove(key)
            queue.clear_failures(key)  # this broker's attempts start fresh
            queue.enqueue(
                spec,
                max_attempts=self.max_attempts,
                overwrite=force and spec.kind != "trace",
            )
        if verbose:
            say(
                f"layer {depth}: enqueued {len(pending)} jobs on "
                f"{queue.root}"
            )
        self._drain_layer(depth, pending, queue, store, say, verbose)

    def _drain_layer(
        self,
        depth: int,
        pending: dict[str, RunSpec],
        queue: JobQueue,
        store: ResultStore,
        say: Progress,
        verbose: bool,
    ) -> None:
        """Watch the queue until every job of the layer is stored or dead."""
        total = len(pending)
        done: set[str] = set()
        dead: dict[str, list[dict]] = {}
        last_status = ""
        last_progress = time.time()
        warned_no_workers = False
        while True:
            now = time.time()
            for lease in queue.expire_leases(self.lease_timeout, now=now):
                key = lease.get("key")
                counter(
                    "queue.lease_expired", depth=depth,
                    key=str(key)[:12], owner=lease.get("owner"),
                    lease_age_s=now - (lease.get("heartbeat_at") or now),
                )
                if key in pending:
                    label = pending[key].label()
                    say(
                        f"lease expired: requeued {label} "
                        f"(worker {lease.get('owner')})"
                    )
                    logger.warning(
                        "lease expired: requeued %s (worker %s)",
                        label, lease.get("owner"),
                    )
                    last_progress = now
            leased = 0
            for key, spec in pending.items():
                if key in done or key in dead:
                    continue
                if store.has(key):
                    done.add(key)
                    metric_inc("repro_queue_jobs_done_total")
                    if telemetry_active():
                        ticket = queue.read_ticket(key)
                        enqueued_at = (ticket or {}).get("enqueued_at")
                        counter(
                            "queue.job_done", depth=depth, key=key[:12],
                            queue_wall_s=(now - enqueued_at)
                            if enqueued_at else None,
                            attempts=(ticket or {}).get("attempt", 0),
                        )
                    queue.retire(key)  # belt and braces if a worker died
                    queue.release(key)
                    continue
                if queue.lease_path(key).is_file():
                    leased += 1
                    continue
                ticket = queue.read_ticket(key)
                if ticket is None:
                    # Ticket vanished without a result (manual cleanup,
                    # queue wiped): repost it.
                    queue.enqueue(spec, max_attempts=self.max_attempts)
                elif ticket.get("attempt", 0) >= ticket.get(
                    "max_attempts", self.max_attempts
                ):
                    queue.retire(key)
                    dead[key] = queue.failures(key)
                    metric_inc("repro_queue_retry_exhausted_total")
                    flight_record(
                        "job", "retry-exhausted", key=key[:12],
                        depth=depth, attempts=ticket.get("attempt", 0),
                    )
                    counter(
                        "queue.retry_exhausted", depth=depth, key=key[:12],
                        attempts=ticket.get("attempt", 0),
                    )
                    say(
                        f"gave up on {spec.label()} after "
                        f"{ticket.get('attempt', 0)} attempts"
                    )
                    logger.error(
                        "gave up on %s after %d attempts",
                        spec.label(), ticket.get("attempt", 0),
                    )
                    last_progress = now
            if len(done) + len(dead) >= total:
                break
            status = layer_status(
                depth,
                queued=total - len(done) - len(dead) - leased,
                leased=leased,
                done=len(done),
                total=total,
            )
            if status != last_status:
                if verbose:
                    say(status)
                logger.debug("%s", status)
                gauge("queue.depth", total - len(done) - len(dead),
                      depth=depth)
                gauge("queue.leased", leased, depth=depth)
                gauge("queue.done", len(done), depth=depth)
                metric_gauge(
                    "repro_queue_depth", total - len(done) - len(dead),
                    depth=depth,
                )
                metric_gauge("repro_queue_leased", leased, depth=depth)
                metric_gauge("repro_queue_done", len(done), depth=depth)
                last_status = status
                last_progress = now
            if (
                not warned_no_workers
                and leased == 0
                and not queue.alive_workers(max(self.lease_timeout, 10.0))
            ):
                if not self._spawned:
                    say(
                        f"cluster: no alive workers on {queue.root} — start "
                        f"some with: repro worker --cache-dir {store.root}"
                    )
                    logger.warning(
                        "no alive workers on %s", queue.root
                    )
                    warned_no_workers = True
                elif all(p.poll() is not None for p in self._spawned):
                    raise RuntimeError(
                        f"all {len(self._spawned)} auto-spawned workers "
                        f"exited (codes "
                        f"{[p.returncode for p in self._spawned]}) with "
                        f"{total - len(done)} jobs unfinished"
                    )
            if now - last_progress > self.stall_timeout:
                alive = len(queue.alive_workers(max(self.lease_timeout, 10.0)))
                raise RuntimeError(
                    f"cluster backend stalled: no progress for "
                    f"{self.stall_timeout:.0f}s on layer {depth} "
                    f"({total - len(done) - len(dead)} jobs open, "
                    f"{alive} alive workers on {queue.root})"
                )
            time.sleep(self.poll_interval)
        if dead:
            lines = [
                f"{len(dead)} job{'s' if len(dead) != 1 else ''} failed "
                f"after up to {self.max_attempts} attempts:"
            ]
            for key, records in dead.items():
                lines.append(
                    f"  {pending[key].label()} ({key[:12]}): "
                    f"{len(records)} recorded failure"
                    f"{'s' if len(records) != 1 else ''}; "
                    f"{_last_error_line(records)}"
                )
            # The broker is the last observer standing when every retry
            # is burned — its black box names the dead jobs for triage.
            flight_dump(
                store.root, "retry-exhausted",
                error=_last_error_line(next(iter(dead.values()))),
                extra={"jobs": sorted(k[:12] for k in dead)},
            )
            raise ClusterJobError("\n".join(lines), dead)

    # -- introspection -----------------------------------------------------
    def placement(self, plan: Plan, store: ResultStore) -> list[str]:
        queue = self.job_queue(store)
        lines = [f"cluster: shared queue at {queue.root}"]
        alive = queue.alive_workers(max(self.lease_timeout, 10.0))
        if alive:
            for doc in alive:
                lines.append(
                    f"  worker {doc['worker_id']} "
                    f"(pid {doc.get('pid')}, {doc.get('jobs_done', 0)} jobs "
                    f"done)"
                )
        else:
            lines.append(
                f"  no alive workers — start some with: "
                f"repro worker --cache-dir {store.root}"
            )
        if self.workers:
            lines.append(
                f"  would auto-spawn {self.workers} local worker"
                f"{'s' if self.workers != 1 else ''}"
            )
        for depth in range(len(plan.layers)):
            lines.append(
                f"  layer {depth}: {len(plan.layers[depth])} jobs through "
                f"the queue (retry cap {self.max_attempts})"
            )
        return lines
