"""The ``python -m repro`` command line: drive the experiment engine.

Subcommands
-----------
``repro run``
    Execute (or fetch) a single job and print its summary or series.
``repro sweep``
    Fan a grid of jobs — apps x partitioners x machines — through an
    execution backend (``--backend serial|process|cluster``; ``cluster``
    auto-spawns local daemons via ``--workers N``).  Dependency
    resolution schedules missing workload traces first; already-stored
    results are skipped, so re-running a killed sweep resumes where it
    left off.
``repro worker``
    Run one long-lived worker daemon: claim leases from the shared job
    queue next to the store, execute specs, publish results, heartbeat.
    Start any number of these (on any host that mounts the store) and
    point ``repro sweep --backend cluster`` at the same cache dir.
``repro plan``
    Resolve the same grid into its dependency-aware execution plan
    *without running it*: what the store already holds vs. what would be
    computed, layer by layer (``--backend`` adds the backend's placement
    report).
``repro graph``
    Print the spec dependency graph (``--dot`` for Graphviz).
``repro report``
    Regenerate the paper's figures through the engine and render them as
    ASCII charts (``repro.experiments.report``); ``--timings`` instead
    aggregates span timings across every telemetry run profile in the
    store.
``repro profile``
    Render the per-run timing tree (span hierarchy, self/total time,
    pair-kernel pruning ratios) a telemetry-enabled run left behind.
``repro top``
    One-shot (or ``--watch``) status table of a cluster sweep: worker
    registry with heartbeat ages, live leases, waiting tickets, recent
    failures — read straight off the shared queue directory.
``repro describe``
    Introspect the component registries: every registered app,
    partitioner, schedule, machine and scale with its parameter schema.
``repro warehouse build | status | query``
    The sweep warehouse (:mod:`repro.warehouse`): flatten stored runs
    into hive-partitioned columnar tables and query them out-of-core.
    ``build`` is incremental and idempotent (``--preview`` prints the
    partition plan without writing; ``--follow`` keeps ingesting as a
    live sweep publishes); ``query`` projects/filters/aggregates
    (``--columns``, ``--where``, ``--group-by``/``--stats``).
    ``repro report --from-warehouse`` renders the figures from the
    warehouse, byte-identical to the store-scan path.
``repro cache ls | clear | gc | verify``
    Inspect, empty, garbage-collect or integrity-check the
    content-addressed store (``ls --json`` emits a machine-readable
    listing; ``gc`` takes ``--max-bytes`` / ``--older-than`` with an
    LRU-by-mtime policy; ``verify`` scans for corrupt entries after
    hard kills and removes them with ``--remove``).

The store location is ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``);
``--cache-dir`` overrides it per invocation.  ``--telemetry json|chrome``
(or ``$REPRO_TELEMETRY``) turns on span tracing for any run/sweep/worker
invocation; event logs land under ``<store>/telemetry/`` and never touch
content hashes.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import Sequence

from ..registry import describe as describe_components
from ..registry import registry
from ..telemetry import TELEMETRY_ENV, TELEMETRY_MODES
from .backends import ClusterJobError, resolve_backend
from .executor import run_spec, run_specs
from .graph import Plan, build_plan
from .components import STATIC_SUITE
from .spec import RunSpec, penalties_spec, sim_spec, trace_spec
from .store import ResultStore, default_store

__all__ = ["main", "build_parser"]


#: ``--log-level`` vocabulary, mapped onto the stdlib levels.
_LOG_LEVELS = ("debug", "info", "warning", "error")


def _setup_logging(level: str) -> None:
    """Configure the ``repro`` logger tree for CLI output.

    Broker and worker chatter goes through ``logging`` (timestamped,
    filterable by ``--log-level``) instead of bare prints; idempotent so
    tests can call :func:`main` repeatedly in one process.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                datefmt="%Y-%m-%dT%H:%M:%S",
            )
        )
        logger.addHandler(handler)
        logger.propagate = False


def _store_from(args) -> ResultStore:
    if getattr(args, "cache_dir", None):
        return ResultStore(args.cache_dir)
    return default_store()


def _split(value: str) -> list[str]:
    return [v for v in (part.strip() for part in value.split(",")) if v]


def _resolve_apps(value: str) -> list[str]:
    from ..experiments.workloads import APP_NAMES, app_names

    aliases = {
        "2d": list(APP_NAMES),
        "3d": list(app_names(3)),
        "all": list(app_names()),
    }
    if value in aliases:
        return aliases[value]
    apps = _split(value)
    known = registry("app")
    for app in apps:
        if app not in known:
            raise SystemExit(
                f"unknown app {app!r}; choose from {tuple(known)} "
                f"or the aliases 2d/3d/all"
            )
    return apps


def _resolve_partitioners(value: str) -> list[str]:
    partitioners = registry("partitioner")
    schedules = registry("schedule")
    aliases = {
        "suite": list(STATIC_SUITE),
        "all": list(partitioners) + list(schedules),
    }
    if value in aliases:
        return aliases[value]
    names = _split(value)
    for name in names:
        if name not in partitioners and name not in schedules:
            raise SystemExit(
                f"unknown partitioner {name!r}; choose from "
                f"{tuple(partitioners) + tuple(schedules)} or suite/all"
            )
    return names


def _parse_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects name=value, got {pair!r}")
        name, raw = pair.split("=", 1)
        try:
            params[name] = json.loads(raw)
        except json.JSONDecodeError:
            params[name] = raw
    return params


_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}
_DURATION_SUFFIXES = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def _parse_size(value: str) -> int:
    """``500M`` / ``2g`` / ``1048576`` -> bytes."""
    raw = value.strip().lower().removesuffix("b")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        return int(float(raw) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a size like 500M or 2G, got {value!r}"
        ) from None


def _parse_duration(value: str) -> float:
    """``7d`` / ``12h`` / ``3600`` -> seconds."""
    raw = value.strip().lower()
    factor = 1
    if raw and raw[-1] in _DURATION_SUFFIXES:
        factor = _DURATION_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        return float(raw) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a duration like 7d or 12h, got {value!r}"
        ) from None


def _sweep_specs(args) -> list[RunSpec]:
    machines = registry("machine")
    specs: list[RunSpec] = []
    for app in _resolve_apps(args.apps):
        for machine in _split(args.machines):
            if machine not in machines:
                raise SystemExit(
                    f"unknown machine {machine!r}; choose from "
                    f"{tuple(machines)}"
                )
            for name in _resolve_partitioners(args.partitioners):
                if args.kind == "sim":
                    specs.append(
                        sim_spec(
                            app,
                            args.scale,
                            nprocs=args.nprocs,
                            partitioner=name,
                            machine=machine,
                        )
                    )
                elif args.kind == "penalties":
                    spec = penalties_spec(
                        app, args.scale, nprocs=args.nprocs, machine=machine
                    )
                    if spec not in specs:
                        specs.append(spec)
                else:  # trace
                    spec = trace_spec(app, args.scale)
                    if spec not in specs:
                        specs.append(spec)
    return specs


def _print_sweep_table(results) -> None:
    header = (
        f"{'app':<6} {'partitioner':<22} {'machine':<13} {'P':>4} "
        f"{'steps':>6} {'total_s':>10} {'imb%':>8} {'comm':>7} {'mig':>7}"
    )
    print(header)
    print("-" * len(header))
    for res in results:
        spec = res.spec
        machine = spec.machine if isinstance(spec.machine, str) else "custom"
        if spec.kind == "sim":
            summary = res.meta["summary"]
            imb = 100.0 * (summary["mean_imbalance"] - 1.0)
            print(
                f"{spec.app:<6} {spec.partitioner:<22} {machine:<13} "
                f"{spec.nprocs:>4} {res.arrays['step'].size:>6} "
                f"{res.meta['total_execution_seconds']:>10.3f} "
                f"{imb:>8.2f} {summary['mean_relative_comm']:>7.3f} "
                f"{summary['mean_relative_migration']:>7.3f}"
            )
        elif spec.kind == "penalties":
            beta_c = res.arrays["beta_c"]
            beta_m = res.arrays["beta_m"]
            print(
                f"{spec.app:<6} {'(penalties)':<22} {machine:<13} "
                f"{spec.nprocs:>4} {beta_c.size:>6} {'-':>10} {'-':>8} "
                f"{beta_c.mean():>7.3f} {beta_m.mean():>7.3f}"
            )
        else:
            stats = res.meta["stats"]
            print(
                f"{spec.app:<6} {'(trace)':<22} {'-':<13} {'-':>4} "
                f"{stats['nsteps']:>6} {'-':>10} {'-':>8} {'-':>7} {'-':>7}"
            )


def _resolve_cli_backend(args):
    """Build the backend an invocation selected, or None for the default."""
    backend = getattr(args, "backend", None)
    if getattr(args, "workers", None) and backend != "cluster":
        raise SystemExit("--workers needs --backend cluster")
    if backend is None:
        return None
    if backend not in registry("backend"):
        raise SystemExit(
            f"unknown backend {backend!r}; choose from "
            f"{tuple(registry('backend'))}"
        )
    return resolve_backend(
        backend,
        n_jobs=getattr(args, "n_jobs", 1),
        workers=getattr(args, "workers", None),
    )


def _cmd_run(args) -> int:
    store = _store_from(args)
    if args.kind == "sim":
        spec = sim_spec(
            args.app,
            args.scale,
            nprocs=args.nprocs,
            partitioner=args.partitioner,
            params=_parse_params(args.param),
            machine=args.machine,
            seed=args.seed,
        )
    elif args.kind == "penalties":
        spec = penalties_spec(
            args.app, args.scale, nprocs=args.nprocs, machine=args.machine,
            seed=args.seed,
        )
    else:
        spec = trace_spec(args.app, args.scale, seed=args.seed)
    cached = store.has(spec.key())
    backend = _resolve_cli_backend(args)
    if backend is not None:
        result = run_specs(
            [spec], store=store, force=args.force, backend=backend
        )[0]
    else:
        result = run_spec(spec, store=store, force=args.force)
    if args.json:
        print(json.dumps({"key": result.key, "meta": result.meta}, indent=1,
                         sort_keys=True))
        return 0
    print(f"{spec.label()}  [{'stored' if cached and not args.force else 'computed'}]")
    print(f"key:   {result.key}")
    print(f"store: {store.root}")
    for name, value in sorted(result.meta.items()):
        if not isinstance(value, dict):
            print(f"  {name}: {value}")
    if args.series:
        from ..experiments.analysis import series_stats

        for name in sorted(result.arrays):
            stats = series_stats(result.arrays[name])
            print(
                f"  {name:<22} mean={stats['mean']:<12.6g} "
                f"min={stats['min']:<12.6g} max={stats['max']:<12.6g}"
            )
    return 0


def _cmd_sweep(args) -> int:
    store = _store_from(args)
    specs = _sweep_specs(args)
    # One dependency-aware resolution pass for the summary numbers (the
    # executor rebuilds its own against the live store).
    counts = build_plan(specs, store, force=args.force).counts()
    server = None
    if args.metrics_port is not None:
        from ..telemetry import MetricsServer

        server = MetricsServer(port=args.metrics_port).start()
        if not args.quiet:
            print(
                f"broker metrics on "
                f"http://{server.host}:{server.port}/metrics"
            )
    try:
        results = run_specs(
            specs,
            n_jobs=args.n_jobs,
            store=store,
            force=args.force,
            progress=None if args.quiet else print,
            # The resolved instance already carries --workers; passing it
            # through run_specs' workers= too would double-configure it.
            backend=_resolve_cli_backend(args),
            verbose=args.verbose,
        )
    finally:
        if server is not None:
            server.stop()
    _print_sweep_table(results)
    implicit = counts["implicit_compute"]
    print(
        f"\n{len(results)} results ({counts['compute']} computed, "
        f"{len(results) - counts['compute']} reused"
        + (f", +{implicit} trace input{'s' if implicit != 1 else ''}"
           if implicit else "")
        + f") — store: {store.root}"
    )
    return 0


def _print_plan(plan: Plan) -> None:
    counts = plan.counts()
    stored = [node for node in plan.nodes.values() if node.stored]
    print(
        f"plan: {counts['submitted']} submitted, {counts['stored']} stored, "
        f"{counts['compute']} to compute"
        + (
            f" (+{counts['implicit_compute']} trace "
            f"input{'s' if counts['implicit_compute'] != 1 else ''})"
            if counts["implicit_compute"]
            else ""
        )
    )
    if stored:
        print(f"\nresolved by the store ({len(stored)}):")
        for node in stored:
            origin = "" if node.submitted else "  [input]"
            print(f"  hit  {node.spec.label():<44} {node.key[:12]}{origin}")
    for depth, layer in enumerate(plan.layers):
        print(f"\nlayer {depth} ({len(layer)} jobs):")
        for key in layer:
            node = plan.node(key)
            origin = "" if node.submitted else "  [input]"
            print(f"  run  {node.spec.label():<44} {node.key[:12]}{origin}")
    if not plan.layers:
        print("\nnothing to compute: the store resolves every spec.")


def _cmd_plan(args) -> int:
    store = _store_from(args)
    plan = build_plan(_sweep_specs(args), store)
    _print_plan(plan)
    backend = _resolve_cli_backend(args)
    if backend is not None:
        print("\nplacement:")
        for line in backend.placement(plan, store):
            print(f"  {line}")
    print(f"\nstore: {store.root}")
    return 0


def _cmd_graph(args) -> int:
    store = _store_from(args)
    plan = build_plan(_sweep_specs(args), store)
    if args.dot:
        print("digraph specs {")
        print("  rankdir=LR;")
        for node in plan.nodes.values():
            state = "stored" if node.stored else "compute"
            shape = "box" if node.submitted else "ellipse"
            print(
                f'  "{node.key[:12]}" [label="{node.spec.label()}\\n{state}"'
                f", shape={shape}];"
            )
        for consumer, produced in plan.edges():
            print(f'  "{produced[:12]}" -> "{consumer[:12]}";')
        print("}")
        return 0
    for node in plan.nodes.values():
        state = "stored" if node.stored else "compute"
        if node.inputs:
            for input_key in node.inputs:
                input_node = plan.nodes[input_key]
                print(
                    f"{node.spec.label()} [{state}] <- "
                    f"{input_node.spec.label()} "
                    f"[{'stored' if input_node.stored else 'compute'}]"
                )
        else:
            print(f"{node.spec.label()} [{state}]")
    return 0


def _cmd_report(args) -> int:
    from ..experiments.figures import FIGURE_APPS, figure1, figure_app
    from ..experiments.report import render_figure1, render_figure_app

    store = _store_from(args)
    if args.timings:
        from ..telemetry import aggregate_timings, render_timings

        doc = aggregate_timings(store.root)
        if not doc["runs"]:
            print(
                f"no run profiles under {store.root}/telemetry — execute "
                "runs with --telemetry json|chrome (or REPRO_TELEMETRY) "
                "first",
                file=sys.stderr,
            )
            return 1
        print(render_timings(doc))
        return 0
    wanted = [int(f) for f in _split(args.figures)]
    for fig in wanted:
        if fig not in (1,) + tuple(FIGURE_APPS):
            raise SystemExit(f"unknown figure {fig}; choose from 1,4,5,6,7")
    warehouse = None
    if args.from_warehouse:
        # Read-only: figures come out of the columnar dataset,
        # byte-identical to the store-scan path — nothing is computed,
        # so there is no warm-up batch either.
        from ..warehouse import Warehouse, default_warehouse_root

        warehouse = Warehouse(
            args.warehouse_dir or default_warehouse_root(store)
        )
    else:
        # Warm the store for every figure in one sharded batch, then
        # render.
        specs: list[RunSpec] = []
        if 1 in wanted:
            specs.append(sim_spec("bl2d", args.scale, nprocs=args.nprocs))
        for number, app in sorted(FIGURE_APPS.items()):
            if number in wanted:
                specs.append(sim_spec(app, args.scale, nprocs=args.nprocs))
                specs.append(
                    penalties_spec(app, args.scale, nprocs=args.nprocs)
                )
        run_specs(specs, n_jobs=args.n_jobs, store=store,
                  progress=None if args.quiet else print)
    first = True
    try:
        for number in sorted(wanted):
            if not first:
                print("\n" + "=" * 78 + "\n")
            first = False
            if number == 1:
                print(render_figure1(
                    figure1(scale=args.scale, nprocs=args.nprocs,
                            store=store, warehouse=warehouse)
                ))
            else:
                fig = figure_app(
                    FIGURE_APPS[number], scale=args.scale,
                    nprocs=args.nprocs, store=store, warehouse=warehouse,
                )
                print(render_figure_app(fig, figure_number=number))
    except KeyError as exc:
        # A figure's run was never ingested: the warehouse never
        # computes, it only reads back what a build flattened.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_describe(args) -> int:
    # The built-in scales register when the workload layer imports; pull
    # it in so `describe` sees them (and any entry-point plugins) even
    # though this command never builds a spec.
    from ..experiments import workloads  # noqa: F401
    from ..registry import component_kinds

    kinds = [args.kind] if args.kind else list(component_kinds())
    if args.kind and args.kind not in component_kinds():
        raise SystemExit(
            f"unknown component kind {args.kind!r}; choose from "
            f"{component_kinds()}"
        )
    doc = {kind: describe_components(kind) for kind in kinds}
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True, default=repr))
        return 0
    for kind in kinds:
        entries = doc[kind]
        print(f"{kind} ({len(entries)} registered)")
        for name, entry in entries.items():
            print(f"  {name:<24} {entry['description']}")
            for param in entry["params"] or ():
                if param["required"]:
                    detail = "required"
                else:
                    detail = f"default={param['default']!r}"
                kind_note = f": {param['type']}" if param.get("type") else ""
                print(f"      --param {param['name']}{kind_note}  ({detail})")
        print()
    return 0


def _cmd_worker(args) -> int:
    import signal

    from ..telemetry import MetricsServer, flight_dump, session
    from .backends import JobQueue, Worker

    # --quiet survives as shorthand for --log-level warning (per-job
    # lines are INFO); an explicit --log-level wins.
    level = args.log_level or ("warning" if args.quiet else "info")
    _setup_logging(level)
    worker_logger = logging.getLogger("repro.worker")
    store = _store_from(args)
    queue = (
        JobQueue(args.queue_dir)
        if args.queue_dir
        else JobQueue.for_store(store)
    )
    worker = Worker(
        store,
        queue,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        heartbeat_interval=args.heartbeat_interval,
        idle_timeout=args.idle_timeout,
        max_jobs=args.max_jobs,
        die_after_claims=args.die_after_claims,
        log=worker_logger.info,
    )

    def _worker_health() -> dict:
        return {
            "status": "ok",
            "worker_id": worker.worker_id,
            "jobs_done": worker.jobs_done,
            "jobs_failed": worker.jobs_failed,
            "current_job": worker.current_job,
        }

    server = None
    if args.metrics_port is not None:
        server = MetricsServer(
            port=args.metrics_port, host=args.metrics_host,
            health=_worker_health,
        ).start()
        worker_logger.info(
            "worker %s metrics on http://%s:%d/metrics",
            worker.worker_id, server.host, server.port,
        )

    # SIGTERM (the broker reaping auto-spawned daemons, systemd, ...)
    # requests a graceful exit after the current job.  A TERM that lands
    # *mid-job* is a kill worth a postmortem — dump the flight recorder;
    # an idle TERM is just the broker tidying up, no black box needed.
    def _on_sigterm(signum, frame):
        if worker.current_job is not None:
            flight_dump(
                store.root, "sigterm-mid-job",
                extra={"worker_id": worker.worker_id,
                       "job": worker.current_job},
            )
        worker.stop()

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        with session(store.root, name=f"worker-{worker.worker_id}",
                     meta={"worker_id": worker.worker_id}):
            done = worker.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        done = worker.jobs_done
    finally:
        if server is not None:
            server.stop()
    worker_logger.info(
        "worker %s exiting: %d completed, %d failed",
        worker.worker_id, done, worker.jobs_failed,
    )
    return 0


def _cmd_profile(args) -> int:
    from ..telemetry import load_run_profile, render_profile

    store = _store_from(args)
    try:
        doc = load_run_profile(store.root, args.key)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    print(render_profile(doc))
    return 0


def _cmd_top(args) -> int:
    from ..telemetry import cluster_status_doc, render_cluster_status
    from .backends import JobQueue

    store = _store_from(args)
    queue = (
        JobQueue(args.queue_dir)
        if args.queue_dir
        else JobQueue.for_store(store)
    )
    if args.json:
        if args.watch:
            raise SystemExit("--json takes one snapshot; drop --watch")
        print(json.dumps(
            cluster_status_doc(
                store, queue, lease_timeout=args.lease_timeout
            ),
            indent=1, sort_keys=True,
        ))
        return 0
    if not args.watch:
        print(render_cluster_status(
            store, queue, lease_timeout=args.lease_timeout
        ))
        return 0
    try:
        while True:  # pragma: no branch - exits via KeyboardInterrupt
            snapshot = render_cluster_status(
                store, queue, lease_timeout=args.lease_timeout
            )
            # Clear screen + home, like top(1); plain rewrite keeps it
            # usable under watch(1) or a dumb terminal too.
            print(f"\x1b[2J\x1b[H{snapshot}", flush=True)
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


def _cmd_health(args) -> int:
    from ..telemetry import evaluate_health
    from .backends import JobQueue

    store = _store_from(args)
    queue = (
        JobQueue(args.queue_dir)
        if args.queue_dir
        else JobQueue.for_store(store)
    )
    doc = evaluate_health(
        store, queue,
        lease_timeout=args.lease_timeout,
        max_failures=args.max_failures,
    )
    healthy = doc["status"] == "ok"
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0 if healthy else 1
    print(f"cluster health: {doc['status']}  (store {doc['store']})")
    for check in doc["checks"]:
        mark = "ok " if check["ok"] else "FAIL"
        print(f"  [{mark}] {check['name']:<16} {check['detail']}")
    return 0 if healthy else 1


def _cmd_blackbox(args) -> int:
    from ..telemetry import find_crash_dumps, load_crash_dump, render_blackbox

    store = _store_from(args)
    dumps = find_crash_dumps(store.root)
    if args.clear:
        for path in dumps:
            path.unlink(missing_ok=True)
        print(f"cleared {len(dumps)} crash dumps from {store.root}")
        return 0
    if not dumps:
        print(
            f"no crash dumps under {store.root}/telemetry/crash — "
            "nothing has died unexpectedly",
            file=sys.stderr,
        )
        return 1
    if args.list:
        for path in dumps:
            doc = load_crash_dump(path)
            print(
                f"{path.name}  reason={doc.get('reason', '?')}  "
                f"host={doc.get('host', '?')}  pid={doc.get('pid', '?')}  "
                f"events={len(doc.get('events') or [])}"
            )
        return 0
    if args.dump:
        matches = [p for p in dumps if p.name.startswith(args.dump)]
        if not matches:
            print(f"no crash dump matching {args.dump!r}", file=sys.stderr)
            return 1
        selected = matches
    else:
        selected = [dumps[-1]]  # newest
    first = True
    for path in selected:
        doc = load_crash_dump(path)
        if args.json:
            print(json.dumps(doc, indent=1, sort_keys=True))
            continue
        if not first:
            print("\n" + "=" * 72 + "\n")
        first = False
        print(f"[{path.name}]")
        print(render_blackbox(doc))
    return 0


def _cmd_cache(args) -> int:
    store = _store_from(args)
    if args.cache_cmd == "clear":
        removed = store.clear(kind=args.kind)
        print(f"removed {removed} entries from {store.root}")
        return 0
    if args.cache_cmd == "verify":
        problems = store.verify(remove=args.remove)
        if not problems:
            print(f"store {store.root} is sound (no corrupt entries)")
            return 0
        for doc in problems:
            key = doc["key"][:12] if doc["key"] else "(staging)"
            state = "removed" if doc["removed"] else "found"
            print(f"{state}  {key:<14} {doc['problem']}")
        kept = sum(1 for doc in problems if not doc["removed"])
        print(
            f"{len(problems)} problem{'s' if len(problems) != 1 else ''} "
            f"in {store.root}"
            + ("" if args.remove else " (re-run with --remove to clean up)")
        )
        return 1 if kept else 0
    if args.cache_cmd == "gc":
        if args.max_bytes is None and args.older_than is None:
            raise SystemExit("cache gc needs --max-bytes and/or --older-than")
        removed, freed = store.gc(
            max_bytes=args.max_bytes, older_than_seconds=args.older_than
        )
        kept = list(store.entries())
        remaining = sum(doc["nbytes"] for doc in kept)
        print(
            f"evicted {removed} entries ({freed / 1e6:.1f} MB reclaimed) "
            f"from {store.root}"
        )
        print(
            f"store now holds {len(kept)} entries, {remaining / 1e6:.1f} MB"
        )
        return 0
    if args.json:
        # Machine-readable listing (scripting surface; streamed via
        # iter_results so corrupt entries are warn-skipped, not fatal).
        now = time.time()
        docs = []
        for key, doc in store.iter_results(kind=args.kind):
            spec = RunSpec.from_json(doc["spec"])
            docs.append({
                "key": key,
                "kind": doc["kind"],
                "app": spec.app,
                "scale": spec.scale,
                "nprocs": spec.nprocs,
                "label": spec.label(),
                "bytes": doc["nbytes"],
                "age_seconds": round(max(0.0, now - doc["mtime"]), 3),
            })
        print(json.dumps(docs, indent=1, sort_keys=True))
        return 0
    entries = list(store.entries())
    total = sum(doc["nbytes"] for doc in entries)
    print(f"store: {store.root} ({len(entries)} entries, {total / 1e6:.1f} MB)")
    if entries:
        now = time.time()
        print(f"{'key':<14} {'kind':<10} {'job':<40} {'kB':>8} {'age':>8}")
        for doc in entries:
            spec = RunSpec.from_json(doc["spec"])
            age = max(0.0, now - doc["mtime"])
            if age >= 86400:
                age_str = f"{age / 86400:.1f}d"
            elif age >= 3600:
                age_str = f"{age / 3600:.1f}h"
            else:
                age_str = f"{age / 60:.1f}m"
            print(
                f"{doc['key'][:12]:<14} {doc['kind']:<10} "
                f"{spec.label():<40} {doc['nbytes'] / 1024:>8.1f} "
                f"{age_str:>8}"
            )
    return 0


def _warehouse_from(args, store: ResultStore):
    from ..warehouse import Warehouse, default_warehouse_root

    root = args.warehouse_dir or default_warehouse_root(store)
    return Warehouse(root, format=getattr(args, "format", None))


def _build_summary(report, root) -> str:
    extras = []
    if report.adopted:
        extras.append(f"{report.adopted} adopted from a crashed build")
    if report.skipped_corrupt:
        extras.append(f"{report.skipped_corrupt} corrupt skipped")
    return (
        f"ingested {report.runs} runs ({report.rows} rows, "
        f"{report.shards} shard{'s' if report.shards != 1 else ''}) "
        f"into {root}" + (f"  [{'; '.join(extras)}]" if extras else "")
    )


def _cmd_warehouse_build(args) -> int:
    from ..warehouse import render_build_plan

    store = _store_from(args)
    wh = _warehouse_from(args, store)
    kinds = tuple(_split(args.kinds))
    if args.preview:
        # Pre-execution analysis only: nothing is written, not even the
        # manifest of a brand-new warehouse.
        plan = wh.plan(store, kinds=kinds)
        print(render_build_plan(plan, format_name=wh.format.name))
        return 0
    say = None if args.quiet else print
    report = wh.build(
        store, kinds=kinds,
        max_rows_per_shard=args.max_rows_per_shard, progress=say,
    )
    print(_build_summary(report, wh.root))
    if not args.follow:
        return 0
    # Keep appending results a live sweep publishes; exit after
    # --idle-timeout seconds without new work (or on Ctrl-C).
    idle = 0.0
    while args.idle_timeout is None or idle < args.idle_timeout:
        time.sleep(args.poll)
        report = wh.build(
            store, kinds=kinds,
            max_rows_per_shard=args.max_rows_per_shard, progress=say,
        )
        if report.runs:
            idle = 0.0
            print(_build_summary(report, wh.root))
        else:
            idle += args.poll
    print(f"idle for {idle:g}s, stopping --follow")
    return 0


def _cmd_warehouse_status(args) -> int:
    store = _store_from(args)
    wh = _warehouse_from(args, store)
    doc = wh.status(store=store)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    print(
        f"warehouse: {doc['root']} "
        f"(schema {doc['schema']}, {doc['format']} shards)"
    )
    print(
        f"  {doc['runs']} runs, {doc['rows']} steps rows, "
        f"{doc['bytes'] / 1e6:.1f} MB on disk"
    )
    if doc["partitions"]:
        width = max(len(p) for p in doc["partitions"])
        print(f"  {'partition':<{width}} {'runs':>6} {'rows':>8}")
        for partition, slot in doc["partitions"].items():
            print(
                f"  {partition:<{width}} {slot['runs']:>6} "
                f"{slot['rows']:>8}"
            )
    pending = doc.get("pending", 0)
    if pending:
        print(
            f"  {pending} store result{'s' if pending != 1 else ''} "
            f"({doc['pending_rows']} rows) not yet ingested — "
            f"run `repro warehouse build`"
        )
    else:
        print(f"  current with the store at {store.root}")
    return 0


def _parse_where(pairs: list[str]) -> dict:
    """``--where col=v1[,v2...]`` -> the query layer's filter mapping."""
    filters: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--where expects column=value, got {pair!r}")
        name, raw = pair.split("=", 1)
        values = []
        for piece in _split(raw) or [raw]:
            try:
                values.append(json.loads(piece))
            except json.JSONDecodeError:
                values.append(piece)
        filters[name] = values[0] if len(values) == 1 else tuple(values)
    return filters


def _cmd_warehouse_query(args) -> int:
    import numpy as np

    from ..warehouse import group_stats, scan

    store = _store_from(args)
    wh = _warehouse_from(args, store)
    filters = _parse_where(args.where)
    if bool(args.group_by) != bool(args.stats):
        raise SystemExit("--group-by and --stats go together")
    if args.group_by:
        by = _split(args.group_by)
        values = _split(args.stats)
        stats = group_stats(
            wh, table=args.table, by=by, values=values, filters=filters
        )
        if args.json:
            doc = [
                {"group": dict(zip(by, group)), "stats": per_value}
                for group, per_value in stats.items()
            ]
            print(json.dumps(doc, indent=1, sort_keys=True))
            return 0
        from ..experiments.report import render_group_stats

        print(render_group_stats(stats, by, values))
        return 0
    columns = _split(args.columns) if args.columns else None
    rows: list[dict] = []
    chunks = scan(wh, table=args.table, columns=columns, filters=filters)
    for chunk in chunks:
        names = list(chunk)
        n = len(chunk[names[0]])
        for i in range(n):
            rows.append({
                name: chunk[name][i].item()
                if isinstance(chunk[name][i], np.generic)
                else chunk[name][i]
                for name in names
            })
            if len(rows) >= args.limit:
                break
        if len(rows) >= args.limit:
            chunks.close()
            break
    if args.json:
        print(json.dumps(rows, indent=1, sort_keys=True, default=str))
        return 0
    if not rows:
        print("no rows matched")
        return 0
    names = list(rows[0])

    def cell(value) -> str:
        return f"{value:.6g}" if isinstance(value, float) else str(value)

    widths = {
        name: max(len(name), max(len(cell(row[name])) for row in rows))
        for name in names
    }
    print(" ".join(f"{name:<{widths[name]}}" for name in names))
    for row in rows:
        print(
            " ".join(f"{cell(row[name]):<{widths[name]}}" for name in names)
        )
    if len(rows) == args.limit:
        print(f"... (first {args.limit} rows; raise --limit for more)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiment engine: dependency-aware sweeps over a "
        "content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, nprocs=True):
        p.add_argument("--scale", default="paper",
                       help="workload scale (default: paper)")
        p.add_argument(
            "--cache-dir", default=None,
            help="store location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        telemetry_opt(p)
        if nprocs:
            p.add_argument("--nprocs", type=int, default=16,
                           help="simulated processor count")

    def telemetry_opt(p):
        p.add_argument(
            "--telemetry", default=None, choices=list(TELEMETRY_MODES),
            help="span tracing for this invocation (sets $REPRO_TELEMETRY; "
            "json = event log, chrome = event log + Chrome trace; "
            "default: off)",
        )

    def grid(p):
        p.add_argument("--apps", default="2d",
                       help="comma list, or 2d / 3d / all (default: 2d)")
        p.add_argument("--partitioners", default="suite",
                       help="comma list, or suite / all (default: suite)")
        p.add_argument("--machines", default="cluster-2003",
                       help="comma list of machine scenarios "
                       "(see `repro describe --kind machine`)")
        p.add_argument("--kind", default="sim",
                       choices=["sim", "penalties", "trace"])

    def backend_opts(p):
        p.add_argument(
            "--backend", default=None,
            help="execution backend: serial, process, cluster, or a "
            "registered plugin (default: serial, or process when "
            "--n-jobs > 1)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="cluster: auto-spawn this many local `repro worker` "
            "daemons for the run (default: use externally started "
            "workers)",
        )
        p.add_argument(
            "--log-level", default=None, choices=_LOG_LEVELS,
            help="broker logging threshold on stderr (timestamped via "
            "the `repro` logger; default: warnings only)",
        )

    run = sub.add_parser("run", help="run (or fetch) one job")
    common(run)
    backend_opts(run)
    run.add_argument("--app", required=True)
    run.add_argument("--kind", default="sim",
                     choices=["sim", "penalties", "trace"])
    run.add_argument("--partitioner", default="nature+fable")
    run.add_argument("--param", action="append", default=[],
                     metavar="NAME=VALUE",
                     help="partitioner constructor override (repeatable)")
    run.add_argument("--machine", default="cluster-2003")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--force", action="store_true",
                     help="recompute even if stored")
    run.add_argument("--json", action="store_true", help="print meta as JSON")
    run.add_argument("--series", action="store_true",
                     help="print per-series statistics")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run an app x partitioner x machine grid, sharded"
    )
    common(sweep)
    grid(sweep)
    backend_opts(sweep)
    sweep.add_argument("--n-jobs", type=int, default=1,
                       help="worker processes (1 = serial, no pool)")
    sweep.add_argument("--force", action="store_true")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")
    sweep.add_argument("--verbose", action="store_true",
                       help="per-layer progress lines "
                       "(jobs queued/leased/done)")
    sweep.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve broker /metrics + /healthz on this "
                       "port for the duration of the sweep (0: ephemeral)")
    sweep.set_defaults(func=_cmd_sweep)

    worker = sub.add_parser(
        "worker",
        help="serve the shared job queue as a long-lived worker daemon",
    )
    worker.add_argument(
        "--cache-dir", default=None,
        help="store location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    worker.add_argument(
        "--queue-dir", default=None,
        help="job queue location (default: <store>/queue)",
    )
    worker.add_argument("--worker-id", default=None,
                        help="identity on leases (default: host-pid-nonce)")
    worker.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between queue scans while idle")
    worker.add_argument("--heartbeat-interval", type=float, default=5.0,
                        help="seconds between lease heartbeats (keep well "
                        "below the broker's lease timeout)")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        help="exit after this many idle seconds "
                        "(default: serve until stopped)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after completing this many jobs")
    worker.add_argument("--die-after-claims", type=int, default=None,
                        help="fault injection for tests: SIGKILL self after "
                        "claiming the N-th job, before executing it")
    worker.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve Prometheus /metrics, /metrics.json and "
                        "/healthz on this port (0: ephemeral)")
    worker.add_argument("--metrics-host", default="127.0.0.1",
                        help="bind address for --metrics-port "
                        "(default: 127.0.0.1; 0.0.0.0 for cluster scrapes)")
    worker.add_argument("--quiet", action="store_true",
                        help="shorthand for --log-level warning")
    worker.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                        help="stderr logging threshold (timestamped via "
                        "the `repro` logger; default: info)")
    telemetry_opt(worker)
    worker.set_defaults(func=_cmd_worker)

    plan = sub.add_parser(
        "plan",
        help="resolve a sweep's dependency plan without running it",
    )
    common(plan)
    grid(plan)
    backend_opts(plan)
    plan.add_argument("--n-jobs", type=int, default=1,
                      help="worker count assumed by the placement report")
    plan.set_defaults(func=_cmd_plan)

    graph = sub.add_parser(
        "graph", help="print a sweep's spec dependency graph"
    )
    common(graph)
    grid(graph)
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz DOT instead of text")
    graph.set_defaults(func=_cmd_graph)

    report = sub.add_parser(
        "report", help="regenerate paper figures through the engine"
    )
    common(report)
    report.add_argument("--figures", default="1,4,5,6,7",
                        help="comma list of figure numbers (default: all)")
    report.add_argument("--n-jobs", type=int, default=1)
    report.add_argument("--quiet", action="store_true")
    report.add_argument("--timings", action="store_true",
                        help="aggregate telemetry span timings across the "
                        "store's run profiles instead of figures")
    report.add_argument("--from-warehouse", action="store_true",
                        help="render from the columnar warehouse instead of "
                        "the store (read-only; byte-identical output)")
    report.add_argument("--warehouse-dir", default=None,
                        help="warehouse location "
                        "(default: <store>/warehouse)")
    report.set_defaults(func=_cmd_report)

    profile = sub.add_parser(
        "profile",
        help="render the timing tree a telemetry-enabled run recorded",
    )
    profile.add_argument("key", help="store key (or unique prefix)")
    profile.add_argument("--cache-dir", default=None)
    profile.add_argument("--json", action="store_true",
                         help="print the raw run-profile document")
    profile.set_defaults(func=_cmd_profile)

    top = sub.add_parser(
        "top", help="live worker/lease/queue status of a cluster sweep"
    )
    top.add_argument("--cache-dir", default=None)
    top.add_argument("--queue-dir", default=None,
                     help="job queue location (default: <store>/queue)")
    top.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                     help="redraw every SECONDS until interrupted "
                     "(default: one snapshot)")
    top.add_argument("--lease-timeout", type=float, default=30.0,
                     help="staleness threshold for workers/leases "
                     "(default: 30s, the broker default)")
    top.add_argument("--json", action="store_true",
                     help="print one machine-readable snapshot "
                     "(incompatible with --watch)")
    top.set_defaults(func=_cmd_top)

    health = sub.add_parser(
        "health",
        help="evaluate cluster health thresholds; exit nonzero when "
        "unhealthy (CI/cron-friendly)",
    )
    health.add_argument("--cache-dir", default=None)
    health.add_argument("--queue-dir", default=None,
                        help="job queue location (default: <store>/queue)")
    health.add_argument("--lease-timeout", type=float, default=30.0,
                        help="heartbeat staleness threshold (default: 30s)")
    health.add_argument("--max-failures", type=int, default=3,
                        help="failure records at/above this count flag a "
                        "retry spike (default: 3)")
    health.add_argument("--json", action="store_true")
    health.set_defaults(func=_cmd_health)

    blackbox = sub.add_parser(
        "blackbox",
        help="render flight-recorder crash dumps a dying worker/broker "
        "left under <store>/telemetry/crash",
    )
    blackbox.add_argument("dump", nargs="?", default=None,
                          help="dump filename (or prefix); default: newest")
    blackbox.add_argument("--cache-dir", default=None)
    blackbox.add_argument("--list", action="store_true",
                          help="one line per dump instead of a rendering")
    blackbox.add_argument("--clear", action="store_true",
                          help="delete all crash dumps (after triage, so "
                          "`repro health` goes green again)")
    blackbox.add_argument("--json", action="store_true",
                          help="print the raw dump document(s)")
    blackbox.set_defaults(func=_cmd_blackbox)

    desc = sub.add_parser(
        "describe", help="introspect the component registries"
    )
    desc.add_argument("--kind", default=None,
                      help="one component kind (default: all declared kinds)")
    desc.add_argument("--json", action="store_true")
    desc.set_defaults(func=_cmd_describe)

    cache = sub.add_parser(
        "cache",
        help="inspect, empty, garbage-collect or verify the result store",
    )
    cache.add_argument("cache_cmd", choices=["ls", "clear", "gc", "verify"])
    cache.add_argument("--kind", default=None,
                       choices=["trace", "sim", "penalties"],
                       help="restrict clear / ls --json to one kind")
    cache.add_argument("--json", action="store_true",
                       help="ls: machine-readable listing (key, app, "
                       "scale, bytes, age)")
    cache.add_argument("--remove", action="store_true",
                       help="verify: delete the corrupt entries found")
    cache.add_argument("--max-bytes", type=_parse_size, default=None,
                       metavar="SIZE",
                       help="gc: evict LRU entries until under SIZE "
                       "(e.g. 500M, 2G)")
    cache.add_argument("--older-than", type=_parse_duration, default=None,
                       metavar="AGE",
                       help="gc: evict entries untouched for AGE "
                       "(e.g. 7d, 12h)")
    cache.add_argument("--cache-dir", default=None)
    cache.set_defaults(func=_cmd_cache)

    warehouse = sub.add_parser(
        "warehouse",
        help="columnar analytics over the store: build, inspect, query",
    )
    wsub = warehouse.add_subparsers(dest="warehouse_cmd", required=True)

    def warehouse_common(p):
        p.add_argument(
            "--cache-dir", default=None,
            help="store location (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)",
        )
        p.add_argument(
            "--warehouse-dir", default=None,
            help="dataset location (default: <store>/warehouse)",
        )
        telemetry_opt(p)

    wbuild = wsub.add_parser(
        "build",
        help="incrementally flatten new store results into the dataset",
    )
    warehouse_common(wbuild)
    wbuild.add_argument(
        "--format", default=None,
        help="shard format: npz (zero-dependency default) or parquet "
        "(needs the pyarrow extra); pinned at first build",
    )
    wbuild.add_argument("--kinds", default="sim,penalties",
                        help="comma list of run kinds to ingest "
                        "(default: sim,penalties)")
    wbuild.add_argument("--max-rows-per-shard", type=int, default=250_000,
                        help="steps rows per shard file (bounds ingest "
                        "memory; default: 250000)")
    wbuild.add_argument("--preview", action="store_true",
                        help="print the partition plan (runs, rows, bytes "
                        "per hive partition) without writing anything")
    wbuild.add_argument("--follow", action="store_true",
                        help="keep polling the store and appending newly "
                        "published results")
    wbuild.add_argument("--poll", type=float, default=2.0,
                        help="follow: seconds between store scans "
                        "(default: 2)")
    wbuild.add_argument("--idle-timeout", type=float, default=None,
                        help="follow: exit after this many seconds with "
                        "nothing new (default: follow until stopped)")
    wbuild.add_argument("--quiet", action="store_true",
                        help="suppress per-chunk progress lines")
    wbuild.set_defaults(func=_cmd_warehouse_build)

    wstatus = wsub.add_parser(
        "status", help="summarize the dataset and what the store adds"
    )
    warehouse_common(wstatus)
    wstatus.add_argument("--json", action="store_true")
    wstatus.set_defaults(func=_cmd_warehouse_status)

    wquery = wsub.add_parser(
        "query", help="project, filter and aggregate the dataset"
    )
    warehouse_common(wquery)
    wquery.add_argument("--table", default="steps",
                        choices=["runs", "steps"])
    wquery.add_argument("--columns", default=None,
                        help="comma list projection (default: every column)")
    wquery.add_argument("--where", action="append", default=[],
                        metavar="COLUMN=VALUE[,VALUE...]",
                        help="equality/membership filter (repeatable; "
                        "app/scale/partitioner prune whole partitions)")
    wquery.add_argument("--group-by", default=None,
                        help="comma list of grouping columns "
                        "(with --stats: out-of-core aggregation)")
    wquery.add_argument("--stats", default=None,
                        help="comma list of value columns to aggregate "
                        "(count/mean/std/min/max per group)")
    wquery.add_argument("--limit", type=int, default=20,
                        help="row cap for plain scans (default: 20)")
    wquery.add_argument("--json", action="store_true")
    wquery.set_defaults(func=_cmd_warehouse_query)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # Exported (not just stashed on args) so process-pool shards and
    # auto-spawned cluster workers inherit the telemetry mode.
    if getattr(args, "telemetry", None):
        os.environ[TELEMETRY_ENV] = args.telemetry
    if getattr(args, "log_level", None):
        _setup_logging(args.log_level)
    try:
        return args.func(args)
    except ClusterJobError as exc:
        # Jobs exhausted their retry cap: the per-job report is the
        # outcome, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # Spec/registry validation (bad seed, schedule params, ...) is a
        # usage error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted (finished shards remain in the store)",
              file=sys.stderr)
        return 130
