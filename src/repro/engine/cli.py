"""The ``python -m repro`` command line: drive the experiment engine.

Subcommands
-----------
``repro run``
    Execute (or fetch) a single job and print its summary or series.
``repro sweep``
    Fan a grid of jobs — apps x partitioners x machines — across worker
    processes.  Already-stored results are skipped, so re-running a
    killed sweep resumes where it left off.
``repro report``
    Regenerate the paper's figures through the engine and render them as
    ASCII charts (``repro.experiments.report``).
``repro cache ls | clear``
    Inspect / empty the content-addressed store.

The store location is ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``);
``--cache-dir`` overrides it per invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .registry import (
    MACHINE_NAMES,
    PARTITIONER_NAMES,
    SCHEDULE_NAMES,
    STATIC_SUITE,
)
from .executor import plan_specs, run_spec, run_specs
from .spec import RunSpec, penalties_spec, sim_spec, trace_spec
from .store import ResultStore, default_store

__all__ = ["main", "build_parser"]


def _store_from(args) -> ResultStore:
    if getattr(args, "cache_dir", None):
        return ResultStore(args.cache_dir)
    return default_store()


def _split(value: str) -> list[str]:
    return [v for v in (part.strip() for part in value.split(",")) if v]


def _resolve_apps(value: str) -> list[str]:
    from ..experiments.workloads import ALL_APP_NAMES, APP_NAMES, APP_NAMES_3D

    aliases = {
        "2d": list(APP_NAMES),
        "3d": list(APP_NAMES_3D),
        "all": list(ALL_APP_NAMES),
    }
    if value in aliases:
        return aliases[value]
    apps = _split(value)
    for app in apps:
        if app not in ALL_APP_NAMES:
            raise SystemExit(
                f"unknown app {app!r}; choose from {ALL_APP_NAMES} "
                f"or the aliases 2d/3d/all"
            )
    return apps


def _resolve_partitioners(value: str) -> list[str]:
    aliases = {
        "suite": list(STATIC_SUITE),
        "all": list(STATIC_SUITE) + list(SCHEDULE_NAMES),
    }
    if value in aliases:
        return aliases[value]
    names = _split(value)
    known = set(PARTITIONER_NAMES) | set(SCHEDULE_NAMES)
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown partitioner {name!r}; choose from "
                f"{PARTITIONER_NAMES + SCHEDULE_NAMES} or suite/all"
            )
    return names


def _parse_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects name=value, got {pair!r}")
        name, raw = pair.split("=", 1)
        try:
            params[name] = json.loads(raw)
        except json.JSONDecodeError:
            params[name] = raw
    return params


def _sweep_specs(args) -> list[RunSpec]:
    specs: list[RunSpec] = []
    for app in _resolve_apps(args.apps):
        for machine in _split(args.machines):
            if machine not in MACHINE_NAMES:
                raise SystemExit(
                    f"unknown machine {machine!r}; choose from {MACHINE_NAMES}"
                )
            for name in _resolve_partitioners(args.partitioners):
                if args.kind == "sim":
                    specs.append(
                        sim_spec(
                            app,
                            args.scale,
                            nprocs=args.nprocs,
                            partitioner=name,
                            machine=machine,
                        )
                    )
                elif args.kind == "penalties":
                    spec = penalties_spec(
                        app, args.scale, nprocs=args.nprocs, machine=machine
                    )
                    if spec not in specs:
                        specs.append(spec)
                else:  # trace
                    spec = trace_spec(app, args.scale)
                    if spec not in specs:
                        specs.append(spec)
    return specs


def _print_sweep_table(results) -> None:
    header = (
        f"{'app':<6} {'partitioner':<22} {'machine':<13} {'P':>4} "
        f"{'steps':>6} {'total_s':>10} {'imb%':>8} {'comm':>7} {'mig':>7}"
    )
    print(header)
    print("-" * len(header))
    for res in results:
        spec = res.spec
        machine = spec.machine if isinstance(spec.machine, str) else "custom"
        if spec.kind == "sim":
            summary = res.meta["summary"]
            imb = 100.0 * (summary["mean_imbalance"] - 1.0)
            print(
                f"{spec.app:<6} {spec.partitioner:<22} {machine:<13} "
                f"{spec.nprocs:>4} {res.arrays['step'].size:>6} "
                f"{res.meta['total_execution_seconds']:>10.3f} "
                f"{imb:>8.2f} {summary['mean_relative_comm']:>7.3f} "
                f"{summary['mean_relative_migration']:>7.3f}"
            )
        elif spec.kind == "penalties":
            beta_c = res.arrays["beta_c"]
            beta_m = res.arrays["beta_m"]
            print(
                f"{spec.app:<6} {'(penalties)':<22} {machine:<13} "
                f"{spec.nprocs:>4} {beta_c.size:>6} {'-':>10} {'-':>8} "
                f"{beta_c.mean():>7.3f} {beta_m.mean():>7.3f}"
            )
        else:
            stats = res.meta["stats"]
            print(
                f"{spec.app:<6} {'(trace)':<22} {'-':<13} {'-':>4} "
                f"{stats['nsteps']:>6} {'-':>10} {'-':>8} {'-':>7} {'-':>7}"
            )


def _cmd_run(args) -> int:
    store = _store_from(args)
    if args.kind == "sim":
        spec = sim_spec(
            args.app,
            args.scale,
            nprocs=args.nprocs,
            partitioner=args.partitioner,
            params=_parse_params(args.param),
            machine=args.machine,
            seed=args.seed,
        )
    elif args.kind == "penalties":
        spec = penalties_spec(
            args.app, args.scale, nprocs=args.nprocs, machine=args.machine,
            seed=args.seed,
        )
    else:
        spec = trace_spec(args.app, args.scale, seed=args.seed)
    cached = store.has(spec.key())
    result = run_spec(spec, store=store, force=args.force)
    if args.json:
        print(json.dumps({"key": result.key, "meta": result.meta}, indent=1,
                         sort_keys=True))
        return 0
    print(f"{spec.label()}  [{'stored' if cached and not args.force else 'computed'}]")
    print(f"key:   {result.key}")
    print(f"store: {store.root}")
    for name, value in sorted(result.meta.items()):
        if not isinstance(value, dict):
            print(f"  {name}: {value}")
    if args.series:
        from ..experiments.analysis import series_stats

        for name in sorted(result.arrays):
            stats = series_stats(result.arrays[name])
            print(
                f"  {name:<22} mean={stats['mean']:<12.6g} "
                f"min={stats['min']:<12.6g} max={stats['max']:<12.6g}"
            )
    return 0


def _cmd_sweep(args) -> int:
    store = _store_from(args)
    specs = _sweep_specs(args)
    unique, missing = plan_specs(specs, store)
    computed = len(unique) if args.force else len(missing)
    results = run_specs(
        specs,
        n_jobs=args.n_jobs,
        store=store,
        force=args.force,
        progress=None if args.quiet else print,
    )
    _print_sweep_table(results)
    print(
        f"\n{len(results)} results ({computed} computed, "
        f"{len(results) - computed} reused) — store: {store.root}"
    )
    return 0


def _cmd_report(args) -> int:
    from ..experiments.figures import FIGURE_APPS, figure1, figure_app
    from ..experiments.report import render_figure1, render_figure_app

    store = _store_from(args)
    wanted = [int(f) for f in _split(args.figures)]
    for fig in wanted:
        if fig not in (1,) + tuple(FIGURE_APPS):
            raise SystemExit(f"unknown figure {fig}; choose from 1,4,5,6,7")
    # Warm the store for every figure in one sharded batch, then render.
    specs: list[RunSpec] = []
    if 1 in wanted:
        specs.append(sim_spec("bl2d", args.scale, nprocs=args.nprocs))
    for number, app in sorted(FIGURE_APPS.items()):
        if number in wanted:
            specs.append(sim_spec(app, args.scale, nprocs=args.nprocs))
            specs.append(penalties_spec(app, args.scale, nprocs=args.nprocs))
    run_specs(specs, n_jobs=args.n_jobs, store=store,
              progress=None if args.quiet else print)
    first = True
    for number in sorted(wanted):
        if not first:
            print("\n" + "=" * 78 + "\n")
        first = False
        if number == 1:
            print(render_figure1(
                figure1(scale=args.scale, nprocs=args.nprocs, store=store)
            ))
        else:
            fig = figure_app(
                FIGURE_APPS[number], scale=args.scale, nprocs=args.nprocs,
                store=store,
            )
            print(render_figure_app(fig, figure_number=number))
    return 0


def _cmd_cache(args) -> int:
    store = _store_from(args)
    if args.cache_cmd == "clear":
        removed = store.clear(kind=args.kind)
        print(f"removed {removed} entries from {store.root}")
        return 0
    entries = list(store.entries())
    total = sum(doc["nbytes"] for doc in entries)
    print(f"store: {store.root} ({len(entries)} entries, {total / 1e6:.1f} MB)")
    if entries:
        print(f"{'key':<14} {'kind':<10} {'job':<40} {'kB':>8}")
        for doc in entries:
            spec = RunSpec.from_json(doc["spec"])
            print(
                f"{doc['key'][:12]:<14} {doc['kind']:<10} "
                f"{spec.label():<40} {doc['nbytes'] / 1024:>8.1f}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiment engine: sharded sweeps over a "
        "content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, nprocs=True):
        p.add_argument("--scale", default="paper", choices=["paper", "small"])
        p.add_argument(
            "--cache-dir", default=None,
            help="store location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        if nprocs:
            p.add_argument("--nprocs", type=int, default=16,
                           help="simulated processor count")

    run = sub.add_parser("run", help="run (or fetch) one job")
    common(run)
    run.add_argument("--app", required=True)
    run.add_argument("--kind", default="sim",
                     choices=["sim", "penalties", "trace"])
    run.add_argument("--partitioner", default="nature+fable")
    run.add_argument("--param", action="append", default=[],
                     metavar="NAME=VALUE",
                     help="partitioner constructor override (repeatable)")
    run.add_argument("--machine", default="cluster-2003")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--force", action="store_true",
                     help="recompute even if stored")
    run.add_argument("--json", action="store_true", help="print meta as JSON")
    run.add_argument("--series", action="store_true",
                     help="print per-series statistics")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run an app x partitioner x machine grid, sharded"
    )
    common(sweep)
    sweep.add_argument("--apps", default="2d",
                       help="comma list, or 2d / 3d / all (default: 2d)")
    sweep.add_argument("--partitioners", default="suite",
                       help="comma list, or suite / all (default: suite)")
    sweep.add_argument("--machines", default="cluster-2003",
                       help=f"comma list from {MACHINE_NAMES}")
    sweep.add_argument("--kind", default="sim",
                       choices=["sim", "penalties", "trace"])
    sweep.add_argument("--n-jobs", type=int, default=1,
                       help="worker processes (1 = serial, no pool)")
    sweep.add_argument("--force", action="store_true")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser(
        "report", help="regenerate paper figures through the engine"
    )
    common(report)
    report.add_argument("--figures", default="1,4,5,6,7",
                        help="comma list of figure numbers (default: all)")
    report.add_argument("--n-jobs", type=int, default=1)
    report.add_argument("--quiet", action="store_true")
    report.set_defaults(func=_cmd_report)

    cache = sub.add_parser("cache", help="inspect or empty the result store")
    cache.add_argument("cache_cmd", choices=["ls", "clear"])
    cache.add_argument("--kind", default=None,
                       choices=["trace", "sim", "penalties"],
                       help="restrict clear to one kind")
    cache.add_argument("--cache-dir", default=None)
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Spec/registry validation (bad seed, schedule params, ...) is a
        # usage error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted (finished shards remain in the store)",
              file=sys.stderr)
        return 130
