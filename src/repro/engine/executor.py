"""DAG execution of :class:`RunSpec` jobs over the result store.

:func:`run_specs` is the engine's workhorse: it resolves the submitted
specs into a dependency-aware :class:`~repro.engine.graph.Plan`
(deduplicated, implicit trace inputs expanded, everything the store
already holds pruned — which is what makes a killed sweep *resumable*
and lets a sim sweep over a warm store execute zero trace jobs), then
hands the plan to an **execution backend**
(:mod:`repro.engine.backends`) that walks its topological layers:
traces first, dependents fanned out in parallel once their inputs are
published.

``backend="serial"`` runs everything in-process, ``"process"`` shards
each layer trace-aware across a local pool (specs sharing ``(app,
scale, seed)`` stay together so each worker loads every trace at most
once), and ``"cluster"`` brokers the layers through a shared-filesystem
job queue drained by ``repro worker`` daemons.  Whoever computes,
results travel only through the content-addressed store — the parent
loads every artifact back from disk, so all backends return
bit-identical results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..simulator import TraceSimulator
from ..telemetry import (
    metric_inc,
    metric_observe,
    run_scope,
    session,
    span,
    write_metrics_files,
)
from .graph import build_plan
from .components import create, is_schedule, resolve_machine
from .spec import RunResult, RunSpec
from .store import ResultStore, default_store

__all__ = ["execute", "run_spec", "run_specs", "plan_specs", "shard_specs"]

#: StepMetrics columns stored as integer series.
_INT_COLUMNS = (
    "step",
    "ncells",
    "workload",
    "comm_cells",
    "interlevel_cells",
    "migration_cells",
)
#: StepMetrics columns stored as float series.
_FLOAT_COLUMNS = (
    "time",
    "load_imbalance",
    "relative_comm",
    "relative_migration",
    "partition_seconds",
    "compute_seconds",
    "comm_seconds",
    "migration_seconds",
    "total_seconds",
)


def _trace_for(spec: RunSpec, store: ResultStore):
    # Lazy: repro.experiments imports the engine at module scope; the
    # engine may only reach back at call time.
    from ..experiments.workloads import paper_trace

    return paper_trace(spec.app, spec.scale, seed=spec.seed, store=store)


def trace_meta(trace) -> dict:
    """The summary document stored alongside a trace artifact."""
    return {"trace": trace.name, "stats": trace.stats().to_json()}


def _execute_sim(spec: RunSpec, store: ResultStore) -> RunResult:
    trace = _trace_for(spec, store)
    machine = resolve_machine(spec.machine)
    sim = TraceSimulator(machine=machine, ghost_width=spec.ghost_width)
    if is_schedule(spec.partitioner):
        schedule = create(
            "schedule", spec.partitioner, machine=machine, nprocs=spec.nprocs
        )
        result = sim.run_scheduled(trace, schedule, spec.nprocs)
    else:
        partitioner = create("partitioner", spec.partitioner, **dict(spec.params))
        result = sim.run(trace, partitioner, spec.nprocs)
    arrays = {
        name: np.array(
            [getattr(s, name) for s in result.steps], dtype=np.int64
        )
        for name in _INT_COLUMNS
    }
    arrays.update(
        {name: result.series(name) for name in _FLOAT_COLUMNS}
    )
    meta = {
        "trace": result.trace_name,
        "partitioner": result.partitioner,
        "nprocs": result.nprocs,
        "total_execution_seconds": result.total_execution_seconds,
        "summary": result.summary(),
    }
    return RunResult(spec=spec, key=spec.key(), meta=meta, arrays=arrays)


def _execute_penalties(spec: RunSpec, store: ResultStore) -> RunResult:
    from ..model import StateSampler

    trace = _trace_for(spec, store)
    sampler = StateSampler(
        machine=resolve_machine(spec.machine),
        ghost_width=spec.ghost_width,
        migration_denominator=spec.migration_denominator,
        nprocs=spec.nprocs,
    )
    samples = sampler.sample_trace(trace)
    arrays = {
        "step": np.array([s.step for s in samples], dtype=np.int64),
        "beta_l": np.array([s.beta_l for s in samples]),
        "beta_c": np.array([s.beta_c for s in samples]),
        "beta_m": np.array([s.beta_m for s in samples]),
        "dim1": np.array([s.point.dim1 for s in samples]),
        "dim2": np.array([s.point.dim2 for s in samples]),
        "dim3": np.array([s.point.dim3 for s in samples]),
        "requested_fraction": np.array(
            [s.tradeoff2.requested_fraction for s in samples]
        ),
        "requested_seconds": np.array(
            [s.tradeoff2.requested_seconds for s in samples]
        ),
        "offered_seconds": np.array(
            [s.tradeoff2.offered_seconds for s in samples]
        ),
        "normalized_grid_size": np.array(
            [s.tradeoff2.normalized_grid_size for s in samples]
        ),
    }
    meta = {
        "trace": trace.name,
        "nprocs": spec.nprocs,
        "migration_denominator": spec.migration_denominator,
        "nsamples": len(samples),
    }
    return RunResult(spec=spec, key=spec.key(), meta=meta, arrays=arrays)


def execute(spec: RunSpec, store: ResultStore | None = None) -> RunResult:
    """Compute one spec from scratch (no result-store lookup).

    The workload trace itself still goes through the trace cache, so
    repeated executions only pay for the simulator/model work.

    Every execution runs inside a telemetry
    :func:`~repro.telemetry.run_scope`: with telemetry enabled this
    opens the per-run ``run`` span, scopes the pair-kernel counters to
    the run, and publishes a run profile for ``repro profile <key>``
    under ``<store>/telemetry/`` — no matter which backend (or host)
    performed the execution.  With telemetry off the scope is a no-op.
    """
    store = store or default_store()
    import time as _time

    started = _time.perf_counter()
    try:
        with run_scope(spec, store):
            result = _execute_kind(spec, store)
    except BaseException:
        metric_inc("repro_runs_total", kind=spec.kind, outcome="failed")
        raise
    metric_inc("repro_runs_total", kind=spec.kind, outcome="completed")
    metric_observe(
        "repro_run_seconds", _time.perf_counter() - started, kind=spec.kind
    )
    return result


def _execute_kind(spec: RunSpec, store: ResultStore) -> RunResult:
    if spec.kind == "sim":
        return _execute_sim(spec, store)
    if spec.kind == "penalties":
        return _execute_penalties(spec, store)
    # kind == "trace": generating via the cache also publishes the artifact.
    trace = _trace_for(spec, store)
    return RunResult(
        spec=spec, key=spec.key(), meta=trace_meta(trace), arrays={}
    )


def _forget_traces(specs: Sequence[RunSpec], store: ResultStore) -> None:
    """Force-path helper: retire stored trace artifacts for regeneration.

    A ``trace`` entry is republished by the trace cache itself, so
    forcing one means deleting the artifact and the in-process memo;
    overwriting it with the executor's array-less result would clobber
    ``trace.json.gz``.
    """
    trace_specs = [s for s in specs if s.kind == "trace"]
    if not trace_specs:
        return
    from ..experiments.workloads import clear_trace_cache

    clear_trace_cache(store=store, memory_only=True)
    for spec in trace_specs:
        store.remove(spec.key())


def run_spec(
    spec: RunSpec,
    store: ResultStore | None = None,
    force: bool = False,
) -> RunResult:
    """Load one spec's result from the store, computing it on a miss.

    ``force`` recomputes and replaces whatever the store holds.
    """
    store = store or default_store()
    key = spec.key()
    if not force:
        cached = store.get_result(spec)
        if cached is not None:
            return cached
    else:
        _forget_traces([spec], store)
    result = execute(spec, store)
    # ``has`` despite a failed load means the entry is corrupt (a hard
    # kill mid-publish): replace it rather than no-op against the husk.
    overwrite = spec.kind != "trace" and (force or store.has(key))
    store.put_result(result, overwrite=overwrite)
    stored = store.get_result(spec)
    # Return the store's view so every caller sees identical bytes.
    return stored if stored is not None else result


def plan_specs(
    specs: Sequence[RunSpec], store: ResultStore
) -> tuple[list[RunSpec], list[RunSpec]]:
    """Split submitted work into (unique specs, specs missing from store)."""
    unique: list[RunSpec] = []
    seen: set[str] = set()
    for spec in specs:
        key = spec.key()
        if key not in seen:
            seen.add(key)
            unique.append(spec)
    missing = [s for s in unique if not store.has(s.key())]
    return unique, missing


def shard_specs(specs: Sequence[RunSpec], n_shards: int) -> list[list[RunSpec]]:
    """Deal specs into ``n_shards`` chunks, trace-aware but balanced.

    Specs sharing ``(app, scale, seed)`` are kept together where possible
    (one trace generation/load per worker), but a workload group larger
    than its fair share is split so a single-app sweep still parallelizes
    — the extra worker re-reads the trace from the store, which is far
    cheaper than serializing the whole sweep.  Groups go to the
    least-loaded shard; deterministic for a given input order.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    groups: dict[tuple, list[RunSpec]] = {}
    for spec in specs:
        groups.setdefault((spec.app, spec.scale, spec.seed), []).append(spec)
    fair = -(-len(specs) // n_shards)  # ceil: a shard's fair share
    chunks: list[list[RunSpec]] = []
    for group in groups.values():
        chunks.extend(
            group[i : i + fair] for i in range(0, len(group), fair)
        )
    shards: list[list[RunSpec]] = [[] for _ in range(n_shards)]
    for chunk in sorted(chunks, key=len, reverse=True):
        min(shards, key=len).extend(chunk)
    return [s for s in shards if s]


def _run_shard(root: str, spec_docs: list[dict], overwrite: bool) -> list[str]:
    """Worker entry point: compute one shard, publish into the store."""
    store = ResultStore(root)
    keys: list[str] = []
    for doc in spec_docs:
        spec = RunSpec.from_json(doc)
        store.put_result(
            execute(spec, store),
            overwrite=overwrite and spec.kind != "trace",
        )
        keys.append(spec.key())
    return keys


def run_specs(
    specs: Iterable[RunSpec],
    n_jobs: int = 1,
    store: ResultStore | None = None,
    force: bool = False,
    progress: Callable[[str], None] | None = None,
    backend: "str | object | None" = None,
    workers: int | None = None,
    verbose: bool = False,
) -> list[RunResult]:
    """Run a batch of specs as a dependency graph over a backend.

    Parameters
    ----------
    specs :
        Jobs to run; duplicates are computed once and share the result.
        Implicit inputs (the workload traces of ``sim`` / ``penalties``
        jobs) are scheduled automatically when the store lacks them —
        traces first, dependents fanned out once they are published.
    n_jobs :
        Worker processes for the default local backends: ``1`` selects
        ``serial`` (everything in-process, no pool), ``>1`` selects
        ``process`` with that many workers.  Ignored when ``backend``
        names anything else.
    store :
        Result store (default: ``REPRO_CACHE_DIR`` / ``~/.cache/repro``).
    force :
        Recompute even when the store already holds a result (submitted
        specs only; implicit inputs still resolve against the store).
    progress :
        Optional callback receiving one human-readable line per event.
    backend :
        Execution backend: a registered name (``"serial"``,
        ``"process"``, ``"cluster"``, or a plugin's), an
        :class:`~repro.engine.backends.ExecutionBackend` instance, or
        ``None`` for the historical ``n_jobs`` behavior.  Every backend
        publishes to — and this function reads back from — the store,
        so results are bit-identical across backends.
    workers :
        ``cluster`` convenience: auto-spawn this many local ``repro
        worker`` daemons for the duration of the run (``None``/0: rely
        on externally started workers).
    verbose :
        Emit per-layer progress lines (jobs queued/leased/done) through
        ``progress`` in addition to the coarse events.

    Returns
    -------
    list[RunResult]
        One result per submitted spec, in submission order.
    """
    specs = list(specs)
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    store = store or default_store()
    # Lazy: backends import this module (execute/shard helpers), so the
    # front-end resolves them at call time.
    from .backends import resolve_backend

    engine_backend = resolve_backend(backend, n_jobs=n_jobs, workers=workers)
    # The sweep-wide telemetry session (a no-op when REPRO_TELEMETRY is
    # off, or transparent when an outer session is already live).
    with session(store.root, name="sweep",
                 meta={"backend": engine_backend.name,
                       "submitted": len(specs)}):
        plan = build_plan(specs, store, force=force)
        if force:
            _forget_traces(
                [node.spec for node in plan.submitted() if node.pending], store
            )
        say = progress or (lambda line: None)
        counts = plan.counts()
        implicit = counts["implicit_compute"]
        extra = (
            f" (+{implicit} trace input{'s' if implicit != 1 else ''})"
            if implicit
            else ""
        )
        say(
            f"{len(specs)} submitted: {counts['submitted']} unique, "
            f"{counts['stored']} in store, {counts['compute']} to compute{extra}"
        )
        if verbose:
            say(f"backend: {engine_backend.name}")
        with span("run_specs", cat="engine", backend=engine_backend.name,
                  submitted=len(specs), compute=counts["compute"]):
            engine_backend.run_plan(
                plan, store, force=force, progress=progress, verbose=verbose
            )
        by_key: dict[str, RunResult] = {}
        with span("collect_results", cat="engine", n=len(plan.submitted())):
            for node in plan.submitted():
                result = store.get_result(node.key)
                if result is None:  # pragma: no cover - store corruption guard
                    result = run_spec(node.spec, store)
                by_key[node.key] = result
    # Leave a metrics file snapshot next to the run's other telemetry:
    # the driving process (broker or serial sweep) is scrapeable from
    # the store even after it exits.  Best-effort by design.
    try:
        write_metrics_files(store.root)
    except OSError:  # pragma: no cover - full disk / yanked store
        pass
    return [by_key[spec.key()] for spec in specs]
