"""Built-in engine components and the name-resolution helpers.

Specs reference components *by name* so they stay plain hashable data;
this module registers every built-in partitioner, dynamic schedule and
machine scenario with the unified :mod:`repro.registry` and owns the
helpers the engine resolves those names through.  The experiment layer
reuses the same registries (``static_partitioner_suite`` /
``machine_scenarios`` delegate here) so the CLI, the figures and the
ablations all agree on what ``"nature+fable"`` or ``"net-starved"``
means — and a component registered by a third party (decorator or
``repro.components`` entry point) is immediately sweepable by name.

The canonical surface is the registry itself::

    from repro.engine import create, registry, describe

    create("partitioner", "domain-sfc-hilbert", unit_size=4)
    tuple(registry("machine"))          # live scenario names
    describe("partitioner")             # parameter schemas for all of them

The PR-2 helpers ``make_partitioner`` / ``make_schedule`` /
``make_machine`` remain as deprecation shims.
"""

from __future__ import annotations

import warnings
from typing import Mapping

from ..meta import ArmadaClassifier, MetaScheduler
from ..model import StateSampler
from ..partition import (
    DomainSfcPartitioner,
    NatureFableParams,
    NaturePlusFable,
    PatchBasedPartitioner,
    Partitioner,
    StickyRepartitioner,
)
from ..registry import create, describe, load_plugins, register, registry
from ..simulator import MachineModel

__all__ = [
    "PARTITIONER_NAMES",
    "STATIC_SUITE",
    "SCHEDULE_NAMES",
    "MACHINE_NAMES",
    "create",
    "describe",
    "register",
    "registry",
    "load_plugins",
    "resolve_machine",
    "is_schedule",
    "validate_partitioner",
    "validate_scale",
    "make_partitioner",
    "make_schedule",
    "make_machine",
]


# -- built-in partitioners -------------------------------------------------

@register(
    "partitioner",
    "nature+fable",
    description="the paper's hybrid Hue/Core bi-level partitioner",
    tags=("static", "suite"),
    schema_from=NatureFableParams,
)
def _nature_fable(**params) -> Partitioner:
    return NaturePlusFable(NatureFableParams(**params) if params else None)


@register(
    "partitioner",
    "nature+fable-balance",
    description="Nature+Fable steered to its load-balance-focused setup",
    tags=("static", "suite"),
    schema_from=NatureFableParams,
)
def _nature_fable_balance(**params) -> Partitioner:
    return NaturePlusFable(NatureFableParams(**params).balance_focused())


@register(
    "partitioner",
    "domain-sfc-hilbert",
    description="strictly domain-based decomposition along a Hilbert curve",
    tags=("static", "suite"),
    schema_from=DomainSfcPartitioner,
    schema_exclude=("curve",),
)
def _domain_sfc_hilbert(**params) -> Partitioner:
    return DomainSfcPartitioner(curve="hilbert", **params)


@register(
    "partitioner",
    "domain-sfc-morton",
    description="strictly domain-based decomposition along a Morton curve",
    tags=("static",),
    schema_from=DomainSfcPartitioner,
    schema_exclude=("curve",),
)
def _domain_sfc_morton(**params) -> Partitioner:
    return DomainSfcPartitioner(curve="morton", **params)


register(
    "partitioner",
    "patch-lpt",
    PatchBasedPartitioner,
    description="per-level patch distribution (LPT / round-robin)",
    tags=("static", "suite"),
)


@register(
    "partitioner",
    "sticky-sfc",
    description="migration-minimizing sticky wrapper around domain-SFC",
    tags=("static", "suite"),
    schema_from=DomainSfcPartitioner,
)
def _sticky_sfc(**params) -> Partitioner:
    return StickyRepartitioner(DomainSfcPartitioner(**params))


#: The paper's static comparison suite, in its canonical order.
STATIC_SUITE: tuple[str, ...] = (
    "nature+fable",
    "nature+fable-balance",
    "domain-sfc-hilbert",
    "patch-lpt",
    "sticky-sfc",
)


# -- dynamic per-step schedules (simulated via run_scheduled) --------------

@register(
    "schedule",
    "armada-octant",
    description="ArMADA discrete octant-table baseline",
    tags=("dynamic",),
)
def _armada_octant(machine: MachineModel, nprocs: int) -> ArmadaClassifier:
    return ArmadaClassifier()


@register(
    "schedule",
    "meta-partitioner",
    description="continuous meta-partitioner (dynamic PAC selection)",
    tags=("dynamic",),
)
def _meta_partitioner(machine: MachineModel, nprocs: int) -> MetaScheduler:
    return MetaScheduler(sampler=StateSampler(machine=machine, nprocs=nprocs))


# -- machine scenarios of the dynamic-PAC experiment -----------------------

@register(
    "machine",
    "net-starved",
    description="bandwidth-starved cluster (50 MB/s interconnect)",
)
def _net_starved() -> MachineModel:
    return MachineModel(bandwidth_bytes_per_s=5.0e7)


register(
    "machine",
    "cluster-2003",
    MachineModel,
    description="the 2003-era baseline cluster (Myrinet-class network)",
)


@register(
    "machine",
    "fast-network",
    description="compute-bound scenario: 40x the baseline bandwidth",
)
def _fast_network() -> MachineModel:
    return MachineModel().faster_network(40)


def __getattr__(name: str):
    # Live name tuples (PEP 562): stay current as components register.
    if name == "PARTITIONER_NAMES":
        return tuple(registry("partitioner"))
    if name == "SCHEDULE_NAMES":
        return tuple(registry("schedule"))
    if name == "MACHINE_NAMES":
        return tuple(registry("machine"))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# -- resolution helpers ----------------------------------------------------

def is_schedule(name: str) -> bool:
    """Whether ``name`` denotes a dynamic schedule rather than a static P."""
    return name in registry("schedule")


def validate_partitioner(name: str) -> None:
    """Raise ``ValueError`` for names neither static nor schedulable."""
    partitioners, schedules = registry("partitioner"), registry("schedule")
    if name not in partitioners and name not in schedules:
        raise ValueError(
            f"unknown partitioner {name!r}; choose from "
            f"{tuple(partitioners) + tuple(schedules)}"
        )


def validate_scale(scale: str) -> None:
    """Raise ``ValueError`` for unregistered workload scales."""
    # Lazy: the built-in scales register when the workload layer imports,
    # and the workload layer owns the single validator.
    from ..experiments.workloads import _check_scale

    _check_scale(scale)


def resolve_machine(
    machine: str | Mapping | tuple | MachineModel,
) -> MachineModel:
    """Resolve a scenario name, field overrides or model to a model.

    Accepts a registered scenario name, a mapping / pair-tuple of
    :class:`MachineModel` field overrides, or an already-built model
    (returned as is).
    """
    if isinstance(machine, MachineModel):
        return machine
    if isinstance(machine, str):
        return create("machine", machine)
    return MachineModel(**dict(machine))


# -- deprecation shims (PR-2 surface) --------------------------------------

def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def make_partitioner(name: str, params: Mapping | None = None) -> Partitioner:
    """Deprecated: use ``create("partitioner", name, **params)``."""
    _deprecated("make_partitioner()", "repro.engine.create('partitioner', ...)")
    if name in registry("schedule"):
        raise ValueError(
            f"{name!r} is a dynamic schedule; build it with "
            f"create('schedule', ...)"
        )
    return create("partitioner", name, **dict(params or {}))


def make_schedule(name: str, machine: MachineModel, nprocs: int):
    """Deprecated: use ``create("schedule", name, machine=..., nprocs=...)``."""
    _deprecated("make_schedule()", "repro.engine.create('schedule', ...)")
    return create("schedule", name, machine=machine, nprocs=nprocs)


def make_machine(
    machine: str | Mapping | tuple | MachineModel,
) -> MachineModel:
    """Deprecated: use :func:`resolve_machine` (names, overrides, models)."""
    _deprecated("make_machine()", "repro.engine.resolve_machine(...)")
    return resolve_machine(machine)
