"""Dependency-aware spec graphs: resolve, dedupe, layer, plan.

A batch of :class:`~repro.engine.spec.RunSpec` jobs is not a flat list —
every ``sim`` and ``penalties`` job consumes the workload trace of its
``(app, scale, seed)``, and :meth:`RunSpec.inputs` makes that edge
explicit.  :func:`build_plan` turns submitted specs into a
:class:`Plan`:

* implicit inputs become first-class nodes (a sim-only sweep grows its
  trace jobs automatically),
* duplicates collapse onto one node per content hash,
* everything the store already holds is marked ``stored`` and never
  scheduled (a warm store resolves a whole sim sweep to zero trace
  jobs),
* what remains is layered topologically — traces first, then dependents
  fan out in parallel.

The executor walks the layers; ``python -m repro plan`` / ``graph``
render them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .spec import RunSpec
from .store import ResultStore

__all__ = [
    "MissingInputError",
    "SpecNode",
    "Plan",
    "build_plan",
    "toposort_layers",
]


class MissingInputError(RuntimeError):
    """A spec's input artifact is absent when its layer becomes ready."""


@dataclass(frozen=True)
class SpecNode:
    """One vertex of the spec graph.

    ``submitted`` distinguishes caller-provided specs from implicit
    inputs the graph pulled in; ``stored`` nodes resolve against the
    store and are never executed.
    """

    spec: RunSpec
    key: str
    submitted: bool
    stored: bool
    inputs: tuple[str, ...]

    @property
    def pending(self) -> bool:
        """Whether this node still needs to be computed."""
        return not self.stored


def toposort_layers(deps: Mapping[str, Iterable[str]]) -> list[list[str]]:
    """Layer a dependency mapping (node -> prerequisite nodes).

    Layer ``i`` holds every node whose prerequisites all live in layers
    ``< i``; nodes within a layer are independent and may run
    concurrently.  Prerequisites absent from ``deps`` are treated as
    already satisfied.  Insertion order is preserved within layers
    (deterministic for a given input order); cycles raise ``ValueError``.
    """
    remaining: dict[str, set[str]] = {
        node: {d for d in node_deps if d in deps and d != node}
        for node, node_deps in deps.items()
    }
    layers: list[list[str]] = []
    while remaining:
        ready = [node for node, blocked in remaining.items() if not blocked]
        if not ready:
            raise ValueError(
                f"cycle in spec graph involving {sorted(remaining)[:4]}"
            )
        layers.append(ready)
        for node in ready:
            del remaining[node]
        done = set(ready)
        for blocked in remaining.values():
            blocked -= done
    return layers


class Plan:
    """A resolved execution plan over the spec graph.

    ``nodes`` maps content hash to :class:`SpecNode` (submitted specs
    first, in submission order, then implicit inputs as discovered);
    ``layers`` holds the keys of *pending* nodes, topologically layered.
    """

    def __init__(
        self, nodes: dict[str, SpecNode], layers: list[list[str]]
    ) -> None:
        self.nodes = nodes
        self.layers = tuple(tuple(layer) for layer in layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Plan({len(self.nodes)} nodes, {len(self.pending())} pending, "
            f"{len(self.layers)} layers)"
        )

    # -- views -------------------------------------------------------------
    def node(self, key: str) -> SpecNode:
        """The node with content hash ``key``."""
        return self.nodes[key]

    def pending(self) -> list[SpecNode]:
        """Nodes that must be computed, in layer order."""
        return [self.nodes[key] for layer in self.layers for key in layer]

    def layer_specs(self, depth: int) -> list[RunSpec]:
        """The specs of one pending layer, in layer order."""
        return [self.nodes[key].spec for key in self.layers[depth]]

    def stored(self) -> list[SpecNode]:
        """Nodes the store already resolves."""
        return [node for node in self.nodes.values() if node.stored]

    def submitted(self) -> list[SpecNode]:
        """Deduplicated caller-submitted nodes, in submission order."""
        return [node for node in self.nodes.values() if node.submitted]

    def implicit(self) -> list[SpecNode]:
        """Input nodes the graph added that the caller did not submit."""
        return [node for node in self.nodes.values() if not node.submitted]

    def edges(self) -> list[tuple[str, str]]:
        """All ``(consumer_key, input_key)`` dependency edges."""
        return [
            (node.key, input_key)
            for node in self.nodes.values()
            for input_key in node.inputs
        ]

    def counts(self) -> dict[str, int]:
        """Summary numbers for progress lines and the CLI."""
        submitted = self.submitted()
        return {
            "nodes": len(self.nodes),
            "submitted": len(submitted),
            "stored": len([n for n in submitted if n.stored]),
            "compute": len([n for n in submitted if n.pending]),
            "implicit_compute": len(
                [n for n in self.implicit() if n.pending]
            ),
            "layers": len(self.layers),
        }


def build_plan(
    specs: Sequence[RunSpec],
    store: ResultStore,
    force: bool = False,
) -> Plan:
    """Resolve submitted specs into a deduplicated, layered :class:`Plan`.

    Implicit inputs are expanded transitively; ``force`` marks every
    *submitted* node pending (implicit inputs still resolve against the
    store, matching the executor's force semantics).
    """
    nodes: dict[str, SpecNode] = {}
    queue: list[tuple[RunSpec, bool]] = [(spec, True) for spec in specs]
    while queue:
        spec, submitted = queue.pop(0)
        key = spec.key()
        known = nodes.get(key)
        if known is not None:
            if submitted and not known.submitted:
                # First seen as an implicit input, now submitted outright.
                nodes[key] = SpecNode(
                    spec=known.spec,
                    key=key,
                    submitted=True,
                    stored=known.stored and not force,
                    inputs=known.inputs,
                )
            continue
        inputs = spec.inputs()
        nodes[key] = SpecNode(
            spec=spec,
            key=key,
            submitted=submitted,
            stored=store.has(key) and not (force and submitted),
            inputs=tuple(s.key() for s in inputs),
        )
        queue.extend((input_spec, False) for input_spec in inputs)
    deps = {
        node.key: [k for k in node.inputs if k in nodes and nodes[k].pending]
        for node in nodes.values()
        if node.pending
    }
    return Plan(nodes, toposort_layers(deps))
