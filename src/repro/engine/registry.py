"""Name registries for the engine: partitioners, schedules, machines.

Specs reference partitioners and machine scenarios *by name* so they stay
plain hashable data; this module owns the mapping from those names to
configured objects.  The experiment layer reuses the same registries
(``static_partitioner_suite`` / ``machine_scenarios`` delegate here) so
the CLI, the figures and the ablations all agree on what
``"nature+fable"`` or ``"net-starved"`` means.
"""

from __future__ import annotations

from typing import Mapping

from ..meta import ArmadaClassifier, MetaScheduler
from ..model import StateSampler
from ..partition import (
    DomainSfcPartitioner,
    NatureFableParams,
    NaturePlusFable,
    PatchBasedPartitioner,
    Partitioner,
    StickyRepartitioner,
)
from ..simulator import MachineModel

__all__ = [
    "PARTITIONER_NAMES",
    "STATIC_SUITE",
    "SCHEDULE_NAMES",
    "MACHINE_NAMES",
    "make_partitioner",
    "make_schedule",
    "make_machine",
    "is_schedule",
    "validate_partitioner",
]


def _nature_fable(**params) -> Partitioner:
    return NaturePlusFable(NatureFableParams(**params) if params else None)


def _nature_fable_balance(**params) -> Partitioner:
    return NaturePlusFable(NatureFableParams(**params).balance_focused())


def _domain_sfc(curve: str, **params) -> Partitioner:
    return DomainSfcPartitioner(curve=curve, **params)


def _sticky_sfc(**params) -> Partitioner:
    return StickyRepartitioner(DomainSfcPartitioner(**params))


_PARTITIONERS = {
    "nature+fable": _nature_fable,
    "nature+fable-balance": _nature_fable_balance,
    "domain-sfc-hilbert": lambda **p: _domain_sfc("hilbert", **p),
    "domain-sfc-morton": lambda **p: _domain_sfc("morton", **p),
    "patch-lpt": lambda **p: PatchBasedPartitioner(**p),
    "sticky-sfc": _sticky_sfc,
}

#: Every static partitioner name the engine can instantiate.
PARTITIONER_NAMES: tuple[str, ...] = tuple(_PARTITIONERS)

#: The paper's static comparison suite, in its canonical order.
STATIC_SUITE: tuple[str, ...] = (
    "nature+fable",
    "nature+fable-balance",
    "domain-sfc-hilbert",
    "patch-lpt",
    "sticky-sfc",
)

#: Dynamic per-step partitioner schedules (simulated via run_scheduled).
SCHEDULE_NAMES: tuple[str, ...] = ("armada-octant", "meta-partitioner")

_MACHINES = {
    "net-starved": lambda: MachineModel(bandwidth_bytes_per_s=5.0e7),
    "cluster-2003": MachineModel,
    "fast-network": lambda: MachineModel().faster_network(40),
}

#: The named machine scenarios of the dynamic-PAC experiment.
MACHINE_NAMES: tuple[str, ...] = tuple(_MACHINES)


def is_schedule(name: str) -> bool:
    """Whether ``name`` denotes a dynamic schedule rather than a static P."""
    return name in SCHEDULE_NAMES


def validate_partitioner(name: str) -> None:
    """Raise ``ValueError`` for names neither static nor schedulable."""
    if name not in _PARTITIONERS and name not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown partitioner {name!r}; choose from "
            f"{PARTITIONER_NAMES + SCHEDULE_NAMES}"
        )


def make_partitioner(name: str, params: Mapping | None = None) -> Partitioner:
    """Instantiate a static partitioner registry entry."""
    if name in SCHEDULE_NAMES:
        raise ValueError(
            f"{name!r} is a dynamic schedule; build it with make_schedule()"
        )
    try:
        factory = _PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; choose from {PARTITIONER_NAMES}"
        ) from None
    return factory(**dict(params or {}))


def make_schedule(name: str, machine: MachineModel, nprocs: int):
    """Instantiate a dynamic schedule for one (machine, nprocs) context."""
    if name == "armada-octant":
        return ArmadaClassifier()
    if name == "meta-partitioner":
        return MetaScheduler(
            sampler=StateSampler(machine=machine, nprocs=nprocs)
        )
    raise ValueError(
        f"unknown schedule {name!r}; choose from {SCHEDULE_NAMES}"
    )


def make_machine(machine: str | Mapping | tuple) -> MachineModel:
    """Resolve a machine scenario name or field overrides to a model."""
    if isinstance(machine, MachineModel):
        return machine
    if isinstance(machine, str):
        try:
            return _MACHINES[machine]()
        except KeyError:
            raise ValueError(
                f"unknown machine scenario {machine!r}; "
                f"choose from {MACHINE_NAMES}"
            ) from None
    return MachineModel(**dict(machine))
