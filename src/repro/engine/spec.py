"""The experiment job model: :class:`RunSpec` and :class:`RunResult`.

A :class:`RunSpec` is a complete, declarative description of one unit of
experiment work — generate a workload trace, replay it through the
execution simulator under a partitioner, or sample the model penalties
along it.  Specs are pure data (app, scale, partitioner, params, machine,
seed, ...) so they can be hashed, shipped to worker processes, and used
as keys of the content-addressed result store: two invocations that
describe the same computation share the same stored artifact, across
figures, benchmarks, CLI calls and process boundaries.

The content hash is engineered for stability: the hashed payload is a
canonical JSON document (sorted keys, resolved machine parameters, the
full trace-generation config) so it does not depend on ``PYTHONHASHSEED``,
process, platform, or the *name* used to select a registry entry.  Bump
:data:`ENGINE_SCHEMA_VERSION` whenever the semantics of stored results
change (kernel physics, simulator cost model, array layout) — that
retires every stale cache entry at once.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

import numpy as np

from ..apps import APPLICATIONS
from ..simulator import MachineModel

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "RunSpec",
    "RunResult",
    "trace_spec",
    "sim_spec",
    "penalties_spec",
]

#: Version of the stored-result semantics; part of every content hash.
ENGINE_SCHEMA_VERSION = 1

#: The job kinds the executor understands.
KINDS = ("trace", "sim", "penalties")

Params = tuple[tuple[str, Any], ...]


def _accepts_seed(app: str) -> bool:
    """Whether the kernel factory has a ``seed`` parameter.

    Works for classes (the signature is ``__init__``'s) and plain
    factory callables alike.
    """
    try:
        signature = inspect.signature(APPLICATIONS[app])
    except (TypeError, ValueError):  # pragma: no cover - exotic factories
        return True  # cannot introspect: let the factory decide
    return "seed" in signature.parameters


def _app_ndim(app: str) -> int:
    """Spatial dimensionality a registered kernel factory declares."""
    ndim = getattr(APPLICATIONS[app], "ndim", None)
    if ndim is None:
        raise ValueError(
            f"application {app!r}: the registered factory must expose an "
            f"'ndim' attribute (ShadowApplication subclasses do)"
        )
    return int(ndim)


def _normalize_pairs(value: Mapping | Params | None) -> Params:
    """Canonicalize a params mapping into a key-sorted tuple of pairs.

    The sort key is the parameter *name* only, so heterogeneous values
    (which Python refuses to order) can never raise ``TypeError`` during
    canonicalization.
    """
    if value is None:
        return ()
    if isinstance(value, MachineModel):
        value = asdict(value)
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [(k, v) for k, v in value]
    for k, _ in items:
        if not isinstance(k, str):
            raise TypeError(f"param names must be strings, got {k!r}")
    return tuple(sorted(items, key=lambda pair: pair[0]))


@dataclass(frozen=True)
class RunSpec:
    """One declarative unit of experiment work.

    Parameters
    ----------
    kind :
        ``"trace"`` (generate a workload trace), ``"sim"`` (replay the
        trace through the execution simulator) or ``"penalties"`` (sample
        the model penalties along the trace).
    app :
        Registered application kernel name (``repro.apps.APPLICATIONS``).
    scale :
        Canonical workload scale, ``"paper"`` or ``"small"``.
    nprocs :
        Simulated processor count (``sim`` / ``penalties``).
    partitioner :
        Registry name of the partitioner or dynamic schedule (``sim``).
    params :
        Partitioner constructor overrides, canonicalized to a sorted
        tuple of ``(name, value)`` pairs.
    machine :
        Machine-scenario registry name, or a sorted tuple of
        ``(field, value)`` pairs overriding :class:`MachineModel` fields.
        The content hash always uses the *resolved* parameters, so a
        named scenario and its explicit parameters hash identically.
    seed :
        Kernel seed override; ``None`` keeps each kernel's canonical
        (paper-deterministic) seed.
    ghost_width :
        Ghost-layer width of the simulated numerical scheme.
    migration_denominator :
        ``beta_m`` denominator convention (``penalties`` only).
    """

    kind: str
    app: str
    scale: str = "paper"
    nprocs: int = 16
    partitioner: str = "nature+fable"
    params: Params = ()
    machine: str | Params = "cluster-2003"
    seed: int | None = None
    ghost_width: int = 1
    migration_denominator: str = "current"
    ndim: int = field(default=0)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.app not in APPLICATIONS:
            raise ValueError(
                f"unknown application {self.app!r}; "
                f"choose from {tuple(sorted(APPLICATIONS))}"
            )
        from .components import validate_scale

        validate_scale(self.scale)
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.ghost_width < 0:
            raise ValueError("ghost_width must be >= 0")
        if self.migration_denominator not in ("current", "previous", "max"):
            raise ValueError(
                "migration_denominator must be 'current', 'previous' or 'max'"
            )
        object.__setattr__(self, "params", _normalize_pairs(self.params))
        if not isinstance(self.machine, str):
            object.__setattr__(self, "machine", _normalize_pairs(self.machine))
        ndim = _app_ndim(self.app)
        if self.ndim not in (0, ndim):
            raise ValueError(
                f"ndim={self.ndim} contradicts {self.app!r} (ndim={ndim})"
            )
        object.__setattr__(self, "ndim", ndim)
        if self.seed is not None and not _accepts_seed(self.app):
            raise ValueError(
                f"{self.app!r} has no seed parameter; omit the seed override"
            )
        if self.kind == "sim":
            from .components import is_schedule, validate_partitioner

            validate_partitioner(self.partitioner)
            if self.params and is_schedule(self.partitioner):
                raise ValueError(
                    f"{self.partitioner!r} is a dynamic schedule and takes "
                    f"no constructor params"
                )

    # -- dependencies ------------------------------------------------------
    def inputs(self) -> tuple["RunSpec", ...]:
        """Prerequisite specs this job consumes (the spec graph's edges).

        A ``sim`` or ``penalties`` job replays the workload trace of its
        ``(app, scale, seed)``; the trace spec — and therefore its
        content hash — is the explicit input edge the DAG executor
        resolves against the store before the job is scheduled.
        """
        if self.kind == "trace":
            return ()
        return (trace_spec(self.app, self.scale, seed=self.seed),)

    def input_keys(self) -> tuple[str, ...]:
        """Content hashes of :meth:`inputs` (store keys of prerequisites)."""
        return tuple(spec.key() for spec in self.inputs())

    # -- hashing -----------------------------------------------------------
    def _machine_payload(self) -> dict:
        from .components import resolve_machine

        return asdict(resolve_machine(self.machine))

    def _trace_payload(self) -> dict:
        # Lazy: repro.experiments imports the engine at module scope; the
        # engine may only reach back at call time.
        from ..experiments.workloads import paper_config, shadow_shape

        config = paper_config(self.scale, self.ndim)
        payload = asdict(config)
        payload["cluster"] = asdict(config.cluster)
        return {
            "schema": ENGINE_SCHEMA_VERSION,
            "kind": "trace",
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
            "shadow_shape": list(shadow_shape(self.scale, self.ndim)),
            "config": payload,
        }

    def payload(self) -> dict:
        """The canonical (JSON-able) document the content hash covers."""
        doc = self._trace_payload()
        if self.kind == "trace":
            return doc
        common = {
            "schema": ENGINE_SCHEMA_VERSION,
            "kind": self.kind,
            "trace": doc,
            "nprocs": self.nprocs,
            "machine": self._machine_payload(),
            "ghost_width": self.ghost_width,
        }
        if self.kind == "sim":
            common["partitioner"] = self.partitioner
            common["params"] = [list(p) for p in self.params]
        else:
            common["migration_denominator"] = self.migration_denominator
        return common

    def key(self) -> str:
        """Stable content hash of the spec (sha256 hex digest)."""
        canonical = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- transport ---------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form for shipping specs to worker processes."""
        doc = {f.name: getattr(self, f.name) for f in fields(self)}
        doc["params"] = [list(p) for p in self.params]
        if not isinstance(self.machine, str):
            doc["machine"] = [list(p) for p in self.machine]
        return doc

    @staticmethod
    def from_json(doc: dict) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        doc = dict(doc)
        doc["params"] = tuple((k, v) for k, v in doc.get("params", ()))
        machine = doc.get("machine", "cluster-2003")
        if not isinstance(machine, str):
            doc["machine"] = tuple((k, v) for k, v in machine)
        return RunSpec(**doc)

    def label(self) -> str:
        """Compact human-readable identifier for tables and progress."""
        bits = [self.kind, self.app, self.scale]
        if self.kind == "sim":
            bits.append(self.partitioner)
        if self.kind != "trace":
            bits.append(f"P{self.nprocs}")
            if isinstance(self.machine, str) and self.machine != "cluster-2003":
                bits.append(self.machine)
        return ":".join(bits)


@dataclass(frozen=True)
class RunResult:
    """The stored outcome of one :class:`RunSpec`.

    ``meta`` is the JSON-able summary (descriptors plus scalar
    aggregates); ``arrays`` holds the per-regrid-step series exactly as
    computed (dtype-preserving — this is what "bit-identical" means for
    parallel vs. serial execution).
    """

    spec: RunSpec
    key: str
    meta: dict
    arrays: dict[str, np.ndarray]

    def series(self, name: str) -> np.ndarray:
        """One stored column, e.g. ``series("relative_migration")``."""
        return self.arrays[name]


def trace_spec(app: str, scale: str = "paper", *, seed: int | None = None) -> RunSpec:
    """Spec for generating (and caching) one canonical workload trace."""
    return RunSpec(kind="trace", app=app, scale=scale, seed=seed)


def sim_spec(
    app: str,
    scale: str = "paper",
    *,
    nprocs: int = 16,
    partitioner: str = "nature+fable",
    params: Mapping | Params | None = None,
    machine: str | Mapping | Params | MachineModel = "cluster-2003",
    seed: int | None = None,
    ghost_width: int = 1,
) -> RunSpec:
    """Spec for one simulator replay (static partitioner or schedule)."""
    if not isinstance(machine, str):
        machine = _normalize_pairs(machine)
    return RunSpec(
        kind="sim",
        app=app,
        scale=scale,
        nprocs=nprocs,
        partitioner=partitioner,
        params=_normalize_pairs(params),
        machine=machine,
        seed=seed,
        ghost_width=ghost_width,
    )


def penalties_spec(
    app: str,
    scale: str = "paper",
    *,
    nprocs: int = 16,
    machine: str | Mapping | Params | MachineModel = "cluster-2003",
    migration_denominator: str = "current",
    seed: int | None = None,
    ghost_width: int = 1,
) -> RunSpec:
    """Spec for sampling the model penalties along one trace."""
    if not isinstance(machine, str):
        machine = _normalize_pairs(machine)
    return RunSpec(
        kind="penalties",
        app=app,
        scale=scale,
        nprocs=nprocs,
        machine=machine,
        seed=seed,
        ghost_width=ghost_width,
        migration_denominator=migration_denominator,
    )
