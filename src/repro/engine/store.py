"""Content-addressed on-disk store for traces and experiment results.

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    <root>/objects/<key[:2]>/<key>/meta.json       spec + summary (JSON)
                                   series.npz      per-step arrays (sim/penalties)
                                   trace.json.gz   the trace artifact (trace)
    <root>/tmp/                                    staging for atomic publish

Every entry is keyed by the spec's content hash, so any two computations
that describe the same work — across figures, benchmarks, CLI calls and
worker processes — share one artifact.  Writes are atomic: an entry is
staged in ``tmp/`` and published with a single directory rename, so a
killed sweep never leaves a half-written entry, and concurrent writers of
the same key are benign (first rename wins, the loser is discarded).
"""

from __future__ import annotations

import gzip
import json
import os
import shutil
import time
import warnings
import zipfile
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Iterator

import numpy as np

from ..telemetry import metric_inc, span
from ..trace import Trace
from .spec import RunResult, RunSpec

__all__ = [
    "ResultStore",
    "default_store",
    "DEFAULT_CACHE_DIR",
    "clear_read_cache",
    "read_cache_stats",
]

#: Exceptions a truncated / partially-deleted artifact can raise while
#: loading; anything in this set is a *corrupt entry*, not a crash.
_CORRUPTION_ERRORS = (
    OSError,  # includes gzip.BadGzipFile and plain I/O failures
    EOFError,
    ValueError,
    KeyError,
    TypeError,
    json.JSONDecodeError,
    UnicodeDecodeError,
    zipfile.BadZipFile,
    zlib.error,
)

#: Fallback store location when ``REPRO_CACHE_DIR`` is unset.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro"

_META = "meta.json"
_SERIES = "series.npz"
_TRACE = "trace.json.gz"

#: Reads refresh an entry's mtime (the ``cache gc`` recency signal) at
#: most this often per entry per process — warm sweeps were paying a
#: stat+utime on *every* load of the same hot artifact.
_TOUCH_INTERVAL = 3600.0
_TOUCH_TIMES: dict[tuple[str, str], float] = {}

# Per-process read cache, keyed (store root, content hash, artifact
# kind).  Module-global on purpose: ``default_store()`` builds a fresh
# ``ResultStore`` instance per call, so an instance-level cache would
# never be hit.  Workers of the process/cluster backends each get their
# own copy (the cache is inherited per-process, never shared).  Records
# carry the stat signature of the backing files; a hit is only served
# while the signature still matches, so on-disk corruption, overwrite
# and retirement are observed exactly as a cold read would see them.
_READ_CACHE: OrderedDict[tuple[str, str, str], dict] = OrderedDict()
_READ_STATS = {"hits": 0, "misses": 0, "evictions": 0, "mmap_loads": 0}


def _read_cache_limit() -> int:
    """Entry budget of the read cache (``REPRO_STORE_CACHE``, 0 = off)."""
    raw = os.environ.get("REPRO_STORE_CACHE", "64")
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_STORE_CACHE must be an integer, got {raw!r}"
        ) from None


def _mmap_enabled() -> bool:
    """Whether series arrays may be memory-mapped (``REPRO_STORE_MMAP``)."""
    mode = os.environ.get("REPRO_STORE_MMAP", "auto")
    if mode not in ("auto", "off"):
        raise ValueError(
            f"REPRO_STORE_MMAP must be 'auto' or 'off', got {mode!r}"
        )
    return mode == "auto"


def read_cache_stats() -> dict:
    """Per-process read-cache counters.

    ``hits`` are loads served from memory without touching artifact
    bytes; ``misses`` are loads that went to disk (and, budget
    permitting, populated the cache); ``mmap_loads`` counts cold series
    loads that went through the memory-mapped fast path instead of
    ``np.load``'s buffered zip reader.
    """
    return dict(_READ_STATS)


def clear_read_cache() -> None:
    """Drop every cached read and zero the counters (test isolation)."""
    _READ_CACHE.clear()
    _TOUCH_TIMES.clear()
    for field in _READ_STATS:
        _READ_STATS[field] = 0


def _cache_get(ckey: tuple[str, str, str]) -> dict | None:
    record = _READ_CACHE.get(ckey)
    if record is not None:
        _READ_CACHE.move_to_end(ckey)
    return record


def _cache_put(ckey: tuple[str, str, str], record: dict) -> None:
    limit = _read_cache_limit()
    if limit <= 0:
        return
    _READ_CACHE[ckey] = record
    _READ_CACHE.move_to_end(ckey)
    while len(_READ_CACHE) > limit:
        _READ_CACHE.popitem(last=False)
        _READ_STATS["evictions"] += 1


def _evict_read_cache(root: str, key: str) -> None:
    """Forget one entry (called whenever its on-disk files change)."""
    for kind in ("result", "trace"):
        _READ_CACHE.pop((root, key, kind), None)
    _TOUCH_TIMES.pop((root, key), None)


def _stat_sig(path: Path) -> tuple[int, int] | None:
    """``(mtime_ns, size)`` of a file, or ``None`` when it is absent."""
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


def _load_series_mmap(path: Path) -> dict[str, np.ndarray] | None:
    """Zero-copy load of an uncompressed npz: memory-map every member.

    ``np.savez`` stores members uncompressed (``ZIP_STORED``), so each
    ``.npy`` payload is a contiguous byte range of the archive; this
    parses the zip local headers plus the npy header and maps the array
    data in place — no decompression, no copy, pages fault in on use
    and stay evictable.  Returns ``None`` when any member cannot be
    mapped (compressed, object dtype, Fortran order, 0-d) so the caller
    falls back to ``np.load``; corruption raises the same exceptions a
    cold ``np.load`` would.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
        for info in zf.infolist():
            if (
                not info.filename.endswith(".npy")
                or info.compress_type != zipfile.ZIP_STORED
            ):
                return None
            fh.seek(info.header_offset)
            local = fh.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                raise zipfile.BadZipFile(
                    f"bad local file header for {info.filename!r}"
                )
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            fh.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                return None
            if fortran or dtype.hasobject or shape == ():
                return None
            name = info.filename[:-4]
            if int(np.prod(shape)) == 0:
                arrays[name] = np.empty(shape, dtype=dtype)
            else:
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="r", offset=fh.tell(), shape=shape
                )
    return arrays


def default_store() -> "ResultStore":
    """The store selected by ``REPRO_CACHE_DIR`` (env read per call)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    return ResultStore(root or DEFAULT_CACHE_DIR)


class ResultStore:
    """A content-addressed directory of experiment artifacts."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r})"

    # -- paths -------------------------------------------------------------
    def entry_dir(self, key: str) -> Path:
        """Directory of the entry with content hash ``key``."""
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key {key!r}")
        return self._objects / key[:2] / key

    def has(self, key: str) -> bool:
        """Whether a published entry exists for ``key``."""
        return (self.entry_dir(key) / _META).is_file()

    # -- publishing --------------------------------------------------------
    def _publish(self, key: str, stage: Path, overwrite: bool = False) -> None:
        # The entry's bytes are about to change (or appear): any cached
        # read of it is stale by definition.
        _evict_read_cache(str(self.root), key)
        final = self.entry_dir(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        if overwrite and final.exists():
            # Retire the old entry out of the way first so the rename
            # below lands on a free path (a reader mid-load keeps the
            # moved-aside files alive via its open handles).
            retired = self._tmp / f"{key}.{os.getpid()}.old"
            shutil.rmtree(retired, ignore_errors=True)
            os.replace(final, retired)
            shutil.rmtree(retired, ignore_errors=True)
        try:
            os.replace(stage, final)
        except OSError:
            if (final / _META).is_file():
                # A concurrent writer published the same key first; their
                # artifact is byte-equivalent by construction.
                shutil.rmtree(stage, ignore_errors=True)
                return
            if final.exists():
                # A meta-less husk (hard-killed writer, partial delete)
                # blocks the rename; retire it and publish over it.
                shutil.rmtree(final, ignore_errors=True)
                try:
                    os.replace(stage, final)
                    return
                except OSError:
                    if (final / _META).is_file():
                        shutil.rmtree(stage, ignore_errors=True)
                        return
            # Not the lost-a-race case: surface real I/O failures
            # (disk full, permissions, clobbered tmp dir).
            raise

    def _stage(self, key: str) -> Path:
        self._tmp.mkdir(parents=True, exist_ok=True)
        stage = self._tmp / f"{key}.{os.getpid()}"
        if stage.exists():  # stale leftover from a killed run
            shutil.rmtree(stage)
        stage.mkdir()
        return stage

    def put_result(self, result: RunResult, overwrite: bool = False) -> None:
        """Publish a computed result (no-op if the key already exists,
        unless ``overwrite`` replaces the stored entry)."""
        if self.has(result.key) and not overwrite:
            return
        with span("store.put_result", cat="store", key=result.key[:12],
                  kind=result.spec.kind):
            stage = self._stage(result.key)
            meta = {
                "key": result.key,
                "kind": result.spec.kind,
                "spec": result.spec.to_json(),
                "meta": result.meta,
            }
            (stage / _META).write_text(
                json.dumps(meta, sort_keys=True, indent=1), encoding="utf-8"
            )
            if result.arrays:
                with open(stage / _SERIES, "wb") as fh:
                    np.savez(fh, **result.arrays)
            self._publish(result.key, stage, overwrite=overwrite)
        metric_inc("repro_store_publishes_total", kind=result.spec.kind)

    def put_trace(self, spec: RunSpec, trace: Trace, meta: dict) -> None:
        """Publish a generated trace artifact under its spec key."""
        key = spec.key()
        if self.has(key):
            return
        with span("store.put_trace", cat="store", key=key[:12]):
            stage = self._stage(key)
            doc = {
                "key": key, "kind": "trace", "spec": spec.to_json(),
                "meta": meta,
            }
            (stage / _META).write_text(
                json.dumps(doc, sort_keys=True, indent=1), encoding="utf-8"
            )
            trace.save(stage / _TRACE)
            self._publish(key, stage)

    # -- retrieval ---------------------------------------------------------
    def load_meta(self, key: str) -> dict | None:
        """The ``meta.json`` document of an entry, or ``None``."""
        path = self.entry_dir(key) / _META
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _touch(self, key: str) -> bool:
        """Refresh an entry's mtime (recency signal for LRU eviction).

        Throttled to once per entry per :data:`_TOUCH_INTERVAL` per
        process — recency only needs hour resolution, and warm sweeps
        re-read the same hot artifacts thousands of times.  Returns
        whether the mtime actually changed (the read cache must refresh
        its stat signature then).
        """
        tkey = (str(self.root), key)
        now = time.monotonic()
        last = _TOUCH_TIMES.get(tkey)
        if last is not None and now - last < _TOUCH_INTERVAL:
            return False
        try:
            os.utime(self.entry_dir(key) / _META)
        except OSError:  # pragma: no cover - racing remover / readonly store
            return False
        if len(_TOUCH_TIMES) > 65536:  # pragma: no cover - bound the memo
            _TOUCH_TIMES.clear()
        _TOUCH_TIMES[tkey] = now
        return True

    def _result_sig(self, key: str):
        """Stat signature of a result entry's backing files."""
        entry = self.entry_dir(key)
        return (_stat_sig(entry / _META), _stat_sig(entry / _SERIES))

    def _trace_sig(self, key: str):
        """Stat signature of a trace entry's backing files."""
        entry = self.entry_dir(key)
        return (_stat_sig(entry / _META), _stat_sig(entry / _TRACE))

    def _corrupt_miss(self, key: str, problem: str) -> None:
        """Warn about — and retire — a corrupt entry so the next publish
        repairs it; callers then treat the key as a plain cache miss."""
        warnings.warn(
            f"store entry {key[:12]} is corrupt ({problem}); "
            f"treating it as a cache miss",
            RuntimeWarning,
            stacklevel=3,
        )
        self.remove(key)

    def get_result(self, spec_or_key: RunSpec | str) -> RunResult | None:
        """Load a stored :class:`RunResult`, or ``None`` on a miss.

        Truncated or partially-deleted entries — a worker hard-killed
        mid-publish, a half-finished manual delete — are retired with a
        warning and reported as a miss, so a sweep recomputes instead of
        crashing mid-flight.
        """
        key = (
            spec_or_key if isinstance(spec_or_key, str) else spec_or_key.key()
        )
        with span("store.get_result", cat="store", key=key[:12]) as sp:
            root = str(self.root)
            ckey = (root, key, "result")
            record = _cache_get(ckey)
            if record is not None:
                if record["sig"] == self._result_sig(key):
                    _READ_STATS["hits"] += 1
                    if self._touch(key):
                        record["sig"] = self._result_sig(key)
                    sp.annotate(hit=True, cached=True)
                    return RunResult(
                        spec=record["spec"],
                        key=key,
                        meta=dict(record["meta"]),
                        arrays=dict(record["arrays"]),
                    )
                _READ_CACHE.pop(ckey, None)
            doc = self.load_meta(key)
            if doc is None:
                return None
            spec_doc, meta = doc.get("spec"), doc.get("meta")
            if not isinstance(spec_doc, dict) or not isinstance(meta, dict):
                self._corrupt_miss(key, "meta.json lacks spec/meta")
                return None
            try:
                spec = RunSpec.from_json(spec_doc)
            except Exception as exc:
                self._corrupt_miss(key, f"spec does not parse: {exc}")
                return None
            arrays: dict[str, np.ndarray] | None = None
            series = self.entry_dir(key) / _SERIES
            # Resolve config outside the load guard: a REPRO_STORE_MMAP
            # typo must raise, not retire a perfectly good entry.
            use_mmap = _mmap_enabled()
            if series.is_file():
                try:
                    if use_mmap:
                        arrays = _load_series_mmap(series)
                    if arrays is not None:
                        # Materialize the mapped pages into process
                        # memory: results are stable snapshots — a later
                        # in-place overwrite of the entry must never
                        # change arrays already handed to a caller.
                        _READ_STATS["mmap_loads"] += 1
                        arrays = {
                            name: np.array(arr) if isinstance(arr, np.memmap)
                            else arr
                            for name, arr in arrays.items()
                        }
                    else:
                        with np.load(series) as npz:
                            arrays = {name: npz[name] for name in npz.files}
                except _CORRUPTION_ERRORS as exc:
                    self._corrupt_miss(key, f"series.npz unreadable: {exc}")
                    return None
            elif doc.get("kind") in ("sim", "penalties"):
                self._corrupt_miss(key, "series.npz missing")
                return None
            else:
                arrays = {}
            # Cached records share these arrays with every later hit:
            # freeze them so a caller's in-place edit can't poison reads
            # other callers see.
            for arr in arrays.values():
                arr.setflags(write=False)
            self._touch(key)
            _READ_STATS["misses"] += 1
            _cache_put(
                ckey,
                {
                    "sig": self._result_sig(key),
                    "spec": spec,
                    "meta": meta,
                    "arrays": arrays,
                },
            )
            sp.annotate(hit=True)
            return RunResult(
                spec=spec, key=key, meta=dict(meta), arrays=dict(arrays)
            )

    def get_trace(self, spec_or_key: RunSpec | str) -> Trace | None:
        """Load a stored trace artifact, or ``None`` on a miss.

        Like :meth:`get_result`, a truncated or partially-deleted trace
        entry is retired with a warning and treated as a miss (the trace
        cache then regenerates and republishes it).
        """
        key = (
            spec_or_key if isinstance(spec_or_key, str) else spec_or_key.key()
        )
        with span("store.get_trace", cat="store", key=key[:12]) as sp:
            root = str(self.root)
            ckey = (root, key, "trace")
            record = _cache_get(ckey)
            if record is not None:
                if record["sig"] == self._trace_sig(key):
                    _READ_STATS["hits"] += 1
                    if self._touch(key):
                        record["sig"] = self._trace_sig(key)
                    sp.annotate(hit=True, cached=True)
                    return record["trace"]
                _READ_CACHE.pop(ckey, None)
            path = self.entry_dir(key) / _TRACE
            if not path.is_file():
                if self.has(key):
                    # meta.json survived but the artifact did not: without
                    # retiring the husk, put_trace would no-op forever.
                    self._corrupt_miss(key, "trace.json.gz missing")
                return None
            try:
                trace = Trace.load(path)
            except _CORRUPTION_ERRORS as exc:
                self._corrupt_miss(key, f"trace.json.gz unreadable: {exc}")
                return None
            self._touch(key)
            _READ_STATS["misses"] += 1
            _cache_put(ckey, {"sig": self._trace_sig(key), "trace": trace})
            sp.annotate(hit=True)
            return trace

    def remove(self, key: str) -> bool:
        """Delete one entry; returns whether anything was removed."""
        _evict_read_cache(str(self.root), key)
        entry = self.entry_dir(key)
        if not entry.exists():
            return False
        shutil.rmtree(entry, ignore_errors=True)
        return True

    def iter_results(self, kind: str | None = None) -> Iterator[tuple[str, dict]]:
        """Stream ``(key, meta document)`` for every published entry.

        The streaming complement of :meth:`get_result`: nothing but the
        small ``meta.json`` is read — no series array is ever loaded —
        so iterating a million-run store costs a directory walk plus
        one small JSON parse per entry.  This is what warehouse ingest
        and ``repro cache ls`` scan.

        Corrupt entries (unparsable ``meta.json``, meta lacking its
        spec, a spec that no longer parses) are warn-skipped and
        retired exactly like :meth:`get_result` does, so one
        hard-killed writer cannot wedge every listing.  The yielded
        document is the stored ``meta.json`` plus ``nbytes`` and
        ``mtime`` bookkeeping fields.
        """
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                key = entry.name
                try:
                    self.entry_dir(key)
                except ValueError:
                    warnings.warn(
                        f"skipping malformed store entry name {key!r}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                doc = self.load_meta(key)
                if doc is None:
                    if (entry / _META).is_file():
                        self._corrupt_miss(key, "unparsable meta.json")
                    continue
                spec_doc, meta = doc.get("spec"), doc.get("meta")
                if not isinstance(spec_doc, dict) or not isinstance(meta, dict):
                    self._corrupt_miss(key, "meta.json lacks spec/meta")
                    continue
                try:
                    RunSpec.from_json(spec_doc)
                except Exception as exc:
                    self._corrupt_miss(key, f"spec does not parse: {exc}")
                    continue
                if kind is not None and doc.get("kind") != kind:
                    continue
                doc["nbytes"] = sum(
                    f.stat().st_size for f in entry.iterdir() if f.is_file()
                )
                doc["mtime"] = (entry / _META).stat().st_mtime
                yield key, doc

    # -- maintenance -------------------------------------------------------
    def entries(self) -> Iterator[dict]:
        """All published ``meta.json`` documents (stable key order)."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                doc = self.load_meta(entry.name)
                if doc is not None:
                    doc["nbytes"] = sum(
                        f.stat().st_size for f in entry.iterdir() if f.is_file()
                    )
                    doc["mtime"] = (entry / _META).stat().st_mtime
                    yield doc

    def clear(self, kind: str | None = None) -> int:
        """Remove entries (all, or one ``kind``); returns the count removed."""
        removed = 0
        for doc in list(self.entries()):
            if kind is not None and doc.get("kind") != kind:
                continue
            _evict_read_cache(str(self.root), doc["key"])
            shutil.rmtree(self.entry_dir(doc["key"]), ignore_errors=True)
            removed += 1
        shutil.rmtree(self._tmp, ignore_errors=True)
        return removed

    def gc(
        self,
        max_bytes: int | None = None,
        older_than_seconds: float | None = None,
        now: float | None = None,
    ) -> tuple[int, int]:
        """Evict entries by age and size budget; returns ``(count, bytes)``.

        Two policies, applied in order:

        * ``older_than_seconds`` — drop every entry whose mtime is older
          than the cutoff, regardless of the size budget;
        * ``max_bytes`` — while the store exceeds the budget, evict the
          least-recently-used entries (mtime order; reads refresh mtime,
          so warm-store hits keep their entries alive).

        Entries are content-addressed, so eviction is always safe: a
        future sweep that needs an evicted artifact recomputes it.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if older_than_seconds is not None and older_than_seconds < 0:
            raise ValueError("older_than_seconds must be >= 0")
        docs = sorted(self.entries(), key=lambda d: d["mtime"])  # LRU first
        now = time.time() if now is None else now
        removed, freed = 0, 0
        if older_than_seconds is not None:
            cutoff = now - older_than_seconds
            expired = [d for d in docs if d["mtime"] < cutoff]
            docs = [d for d in docs if d["mtime"] >= cutoff]
            for doc in expired:
                if self.remove(doc["key"]):
                    removed += 1
                    freed += doc["nbytes"]
        if max_bytes is not None:
            total = sum(d["nbytes"] for d in docs)
            for doc in docs:
                if total <= max_bytes:
                    break
                if self.remove(doc["key"]):
                    removed += 1
                    freed += doc["nbytes"]
                    total -= doc["nbytes"]
        return removed, freed

    def _verify_entry(self, key: str) -> str | None:
        """The problem with one published entry, or ``None`` if sound."""
        entry = self.entry_dir(key)
        doc = self.load_meta(key)
        if doc is None:
            return (
                "unparsable meta.json"
                if (entry / _META).is_file()
                else "missing meta.json"
            )
        if doc.get("key") != key:
            return f"meta.json key mismatch ({str(doc.get('key'))[:12]})"
        if not isinstance(doc.get("spec"), dict) or not isinstance(
            doc.get("meta"), dict
        ):
            return "meta.json lacks spec/meta"
        try:
            RunSpec.from_json(doc["spec"])
        except Exception as exc:
            return f"spec does not parse: {exc}"
        if doc.get("kind") == "trace":
            path = entry / _TRACE
            if not path.is_file():
                return "trace.json.gz missing"
            try:
                with gzip.open(path, "rb") as fh:
                    while fh.read(1 << 20):
                        pass
            except _CORRUPTION_ERRORS as exc:
                return f"trace.json.gz unreadable: {exc}"
            return None
        path = entry / _SERIES
        if not path.is_file():
            return "series.npz missing"
        try:
            with np.load(path) as npz:
                for name in npz.files:
                    npz[name]
        except _CORRUPTION_ERRORS as exc:
            return f"series.npz unreadable: {exc}"
        return None

    def verify(self, remove: bool = False) -> list[dict]:
        """Scan every entry for corruption; optionally retire the damage.

        Hard-killed workers leave three kinds of debris behind: staged
        entries stranded in ``tmp/``, truncated artifacts, and entries a
        partial delete left without their ``meta.json`` or payload.  Each
        problem is reported as ``{"key", "path", "problem", "removed"}``;
        with ``remove`` the offending entry (or stray staging directory)
        is deleted — always safe, since a content-addressed entry is
        recomputed on the next request.
        """
        problems: list[dict] = []

        def _report(key: str | None, path: Path, problem: str) -> None:
            removed = False
            if remove:
                if path.is_dir():
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    path.unlink(missing_ok=True)
                removed = True
            problems.append(
                {
                    "key": key,
                    "path": str(path),
                    "problem": problem,
                    "removed": removed,
                }
            )

        if self._objects.is_dir():
            for shard in sorted(self._objects.iterdir()):
                if not shard.is_dir():
                    continue
                for entry in sorted(shard.iterdir()):
                    try:
                        problem = self._verify_entry(entry.name)
                    except ValueError:
                        problem = "malformed store key"
                    if problem is not None:
                        _report(entry.name, entry, problem)
        if self._tmp.is_dir():
            for stray in sorted(self._tmp.iterdir()):
                _report(None, stray, "stranded staging entry")
        return problems
