"""The experiment engine: dependency-aware runs over a content store.

The paper's evaluation is a sweep — applications x partitioners x
machines, re-run per figure and ablation — and the 3-D workloads made it
strictly bigger.  This subsystem turns every such computation into a
declarative job:

* :mod:`repro.engine.spec` — the :class:`RunSpec`/:class:`RunResult` job
  model with a stable content hash and explicit input edges
  (``RunSpec.inputs``);
* :mod:`repro.engine.graph` — the spec dependency graph: submitted jobs
  plus their implicit trace inputs, deduplicated, resolved against the
  store and layered topologically (:func:`build_plan`);
* :mod:`repro.engine.store` — the content-addressed artifact store
  (``REPRO_CACHE_DIR``, default ``~/.cache/repro``) with LRU eviction
  (:meth:`ResultStore.gc`);
* :mod:`repro.engine.executor` — the DAG executor front-end: resolves
  plans and hands them to an execution backend, then loads results back
  from the store;
* :mod:`repro.engine.backends` — the pluggable execution backends
  (registry kind ``"backend"``): ``serial`` (in-process), ``process``
  (trace-aware shards over a local pool) and ``cluster`` (a
  shared-filesystem job broker over ``repro worker`` daemons, with
  lease heartbeats, crash requeue and a retry cap);
* :mod:`repro.engine.components` — the built-in components, registered
  with the unified :mod:`repro.registry` (``create`` / ``registry`` /
  ``describe`` are re-exported here);
* :mod:`repro.engine.cli` — the ``python -m repro`` command line
  (``run`` / ``sweep`` / ``plan`` / ``graph`` / ``report`` /
  ``describe`` / ``cache``).

This package is the engine's **versioned public API**: everything in
``__all__`` follows the deprecation policy (one release of
``DeprecationWarning`` before removal — currently the PR-2 helpers
``make_partitioner`` / ``make_schedule`` / ``make_machine``), and
:data:`ENGINE_API_VERSION` bumps its major component on breaking
changes.  :data:`ENGINE_SCHEMA_VERSION` (part of every content hash) is
orthogonal: it only moves when stored-result *semantics* change, so an
API redesign that keeps hashes stable keeps every warm store warm.

Import discipline: :mod:`repro.experiments` imports this package at
module scope, so engine modules only import the experiment layer lazily
inside functions.
"""

from .executor import execute, plan_specs, run_spec, run_specs, shard_specs
from .backends import (
    ClusterBackend,
    ClusterJobError,
    ExecutionBackend,
    JobQueue,
    ProcessBackend,
    SerialBackend,
    Worker,
    resolve_backend,
)
from .graph import MissingInputError, Plan, SpecNode, build_plan, toposort_layers
from .components import (
    STATIC_SUITE,
    create,
    describe,
    is_schedule,
    load_plugins,
    make_machine,
    make_partitioner,
    make_schedule,
    register,
    registry,
    resolve_machine,
    validate_partitioner,
)
from .spec import (
    ENGINE_SCHEMA_VERSION,
    RunResult,
    RunSpec,
    penalties_spec,
    sim_spec,
    trace_spec,
)
from .store import (
    DEFAULT_CACHE_DIR,
    ResultStore,
    clear_read_cache,
    default_store,
    read_cache_stats,
)

#: Version of this public surface (semver; major bumps are breaking).
#: 1.1: execution backends (serial/process/cluster), ``run_specs``
#: ``backend``/``workers``/``verbose`` parameters, ``repro worker``.
#: 1.3: ``ResultStore.iter_results`` streaming listing; the
#: :mod:`repro.warehouse` columnar subsystem (``repro warehouse``,
#: ``repro report --from-warehouse``, registry kind
#: ``warehouse-format``).
#: 1.4: the zero-copy store read plane — memory-mapped series loads
#: (``REPRO_STORE_MMAP``), the per-process read cache
#: (``REPRO_STORE_CACHE``, ``read_cache_stats``/``clear_read_cache``)
#: — and the pair-kernel reuse layer (``REPRO_PAIR_REUSE``).
ENGINE_API_VERSION = "1.4"

__all__ = [
    # versions
    "ENGINE_API_VERSION",
    "ENGINE_SCHEMA_VERSION",
    # job model
    "RunSpec",
    "RunResult",
    "trace_spec",
    "sim_spec",
    "penalties_spec",
    # store
    "ResultStore",
    "default_store",
    "DEFAULT_CACHE_DIR",
    "read_cache_stats",
    "clear_read_cache",
    # spec graph
    "Plan",
    "SpecNode",
    "build_plan",
    "toposort_layers",
    "MissingInputError",
    # execution
    "execute",
    "run_spec",
    "run_specs",
    "plan_specs",
    "shard_specs",
    # execution backends
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "ClusterBackend",
    "ClusterJobError",
    "JobQueue",
    "Worker",
    "resolve_backend",
    # component registry
    "create",
    "describe",
    "register",
    "registry",
    "load_plugins",
    "resolve_machine",
    "is_schedule",
    "validate_partitioner",
    "STATIC_SUITE",
    # live name tuples (module __getattr__)
    "PARTITIONER_NAMES",
    "SCHEDULE_NAMES",
    "MACHINE_NAMES",
    "BACKEND_NAMES",
    # deprecated shims (DeprecationWarning; removal after one release)
    "make_partitioner",
    "make_schedule",
    "make_machine",
]


_NAME_TUPLE_KINDS = {
    "PARTITIONER_NAMES": "partitioner",
    "SCHEDULE_NAMES": "schedule",
    "MACHINE_NAMES": "machine",
    "BACKEND_NAMES": "backend",
}


def __getattr__(name: str):
    # Live views: stay current as components register at runtime.
    if name in _NAME_TUPLE_KINDS:
        return tuple(registry(_NAME_TUPLE_KINDS[name]))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
