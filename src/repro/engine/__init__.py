"""The experiment engine: sharded runs over a content-addressed store.

The paper's evaluation is a sweep — applications x partitioners x
machines, re-run per figure and ablation — and the 3-D workloads made it
strictly bigger.  This subsystem turns every such computation into a
declarative job:

* :mod:`repro.engine.spec` — the :class:`RunSpec`/:class:`RunResult` job
  model with a stable content hash;
* :mod:`repro.engine.store` — the content-addressed artifact store
  (``REPRO_CACHE_DIR``, default ``~/.cache/repro``): traces and simulator
  runs are computed once and reused across figures, benchmarks and CLI
  invocations;
* :mod:`repro.engine.executor` — the sharded, resumable executor
  (process pool with trace-aware chunking; serial fallback);
* :mod:`repro.engine.registry` — partitioner/schedule/machine name
  registries shared with the experiment layer;
* :mod:`repro.engine.cli` — the ``python -m repro`` command line
  (``run`` / ``sweep`` / ``report`` / ``cache``).

Import discipline: :mod:`repro.experiments` imports this package at
module scope, so engine modules only import the experiment layer lazily
inside functions.
"""

from .executor import execute, plan_specs, run_spec, run_specs, shard_specs
from .registry import (
    MACHINE_NAMES,
    PARTITIONER_NAMES,
    SCHEDULE_NAMES,
    STATIC_SUITE,
    make_machine,
    make_partitioner,
    make_schedule,
)
from .spec import (
    ENGINE_SCHEMA_VERSION,
    RunResult,
    RunSpec,
    penalties_spec,
    sim_spec,
    trace_spec,
)
from .store import DEFAULT_CACHE_DIR, ResultStore, default_store

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "RunSpec",
    "RunResult",
    "trace_spec",
    "sim_spec",
    "penalties_spec",
    "ResultStore",
    "default_store",
    "DEFAULT_CACHE_DIR",
    "execute",
    "run_spec",
    "run_specs",
    "plan_specs",
    "shard_specs",
    "MACHINE_NAMES",
    "PARTITIONER_NAMES",
    "SCHEDULE_NAMES",
    "STATIC_SUITE",
    "make_machine",
    "make_partitioner",
    "make_schedule",
]
