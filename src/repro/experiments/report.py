"""Terminal rendering of the reproduced figures and tables.

The paper's evaluation is read visually ("this was most easily examined
visually", section 5.1.4); this module renders each regenerated figure as
an ASCII chart so the comparison can be made in a terminal or a text log,
and assembles the full reproduction report that EXPERIMENTS.md records.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ascii_chart",
    "render_figure_app",
    "render_figure1",
    "render_group_stats",
    "render_regret",
]


def ascii_chart(
    series: dict[str, np.ndarray],
    height: int = 12,
    markers: str = "*o+x",
    ymin: float | None = None,
    ymax: float | None = None,
) -> str:
    """Render one or more aligned series as an ASCII chart.

    Parameters
    ----------
    series :
        Label -> 1-d array; all arrays must share a length.  The first
        series uses the first marker, and so on; collisions show the
        later marker.
    height :
        Chart body height in rows.
    ymin, ymax :
        Axis range; defaults to the data range padded by 5 %.
    """
    if not series:
        raise ValueError("need at least one series")
    arrays = [np.asarray(v, dtype=np.float64) for v in series.values()]
    n = arrays[0].size
    if any(a.size != n for a in arrays):
        raise ValueError("all series must have equal length")
    if n == 0:
        raise ValueError("series must be non-empty")
    if height < 2:
        raise ValueError("height must be >= 2")
    lo = min(a.min() for a in arrays) if ymin is None else ymin
    hi = max(a.max() for a in arrays) if ymax is None else ymax
    if hi <= lo:
        hi = lo + 1.0
    pad = 0.05 * (hi - lo)
    if ymin is None:
        lo -= pad
    if ymax is None:
        hi += pad
    grid = [[" "] * n for _ in range(height)]
    for (label, _), marker, arr in zip(series.items(), markers, arrays):
        rows = ((hi - arr) / (hi - lo) * (height - 1)).round().astype(int)
        rows = np.clip(rows, 0, height - 1)
        for col, row in enumerate(rows):
            grid[row][col] = marker
    lines = []
    for r, row in enumerate(grid):
        yval = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{yval:8.3f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * n)
    legend = "   ".join(
        f"{m} {label}" for (label, _), m in zip(series.items(), markers)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def render_figure_app(fig: dict, figure_number: int | None = None) -> str:
    """Render a :func:`~repro.experiments.figure_app` result as two panels."""
    title = f"Figure {figure_number} — " if figure_number else ""
    title += f"{fig['trace'].upper()} (P={fig['nprocs']})"
    left = ascii_chart(
        {
            "measured relative comm": fig["actual_relative_comm"],
            "beta_C": fig["beta_c"],
        },
        ymin=0.0,
    )
    right = ascii_chart(
        {
            "measured relative migration": fig["actual_relative_migration"],
            "beta_m": fig["beta_m"],
        },
        ymin=0.0,
    )
    stats = (
        f"corr(beta_m, migration) = {fig['migration_correlation']:+.3f}   "
        f"corr(beta_C, comm) = {fig['comm_correlation']:+.3f}   "
        f"envelope = {fig['comm_envelope_fraction']:.2f}   "
        f"amplitude ratio = {fig['migration_amplitude_ratio']:.2f}"
    )
    return "\n".join(
        [
            title,
            "",
            "Communication vs beta_C:",
            left,
            "",
            "Data migration vs beta_m:",
            right,
            "",
            stats,
        ]
    )


def render_figure1(fig: dict) -> str:
    """Render the Figure-1 series (BL2D dynamic behaviour)."""
    imb = ascii_chart(
        {"load imbalance [%]": fig["load_imbalance_percent"]}, ymin=0.0
    )
    comm = ascii_chart({"relative comm": fig["relative_comm"]}, ymin=0.0)
    return "\n".join(
        [
            f"Figure 1 — {fig['trace'].upper()} under a static P "
            f"(P={fig['nprocs']})",
            "",
            imb,
            "",
            comm,
        ]
    )


def render_group_stats(
    stats: dict[tuple, dict[str, dict]],
    by: list[str] | tuple[str, ...],
    values: list[str] | tuple[str, ...],
) -> str:
    """Render a :func:`repro.warehouse.group_stats` result as a table.

    One row per (group, value column): the group-by columns, the value
    column name, then count/mean/std/min/max.  This is the terminal
    surface of ``repro warehouse query --group-by ... --stats ...``.
    """
    if not stats:
        return "no rows matched"
    rows = []
    for group, per_value in stats.items():
        for name in values:
            entry = per_value.get(name)
            if entry is None:
                continue
            rows.append((tuple(str(v) for v in group), name, entry))
    widths = [
        max(len(col), max(len(row[0][i]) for row in rows))
        for i, col in enumerate(by)
    ]
    vwidth = max(len("value"), max(len(row[1]) for row in rows))
    header = " ".join(
        f"{col:<{w}}" for col, w in zip(by, widths)
    ) + (
        f" {'value':<{vwidth}} {'count':>8} {'mean':>12} {'std':>12} "
        f"{'min':>12} {'max':>12}"
    )
    lines = [header, "-" * len(header)]
    for group, name, entry in rows:
        prefix = " ".join(f"{v:<{w}}" for v, w in zip(group, widths))
        lines.append(
            f"{prefix} {name:<{vwidth}} {entry['count']:>8} "
            f"{entry['mean']:>12.6g} {entry['std']:>12.6g} "
            f"{entry['min']:>12.6g} {entry['max']:>12.6g}"
        )
    return "\n".join(lines)


def render_regret(worst: dict[str, float]) -> str:
    """Render the worst-case-regret summary as a sorted bar list."""
    lines = ["worst-case regret across (application, machine) pairs:"]
    peak = max(worst.values()) if worst else 1.0
    for label, regret in sorted(worst.items(), key=lambda kv: kv[1]):
        bar = "#" * max(1, int(40 * regret / max(peak, 1e-12)))
        lines.append(f"  {label:<22} {regret:+7.3f} {bar}")
    return "\n".join(lines)
