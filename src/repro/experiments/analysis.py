"""Time-series analysis utilities for the validation experiments.

The paper's evaluation is visual ("No numerical results, e.g., in terms of
error norms, were derived", section 5.1.4); to make the reproduction
checkable we quantify the claims of section 5.2 with standard statistics:

* *trend agreement* — Pearson correlation between a penalty series and the
  measured series;
* *oscillation period* — dominant autocorrelation lag, to verify "the
  model captures the time period of the oscillation" for BL2D/SC2D;
* *peak lead* — the cross-correlation lag, to verify "beta_m peaks one
  time-step before the relative data migration occasionally";
* *envelope fraction* — how often ``beta_C`` sits above the measured
  communication ("beta_C reflects a worst-case scenario").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pearson",
    "dominant_period",
    "best_lag",
    "envelope_fraction",
    "amplitude_ratio",
    "series_stats",
]


def series_stats(series: np.ndarray) -> dict[str, float]:
    """Scalar summary of one stored engine series (CLI/report tables).

    Returns mean/std/min/max plus the oscillation period of
    :func:`dominant_period` (``None`` for non-oscillatory series), so a
    ``repro run --series`` row answers the questions the paper's visual
    reading asks of each curve.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        raise ValueError("series must be non-empty")
    return {
        "mean": float(series.mean()),
        "std": float(series.std()),
        "min": float(series.min()),
        "max": float(series.max()),
        "period": dominant_period(series),
    }


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation; 0.0 when either series is constant."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("series must have equal length")
    if a.size < 2:
        raise ValueError("need at least 2 samples")
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def _autocorr(series: np.ndarray) -> np.ndarray:
    x = np.asarray(series, dtype=np.float64)
    x = x - x.mean()
    n = x.size
    var = float((x * x).sum())
    if var == 0:
        return np.zeros(n)
    full = np.correlate(x, x, mode="full")[n - 1 :]
    return full / var


def dominant_period(series: np.ndarray, min_lag: int = 2) -> int | None:
    """Dominant oscillation period: first local max of the autocorrelation.

    Returns ``None`` when no local maximum exists past ``min_lag`` (non-
    oscillatory series).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.size < 2 * min_lag + 2:
        return None
    ac = _autocorr(series)
    # Local maxima past min_lag.
    interior = ac[1:-1]
    peaks = np.flatnonzero(
        (interior > ac[:-2]) & (interior >= ac[2:])
    ) + 1
    peaks = peaks[peaks >= min_lag]
    if peaks.size == 0:
        return None
    best = peaks[np.argmax(ac[peaks])]
    if ac[best] <= 0:
        return None
    return int(best)


def best_lag(model: np.ndarray, measured: np.ndarray, max_lag: int = 3) -> int:
    """Lag maximizing ``corr(model[t], measured[t + lag])``.

    Positive lag means the model *leads* the measurement (the paper notes
    ``beta_m`` "peaks one time-step before the relative data migration
    occasionally").
    """
    model = np.asarray(model, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if model.shape != measured.shape:
        raise ValueError("series must have equal length")
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    best = 0
    best_corr = -np.inf
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            a, b = model[: model.size - lag or None], measured[lag:]
        else:
            a, b = model[-lag:], measured[: measured.size + lag]
        if a.size < 3 or a.std() == 0 or b.std() == 0:
            continue
        c = float(np.corrcoef(a, b)[0, 1])
        if c > best_corr:
            best_corr = c
            best = lag
    return best


def envelope_fraction(upper: np.ndarray, lower: np.ndarray) -> float:
    """Fraction of steps where ``upper >= lower`` (worst-case check)."""
    upper = np.asarray(upper, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    if upper.shape != lower.shape:
        raise ValueError("series must have equal length")
    if upper.size == 0:
        raise ValueError("series must be non-empty")
    return float((upper >= lower).mean())


def amplitude_ratio(model: np.ndarray, measured: np.ndarray) -> float:
    """Std-dev ratio model/measured (the "cautious amplitude" check).

    Returns ``inf`` when the measured series is constant.
    """
    model = np.asarray(model, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    denom = measured.std()
    if denom == 0:
        return float("inf")
    return float(model.std() / denom)
