"""Canonical experiment workloads: the paper's four traces, cached.

All experiments run off the same deterministic traces (seeded kernels, see
:mod:`repro.apps`).  Two scales are provided:

* ``"paper"`` — the paper's setup: 32x32 base grid, 5 levels of factor-2
  refinement, 100 coarse steps, regrid every 4 (section 5.1.1);
* ``"small"`` — a fast variant for unit tests and CI benchmarks.

Traces are cached in memory per process, and optionally on disk.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from ..apps import TraceGenConfig, generate_trace, make_application
from ..trace import Trace

__all__ = ["APP_NAMES", "paper_config", "paper_trace", "all_paper_traces"]

APP_NAMES: tuple[str, ...] = ("rm2d", "bl2d", "sc2d", "tp2d")
"""The paper's application suite, in Figures 4-7 order."""


def paper_config(scale: str = "paper") -> TraceGenConfig:
    """Trace-generation parameters at the requested scale."""
    if scale == "paper":
        return TraceGenConfig(
            base_shape=(64, 64),
            max_levels=5,
            nsteps=100,
            regrid_interval=4,
        )
    if scale == "small":
        return TraceGenConfig(
            base_shape=(16, 16),
            max_levels=3,
            nsteps=20,
            regrid_interval=4,
        )
    raise ValueError(f"scale must be 'paper' or 'small', got {scale!r}")


def _shadow_shape(scale: str) -> tuple[int, int]:
    return (256, 256) if scale == "paper" else (64, 64)


@lru_cache(maxsize=None)
def paper_trace(name: str, scale: str = "paper") -> Trace:
    """The deterministic trace of one application at one scale."""
    if name not in APP_NAMES:
        raise ValueError(f"unknown application {name!r}; choose from {APP_NAMES}")
    app = make_application(name, shape=_shadow_shape(scale))
    return generate_trace(app, paper_config(scale))


def all_paper_traces(scale: str = "paper") -> dict[str, Trace]:
    """All four traces keyed by name."""
    return {name: paper_trace(name, scale) for name in APP_NAMES}


def save_traces(directory: str | Path, scale: str = "paper") -> list[Path]:
    """Persist all traces as gzipped JSON under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = []
    for name in APP_NAMES:
        path = directory / f"{name}_{scale}.json.gz"
        paper_trace(name, scale).save(path)
        out.append(path)
    return out
