"""Canonical experiment workloads: the paper's four traces plus 3-D, cached.

All experiments run off the same deterministic traces (seeded kernels, see
:mod:`repro.apps`).  Two scales are provided:

* ``"paper"`` — the paper's setup: 5 levels of factor-2 refinement, 100
  coarse steps, regrid every 4 (section 5.1.1); the 3-D workload uses a
  smaller base grid and one fewer level so paper-scale rasters stay in
  the tens of megabytes;
* ``"small"`` — a fast variant for unit tests and CI benchmarks.

Traces are cached in memory per process, and optionally on disk.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from ..apps import APPLICATIONS, TraceGenConfig, generate_trace, make_application
from ..trace import Trace

__all__ = [
    "APP_NAMES",
    "APP_NAMES_3D",
    "ALL_APP_NAMES",
    "paper_config",
    "paper_trace",
    "all_paper_traces",
    "workload_ndim",
]

APP_NAMES: tuple[str, ...] = ("rm2d", "bl2d", "sc2d", "tp2d")
"""The paper's 2-D application suite, in Figures 4-7 order."""

APP_NAMES_3D: tuple[str, ...] = tuple(
    sorted(name for name, cls in APPLICATIONS.items() if cls.ndim == 3)
)
"""The 3-D workloads (derived from the kernel registry)."""

ALL_APP_NAMES: tuple[str, ...] = APP_NAMES + APP_NAMES_3D
"""Every registered workload."""


def _check_scale(scale: str) -> None:
    if scale not in ("paper", "small"):
        raise ValueError(f"scale must be 'paper' or 'small', got {scale!r}")


def paper_config(scale: str = "paper", ndim: int = 2) -> TraceGenConfig:
    """Trace-generation parameters at the requested scale and dimension."""
    _check_scale(scale)
    if ndim == 2:
        if scale == "paper":
            return TraceGenConfig(
                base_shape=(64, 64),
                max_levels=5,
                nsteps=100,
                regrid_interval=4,
            )
        return TraceGenConfig(
            base_shape=(16, 16),
            max_levels=3,
            nsteps=20,
            regrid_interval=4,
        )
    if ndim == 3:
        if scale == "paper":
            return TraceGenConfig(
                base_shape=(16, 16, 16),
                max_levels=4,
                nsteps=40,
                regrid_interval=4,
            )
        return TraceGenConfig(
            base_shape=(8, 8, 8),
            max_levels=3,
            nsteps=12,
            regrid_interval=4,
        )
    raise ValueError(f"no canonical workload config for ndim={ndim}")


def _shadow_shape(scale: str, ndim: int) -> tuple[int, ...]:
    if ndim == 2:
        return (256, 256) if scale == "paper" else (64, 64)
    return (64, 64, 64) if scale == "paper" else (32, 32, 32)


def workload_ndim(name: str) -> int:
    """Spatial dimensionality of a registered workload (from its kernel)."""
    try:
        return APPLICATIONS[name].ndim
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {tuple(sorted(APPLICATIONS))}"
        ) from None


@lru_cache(maxsize=None)
def paper_trace(name: str, scale: str = "paper") -> Trace:
    """The deterministic trace of one application at one scale."""
    _check_scale(scale)
    ndim = workload_ndim(name)
    app = make_application(name, shape=_shadow_shape(scale, ndim))
    return generate_trace(app, paper_config(scale, ndim))


def all_paper_traces(scale: str = "paper", ndim: int = 2) -> dict[str, Trace]:
    """All traces of one dimensionality, keyed by name."""
    names = APP_NAMES if ndim == 2 else APP_NAMES_3D
    return {name: paper_trace(name, scale) for name in names}


def save_traces(directory: str | Path, scale: str = "paper") -> list[Path]:
    """Persist all traces as gzipped JSON under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = []
    for name in ALL_APP_NAMES:
        path = directory / f"{name}_{scale}.json.gz"
        paper_trace(name, scale).save(path)
        out.append(path)
    return out
