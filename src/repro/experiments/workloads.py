"""Canonical experiment workloads: the paper's traces plus 3-D, cached.

All experiments run off the same deterministic traces (seeded kernels, see
:mod:`repro.apps`).  Three scales are provided:

* ``"paper"`` — the paper's setup: 5 levels of factor-2 refinement,
  regrid every 4 (section 5.1.1), in 2-D *and* 3-D.  The 3-D variant is
  paper-faithful (16^3 base, 5 levels — a 256^3 finest index space):
  feasible because distributions are sparse owner maps, not dense
  full-domain rasters;
* ``"deep"`` — the 3-D scaling-study workload: 32^3 base, 5 levels of
  factor-2 refinement (a 512^3 finest index space, ~134M fine cells).
  A single dense owner raster of the finest level alone would be half a
  gigabyte; the sparse simulator replays it in ordinary memory;
* ``"ultra"`` — the pair-index stress workload: 64^3 base, 5 levels (a
  1024^3 finest index space, ~1.07B fine cells).  Only tractable on the
  indexed pair kernels — the quadratic candidate products of its
  fragmented distributions are out of reach for the brute-force
  broadcast under CI memory/time limits;
* ``"small"`` — a fast variant for unit tests and CI benchmarks.

Traces are cached twice: in memory per process, and on disk in the
engine's content-addressed store (``REPRO_CACHE_DIR``, default
``~/.cache/repro``), keyed by the full generation config — so figures,
ablations, benchmarks and CLI sweeps regenerate a given trace exactly
once per machine.  :func:`clear_trace_cache` empties both layers.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from ..apps import APPLICATIONS, TraceGenConfig, generate_trace, make_application
from ..registry import register, registry
from ..trace import Trace

__all__ = [
    "APP_NAMES",
    "APP_NAMES_3D",
    "ALL_APP_NAMES",
    "app_names",
    "paper_config",
    "paper_trace",
    "all_paper_traces",
    "clear_trace_cache",
    "shadow_shape",
    "workload_ndim",
]

APP_NAMES: tuple[str, ...] = ("rm2d", "bl2d", "sc2d", "tp2d")
"""The paper's 2-D application suite, in Figures 4-7 order."""


def app_names(ndim: int | None = None) -> tuple[str, ...]:
    """Registered workload names (live; optionally one dimensionality).

    2-D keeps the paper's canonical Figures 4-7 order first, with any
    further registered 2-D kernels (plugins, runtime registrations)
    appended sorted; other dimensionalities are sorted throughout.
    """
    if ndim is None:
        dims = sorted(
            {
                dim
                for cls in APPLICATIONS.values()
                if (dim := getattr(cls, "ndim", None)) is not None
            }
        )
        out: list[str] = []
        for dim in dims:
            out.extend(app_names(dim))
        return tuple(out)
    registered = [
        name
        for name, cls in APPLICATIONS.items()
        if getattr(cls, "ndim", None) == ndim
    ]
    if ndim == 2:
        extras = sorted(name for name in registered if name not in APP_NAMES)
        return APP_NAMES + tuple(extras)
    return tuple(sorted(registered))


APP_NAMES_3D: tuple[str, ...] = app_names(3)
"""The 3-D workloads (snapshot of the kernel registry at import)."""

ALL_APP_NAMES: tuple[str, ...] = APP_NAMES + APP_NAMES_3D
"""Every registered workload (snapshot; ``app_names()`` is live)."""


# -- workload scales (registered components, extensible like the rest) -----

@register(
    "scale",
    "paper",
    description="the paper's setup: 5 levels / 100 steps (3-D: 16^3, 5 levels)",
)
def _paper_scale(ndim: int = 2) -> TraceGenConfig:
    if ndim == 2:
        return TraceGenConfig(
            base_shape=(64, 64),
            max_levels=5,
            nsteps=100,
            regrid_interval=4,
        )
    if ndim == 3:
        # Paper-faithful depth (5 levels of factor-2 refinement).  The
        # historical 4-level cap existed "so paper-scale rasters stay in
        # memory"; sparse owner maps removed that constraint.
        return TraceGenConfig(
            base_shape=(16, 16, 16),
            max_levels=5,
            nsteps=40,
            regrid_interval=4,
        )
    raise ValueError(f"no canonical workload config for ndim={ndim}")


@register(
    "scale",
    "deep",
    description="3-D scaling study: 32^3 base, 5 levels (512^3 finest space)",
)
def _deep_scale(ndim: int = 3) -> TraceGenConfig:
    if ndim != 3:
        raise ValueError(
            f"the 'deep' scale is the 3-D scaling-study workload; "
            f"ndim={ndim} has no deep config"
        )
    return TraceGenConfig(
        base_shape=(32, 32, 32),
        max_levels=5,
        nsteps=40,
        regrid_interval=4,
    )


@register(
    "scale",
    "ultra",
    description="3-D pair-index stress: 64^3 base, 5 levels (1024^3 finest space)",
)
def _ultra_scale(ndim: int = 3) -> TraceGenConfig:
    if ndim != 3:
        raise ValueError(
            f"the 'ultra' scale is the 3-D pair-index stress workload; "
            f"ndim={ndim} has no ultra config"
        )
    return TraceGenConfig(
        base_shape=(64, 64, 64),
        max_levels=5,
        nsteps=20,
        regrid_interval=4,
    )


@register(
    "scale",
    "small",
    description="fast variant for unit tests and CI benchmarks",
)
def _small_scale(ndim: int = 2) -> TraceGenConfig:
    if ndim == 2:
        return TraceGenConfig(
            base_shape=(16, 16),
            max_levels=3,
            nsteps=20,
            regrid_interval=4,
        )
    if ndim == 3:
        return TraceGenConfig(
            base_shape=(8, 8, 8),
            max_levels=3,
            nsteps=12,
            regrid_interval=4,
        )
    raise ValueError(f"no canonical workload config for ndim={ndim}")


def _check_scale(scale: str) -> None:
    scales = registry("scale")
    if scale not in scales:
        raise ValueError(
            f"unknown workload scale {scale!r}; choose from {tuple(scales)}"
        )


def paper_config(scale: str = "paper", ndim: int = 2) -> TraceGenConfig:
    """Trace-generation parameters at the requested scale and dimension."""
    # create() validates the name itself (same message as _check_scale).
    return registry("scale").create(scale, ndim=ndim)


#: Shadow-grid cells per base-grid cell along each axis (default).
SHADOW_FACTOR = 4

#: Per-scale shadow-factor overrides.  ``ultra``'s 64^3 base grid at the
#: default factor would mean 256^3 shadow arrays — the trace generator's
#: kernels keep ~7 such float64 fields alive (~940 MB), blowing the 2 GB
#: CI budget on state that only *drives* refinement flags.  Factor 2
#: (128^3, ~117 MB) preserves plenty of feature resolution.  Existing
#: scales are untouched, so their content hashes are stable (the shadow
#: shape is embedded explicitly in every trace spec payload).
_SHADOW_FACTOR_OVERRIDES = {"ultra": 2}


def shadow_shape(scale: str, ndim: int) -> tuple[int, ...]:
    """Shadow-grid resolution of the canonical workloads.

    Derived from the scale's base grid (``SHADOW_FACTOR`` x per axis,
    minus per-scale overrides) so scales registered through the
    component registry get a consistent kernel resolution instead of
    silently falling back to the built-in small one.  For the built-in
    scales this reproduces the historical values exactly (2-D: 256^2
    paper / 64^2 small; 3-D: 64^3 / 32^3), keeping every content hash
    stable.
    """
    config = paper_config(scale, ndim)
    factor = _SHADOW_FACTOR_OVERRIDES.get(scale, SHADOW_FACTOR)
    return tuple(factor * extent for extent in config.base_shape)


def workload_ndim(name: str) -> int:
    """Spatial dimensionality of a registered workload (from its kernel)."""
    try:
        factory = APPLICATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {tuple(sorted(APPLICATIONS))}"
        ) from None
    ndim = getattr(factory, "ndim", None)
    if ndim is None:
        raise ValueError(
            f"application {name!r}: the registered factory must expose an "
            f"'ndim' attribute (ShadowApplication subclasses do)"
        )
    return int(ndim)


def _generate(name: str, scale: str, seed: int | None) -> Trace:
    ndim = workload_ndim(name)
    kwargs = {"shape": shadow_shape(scale, ndim)}
    if seed is not None:
        from ..engine.spec import _accepts_seed

        if not _accepts_seed(name):
            raise ValueError(
                f"{name!r} has no seed parameter; omit the seed override"
            )
        kwargs["seed"] = seed
    app = make_application(name, **kwargs)
    return generate_trace(app, paper_config(scale, ndim))


@lru_cache(maxsize=None)
def _cached_trace(name: str, scale: str, seed: int | None, root: str) -> Trace:
    # Lazy engine import: repro.engine reaches back into this module at
    # call time, so neither side may import the other at module scope.
    from ..engine.executor import trace_meta
    from ..engine.spec import trace_spec
    from ..engine.store import ResultStore

    store = ResultStore(root)
    spec = trace_spec(name, scale, seed=seed)
    trace = store.get_trace(spec)
    if trace is None:
        trace = _generate(name, scale, seed)
        store.put_trace(spec, trace, trace_meta(trace))
    return trace


def paper_trace(
    name: str,
    scale: str = "paper",
    seed: int | None = None,
    store=None,
) -> Trace:
    """The deterministic trace of one application at one scale.

    Memoized in-process and content-addressed on disk; ``store`` selects
    a specific :class:`~repro.engine.store.ResultStore` (default:
    ``REPRO_CACHE_DIR`` / ``~/.cache/repro``).
    """
    _check_scale(scale)
    workload_ndim(name)  # raises for unknown apps before touching the store
    if store is None:
        from ..engine.store import default_store

        store = default_store()
    return _cached_trace(name, scale, seed, str(store.root))


def clear_trace_cache(store=None, *, memory_only: bool = False) -> int:
    """Drop cached traces; returns the number of disk entries removed.

    Clears the in-process memo always, and the on-disk trace entries of
    ``store`` (default store when omitted) unless ``memory_only`` is set.
    """
    _cached_trace.cache_clear()
    if memory_only:
        return 0
    if store is None:
        from ..engine.store import default_store

        store = default_store()
    return store.clear(kind="trace")


def all_paper_traces(scale: str = "paper", ndim: int = 2) -> dict[str, Trace]:
    """All traces of one dimensionality, keyed by name."""
    names = APP_NAMES if ndim == 2 else APP_NAMES_3D
    return {name: paper_trace(name, scale) for name in names}


def save_traces(directory: str | Path, scale: str = "paper") -> list[Path]:
    """Persist all traces as gzipped JSON under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = []
    for name in ALL_APP_NAMES:
        path = directory / f"{name}_{scale}.json.gz"
        paper_trace(name, scale).save(path)
        out.append(path)
    return out
