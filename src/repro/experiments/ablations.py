"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`ablation_denominator` — section 4.4 argues for ``|H_t|`` as the
  ``beta_m`` denominator over ``|H_{t-1}|``; we measure which variant
  tracks the measured migration best across the suite.
* :func:`meta_vs_static` — the ArMADA-era proof-of-concept claim
  (section 3: "even with such a simple model, execution times were
  reduced") and the paper's conclusion ("tracking and adapting to this
  dynamic behavior lead to potentially large decreases in execution
  times"): modeled execution time of every static partitioner vs. the
  continuous meta-partitioner and the octant baseline.
* :func:`ablation_surface` — the patch-hull vs. region-surface choice
  inside the ``beta_C`` reconstruction.

Every simulator replay and penalty sweep is submitted through
:mod:`repro.engine`, so ablations share stored results with the figures
and benchmarks (the Nature+Fable replay of Figure 5 *is* the
``cluster-2003`` baseline row of :func:`meta_vs_static`), and
``meta_vs_static`` — the paper-scale 4 apps x 3 machines x 7 schedules
grid — can shard its 84 replays across worker processes via ``n_jobs``.
"""

from __future__ import annotations

import numpy as np

from ..engine import (
    STATIC_SUITE,
    create,
    penalties_spec,
    registry,
    run_spec,
    run_specs,
    sim_spec,
)
from ..model import communication_penalty
from ..simulator import MachineModel
from .analysis import pearson
from .figures import DEFAULT_NPROCS
from .workloads import APP_NAMES, paper_trace

__all__ = [
    "ablation_denominator",
    "ablation_surface",
    "machine_scenarios",
    "meta_vs_static",
    "regret_summary",
    "static_partitioner_suite",
]

#: Dynamic schedules included in the meta-vs-static comparison.
_DYNAMIC = ("armada-octant", "meta-partitioner")


def ablation_denominator(
    nprocs: int = DEFAULT_NPROCS, scale: str = "paper", store=None
) -> dict[str, dict[str, float]]:
    """Correlation of each ``beta_m`` denominator variant with reality."""
    out: dict[str, dict[str, float]] = {}
    for name in APP_NAMES:
        actual = run_spec(
            sim_spec(name, scale, nprocs=nprocs), store=store
        ).arrays["relative_migration"][1:]
        row: dict[str, float] = {}
        for denom in ("current", "previous", "max"):
            model = run_spec(
                penalties_spec(
                    name, scale, nprocs=nprocs, migration_denominator=denom
                ),
                store=store,
            )
            row[denom] = pearson(model.arrays["beta_m"][1:], actual)
        out[name] = row
    return out


def ablation_surface(
    nprocs: int = DEFAULT_NPROCS, scale: str = "paper", store=None
) -> dict[str, dict[str, float]]:
    """``beta_C`` surface convention: mean value and envelope behaviour."""
    out: dict[str, dict[str, float]] = {}
    for name in APP_NAMES:
        actual = run_spec(
            sim_spec(name, scale, nprocs=nprocs), store=store
        ).arrays["relative_comm"]
        trace = paper_trace(name, scale, store=store)
        row: dict[str, float] = {"mean_actual": float(actual.mean())}
        for surface in ("patch", "region"):
            series = np.array(
                [
                    communication_penalty(
                        s.hierarchy, nprocs=nprocs, surface=surface
                    )
                    for s in trace
                ]
            )
            row[f"mean_{surface}"] = float(series.mean())
            row[f"envelope_{surface}"] = float((series >= actual).mean())
        out[name] = row
    return out


def static_partitioner_suite() -> dict[str, object]:
    """The static P choices compared against the meta-partitioner."""
    return {name: create("partitioner", name) for name in STATIC_SUITE}


def machine_scenarios() -> dict[str, MachineModel]:
    """The three system states the dynamic-PAC experiment sweeps.

    The C component of the PAC-triple: the same application needs a
    different partitioner on a network-starved cluster than on a
    compute-bound one — which is exactly why a static P "seriously
    inhibits the potential for increasing scalability" (section 3).
    """
    return {name: create("machine", name) for name in registry("machine")}


def meta_vs_static(
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
    machines: dict[str, MachineModel] | None = None,
    n_jobs: int = 1,
    store=None,
    backend=None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Modeled execution time: every static P vs. dynamic PAC schedules.

    For each (application, machine) pair, runs every static partitioner,
    the ArMADA octant baseline and the continuous meta-partitioner, and
    records each schedule's *regret* — modeled seconds over the best
    static choice for that pair, as a fraction.  The paper's claim
    ("tracking and adapting ... lead to potentially large decreases in
    execution times") is quantified as: the meta-partitioner's worst-case
    regret across machines is small, while every fixed static choice has a
    large worst-case regret on some machine.

    The full grid is submitted to the engine in one batch: ``n_jobs``
    shards it across worker processes (or ``backend`` selects any
    registered execution backend, e.g. ``"cluster"`` to drain the grid
    through externally started ``repro worker`` daemons), and stored
    replays are reused.
    """
    if machines is None:
        machines = machine_scenarios()
    schedules = tuple(STATIC_SUITE) + _DYNAMIC
    specs = [
        sim_spec(
            name, scale, nprocs=nprocs, partitioner=label, machine=machine
        )
        for name in APP_NAMES
        for machine in machines.values()
        for label in schedules
    ]
    results = iter(
        run_specs(specs, n_jobs=n_jobs, store=store, backend=backend)
    )
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name in APP_NAMES:
        per_machine: dict[str, dict[str, float]] = {}
        for mlabel in machines:
            row: dict[str, float] = {
                label: next(results).meta["total_execution_seconds"]
                for label in schedules
            }
            best_static = min(
                v for k, v in row.items() if k not in _DYNAMIC
            )
            row["meta_regret"] = (
                row["meta-partitioner"] - best_static
            ) / best_static
            per_machine[mlabel] = row
        out[name] = per_machine
    return out


def regret_summary(
    table: dict[str, dict[str, dict[str, float]]]
) -> dict[str, float]:
    """Worst-case regret of every schedule across all (app, machine) pairs.

    The minimax view of :func:`meta_vs_static`: for each schedule (static
    or dynamic), its largest fractional excess over the per-pair best
    static choice.  A successful meta-partitioner has a far smaller value
    than any static schedule.
    """
    schedules: dict[str, float] = {}
    for per_machine in table.values():
        for row in per_machine.values():
            best_static = min(
                v
                for k, v in row.items()
                if k not in ("armada-octant", "meta-partitioner", "meta_regret")
            )
            for label, seconds in row.items():
                if label == "meta_regret":
                    continue
                regret = (seconds - best_static) / best_static
                schedules[label] = max(schedules.get(label, 0.0), regret)
    return schedules
