"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`ablation_denominator` — section 4.4 argues for ``|H_t|`` as the
  ``beta_m`` denominator over ``|H_{t-1}|``; we measure which variant
  tracks the measured migration best across the suite.
* :func:`meta_vs_static` — the ArMADA-era proof-of-concept claim
  (section 3: "even with such a simple model, execution times were
  reduced") and the paper's conclusion ("tracking and adapting to this
  dynamic behavior lead to potentially large decreases in execution
  times"): modeled execution time of every static partitioner vs. the
  continuous meta-partitioner and the octant baseline.
* :func:`ablation_surface` — the patch-hull vs. region-surface choice
  inside the ``beta_C`` reconstruction.
"""

from __future__ import annotations

import numpy as np

from ..meta import ArmadaClassifier, MetaScheduler
from ..model import StateSampler, communication_penalty
from ..partition import (
    DomainSfcPartitioner,
    NatureFableParams,
    NaturePlusFable,
    PatchBasedPartitioner,
    StickyRepartitioner,
)
from ..simulator import MachineModel, TraceSimulator
from .analysis import pearson
from .figures import DEFAULT_NPROCS, _static_partitioner
from .workloads import APP_NAMES, paper_trace

__all__ = [
    "ablation_denominator",
    "ablation_surface",
    "machine_scenarios",
    "meta_vs_static",
    "regret_summary",
    "static_partitioner_suite",
]


def ablation_denominator(
    nprocs: int = DEFAULT_NPROCS, scale: str = "paper"
) -> dict[str, dict[str, float]]:
    """Correlation of each ``beta_m`` denominator variant with reality."""
    out: dict[str, dict[str, float]] = {}
    sim = TraceSimulator()
    for name in APP_NAMES:
        trace = paper_trace(name, scale)
        actual = sim.run(trace, _static_partitioner(), nprocs).series(
            "relative_migration"
        )[1:]
        row: dict[str, float] = {}
        for denom in ("current", "previous", "max"):
            sampler = StateSampler(migration_denominator=denom, nprocs=nprocs)
            beta_m = sampler.penalty_series(trace).beta_m[1:]
            row[denom] = pearson(beta_m, actual)
        out[name] = row
    return out


def ablation_surface(
    nprocs: int = DEFAULT_NPROCS, scale: str = "paper"
) -> dict[str, dict[str, float]]:
    """``beta_C`` surface convention: mean value and envelope behaviour."""
    out: dict[str, dict[str, float]] = {}
    sim = TraceSimulator()
    for name in APP_NAMES:
        trace = paper_trace(name, scale)
        actual = sim.run(trace, _static_partitioner(), nprocs).series(
            "relative_comm"
        )
        row: dict[str, float] = {"mean_actual": float(actual.mean())}
        for surface in ("patch", "region"):
            series = np.array(
                [
                    communication_penalty(
                        s.hierarchy, nprocs=nprocs, surface=surface
                    )
                    for s in trace
                ]
            )
            row[f"mean_{surface}"] = float(series.mean())
            row[f"envelope_{surface}"] = float((series >= actual).mean())
        out[name] = row
    return out


def static_partitioner_suite() -> dict[str, object]:
    """The static P choices compared against the meta-partitioner."""
    return {
        "nature+fable": NaturePlusFable(),
        "nature+fable-balance": NaturePlusFable(
            NatureFableParams().balance_focused()
        ),
        "domain-sfc-hilbert": DomainSfcPartitioner(curve="hilbert"),
        "patch-lpt": PatchBasedPartitioner(),
        "sticky-sfc": StickyRepartitioner(DomainSfcPartitioner()),
    }


def machine_scenarios() -> dict[str, MachineModel]:
    """The three system states the dynamic-PAC experiment sweeps.

    The C component of the PAC-triple: the same application needs a
    different partitioner on a network-starved cluster than on a
    compute-bound one — which is exactly why a static P "seriously
    inhibits the potential for increasing scalability" (section 3).
    """
    return {
        "net-starved": MachineModel(bandwidth_bytes_per_s=5.0e7),
        "cluster-2003": MachineModel(),
        "fast-network": MachineModel().faster_network(40),
    }


def meta_vs_static(
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
    machines: dict[str, MachineModel] | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Modeled execution time: every static P vs. dynamic PAC schedules.

    For each (application, machine) pair, runs every static partitioner,
    the ArMADA octant baseline and the continuous meta-partitioner, and
    records each schedule's *regret* — modeled seconds over the best
    static choice for that pair, as a fraction.  The paper's claim
    ("tracking and adapting ... lead to potentially large decreases in
    execution times") is quantified as: the meta-partitioner's worst-case
    regret across machines is small, while every fixed static choice has a
    large worst-case regret on some machine.
    """
    if machines is None:
        machines = machine_scenarios()
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name in APP_NAMES:
        trace = paper_trace(name, scale)
        per_machine: dict[str, dict[str, float]] = {}
        for mlabel, machine in machines.items():
            sim = TraceSimulator(machine=machine)
            row: dict[str, float] = {}
            for label, part in static_partitioner_suite().items():
                row[label] = sim.run(trace, part, nprocs).total_execution_seconds
            armada = ArmadaClassifier()
            row["armada-octant"] = sim.run_scheduled(
                trace, armada, nprocs
            ).total_execution_seconds
            meta = MetaScheduler(
                sampler=StateSampler(machine=machine, nprocs=nprocs)
            )
            row["meta-partitioner"] = sim.run_scheduled(
                trace, meta, nprocs
            ).total_execution_seconds
            best_static = min(
                v
                for k, v in row.items()
                if k not in ("armada-octant", "meta-partitioner")
            )
            row["meta_regret"] = (row["meta-partitioner"] - best_static) / best_static
            per_machine[mlabel] = row
        out[name] = per_machine
    return out


def regret_summary(
    table: dict[str, dict[str, dict[str, float]]]
) -> dict[str, float]:
    """Worst-case regret of every schedule across all (app, machine) pairs.

    The minimax view of :func:`meta_vs_static`: for each schedule (static
    or dynamic), its largest fractional excess over the per-pair best
    static choice.  A successful meta-partitioner has a far smaller value
    than any static schedule.
    """
    schedules: dict[str, float] = {}
    for per_machine in table.values():
        for row in per_machine.values():
            best_static = min(
                v
                for k, v in row.items()
                if k not in ("armada-octant", "meta-partitioner", "meta_regret")
            )
            for label, seconds in row.items():
                if label == "meta_regret":
                    continue
                regret = (seconds - best_static) / best_static
                schedules[label] = max(schedules.get(label, 0.0), regret)
    return schedules
