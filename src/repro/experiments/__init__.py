"""Experiment harness: one entry point per paper table/figure (DESIGN.md)."""

from .ablations import (
    ablation_denominator,
    ablation_surface,
    machine_scenarios,
    meta_vs_static,
    regret_summary,
    static_partitioner_suite,
)
from .analysis import (
    amplitude_ratio,
    best_lag,
    dominant_period,
    envelope_fraction,
    pearson,
    series_stats,
)
from .figures import (
    FIGURE_APPS,
    dimension2_series,
    figure1,
    figure_app,
    shape_report,
)
from .report import (
    ascii_chart,
    render_figure1,
    render_figure_app,
    render_group_stats,
    render_regret,
)
from .workloads import (
    ALL_APP_NAMES,
    APP_NAMES,
    APP_NAMES_3D,
    all_paper_traces,
    clear_trace_cache,
    paper_config,
    paper_trace,
    shadow_shape,
    workload_ndim,
)

__all__ = [
    "ablation_denominator",
    "ablation_surface",
    "machine_scenarios",
    "meta_vs_static",
    "regret_summary",
    "static_partitioner_suite",
    "amplitude_ratio",
    "best_lag",
    "dominant_period",
    "envelope_fraction",
    "pearson",
    "series_stats",
    "FIGURE_APPS",
    "dimension2_series",
    "figure1",
    "figure_app",
    "shape_report",
    "ascii_chart",
    "render_figure1",
    "render_figure_app",
    "render_group_stats",
    "render_regret",
    "ALL_APP_NAMES",
    "APP_NAMES",
    "APP_NAMES_3D",
    "all_paper_traces",
    "clear_trace_cache",
    "paper_config",
    "paper_trace",
    "shadow_shape",
    "workload_ndim",
]
