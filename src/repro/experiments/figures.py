"""Regeneration of every figure of the paper's evaluation.

One entry point per paper artifact (DESIGN.md experiment index):

* :func:`figure1` — BL2D dynamic behaviour under a static partitioner
  (load imbalance % and communication amount vs. time);
* :func:`figure_app` — Figures 4--7: per application, actual relative
  communication vs ``beta_C`` and actual relative data migration vs
  ``beta_m``, superimposed without scaling;
* :func:`shape_report` — quantified versions of the section 5.2 claims;
* :func:`dimension2_series` — the requested/offered trajectory of the
  dimension-II theory (section 4.3).

All functions return plain dicts of numpy arrays/floats so benchmarks and
notebooks can consume or print them directly (no plotting dependency).
"""

from __future__ import annotations

import numpy as np

from ..metrics import load_imbalance_percent
from ..model import StateSampler
from ..partition import NaturePlusFable, Partitioner, proc_loads
from ..simulator import TraceSimulator
from ..trace import Trace
from .analysis import (
    amplitude_ratio,
    best_lag,
    dominant_period,
    envelope_fraction,
    pearson,
)
from .workloads import APP_NAMES, paper_trace

__all__ = [
    "FIGURE_APPS",
    "figure1",
    "figure_app",
    "shape_report",
    "dimension2_series",
]

#: Figure number -> application, per the paper's layout.
FIGURE_APPS = {4: "rm2d", 5: "bl2d", 6: "sc2d", 7: "tp2d"}

DEFAULT_NPROCS = 16


def _static_partitioner() -> Partitioner:
    """The paper's partitioning setup: Nature+Fable with static defaults."""
    return NaturePlusFable()


def figure1(
    trace: Trace | None = None,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
) -> dict:
    """Figure 1: dynamic behaviour of BL2D under a static P.

    Returns the per-step series the figure plots: load imbalance (in
    percent) and communication amount, against the time step.
    """
    if trace is None:
        trace = paper_trace("bl2d", scale)
    sim = TraceSimulator()
    partitioner = _static_partitioner()
    steps: list[int] = []
    imbalance: list[float] = []
    comm: list[float] = []
    previous = None
    for snap in trace:
        result = partitioner.partition(snap.hierarchy, nprocs, previous)
        loads = proc_loads(result, snap.hierarchy)
        steps.append(snap.step)
        imbalance.append(load_imbalance_percent(loads))
        metrics = sim.measure_step(
            snap.hierarchy, result, previous, None, step=snap.step
        )
        comm.append(metrics.relative_comm)
        previous = result
    return {
        "trace": trace.name,
        "nprocs": nprocs,
        "step": np.array(steps),
        "load_imbalance_percent": np.array(imbalance),
        "relative_comm": np.array(comm),
    }


def figure_app(
    name: str,
    trace: Trace | None = None,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
) -> dict:
    """Figures 4-7: model penalties vs. measured behaviour for one app.

    Left panel data: the actual relative communication and the penalty
    ``beta_C``.  Right panel data: the actual relative data migration and
    the penalty ``beta_m``.  Both pairs are superimposed without scaling
    (section 5.1.4); trend statistics quantify the visual comparison.
    """
    if name not in APP_NAMES:
        raise ValueError(f"unknown application {name!r}")
    if trace is None:
        trace = paper_trace(name, scale)
    sim = TraceSimulator()
    result = sim.run(trace, _static_partitioner(), nprocs)
    sampler = StateSampler(nprocs=nprocs)
    model = sampler.penalty_series(trace)
    actual_comm = result.series("relative_comm")
    actual_mig = result.series("relative_migration")
    # Step 0 has no predecessor: drop it from migration statistics.
    mig_model = model.beta_m[1:]
    mig_actual = actual_mig[1:]
    return {
        "trace": trace.name,
        "nprocs": nprocs,
        "step": model.steps,
        "actual_relative_comm": actual_comm,
        "beta_c": model.beta_c,
        "actual_relative_migration": actual_mig,
        "beta_m": model.beta_m,
        "comm_correlation": pearson(model.beta_c, actual_comm),
        "migration_correlation": pearson(mig_model, mig_actual),
        "comm_envelope_fraction": envelope_fraction(model.beta_c, actual_comm),
        "migration_amplitude_ratio": amplitude_ratio(mig_model, mig_actual),
        "migration_lead": best_lag(mig_model, mig_actual),
        "comm_period_model": dominant_period(model.beta_c),
        "comm_period_actual": dominant_period(actual_comm),
        "migration_period_model": dominant_period(mig_model),
        "migration_period_actual": dominant_period(mig_actual),
    }


def shape_report(
    nprocs: int = DEFAULT_NPROCS, scale: str = "paper"
) -> dict[str, dict]:
    """Quantified section 5.2 claims for the whole suite.

    Per application: do the penalties co-move with the measurements
    (positive correlation), does ``beta_C`` form an aggressive upper
    envelope, is ``beta_m`` cautious in amplitude, and do the oscillation
    periods agree for the oscillatory applications?
    """
    out: dict[str, dict] = {}
    for name in APP_NAMES:
        fig = figure_app(name, nprocs=nprocs, scale=scale)
        out[name] = {
            "comm_correlation": fig["comm_correlation"],
            "migration_correlation": fig["migration_correlation"],
            "comm_envelope_fraction": fig["comm_envelope_fraction"],
            "migration_amplitude_ratio": fig["migration_amplitude_ratio"],
            "migration_lead": fig["migration_lead"],
            "periods": {
                "comm_model": fig["comm_period_model"],
                "comm_actual": fig["comm_period_actual"],
                "migration_model": fig["migration_period_model"],
                "migration_actual": fig["migration_period_actual"],
            },
        }
    return out


def dimension2_series(
    name: str = "bl2d",
    trace: Trace | None = None,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
) -> dict:
    """The dimension-II trajectory: requested vs offered time (section 4.3)."""
    if trace is None:
        trace = paper_trace(name, scale)
    sampler = StateSampler(nprocs=nprocs)
    samples = sampler.sample_trace(trace)
    return {
        "trace": trace.name,
        "step": np.array([s.step for s in samples]),
        "requested_fraction": np.array(
            [s.tradeoff2.requested_fraction for s in samples]
        ),
        "requested_seconds": np.array(
            [s.tradeoff2.requested_seconds for s in samples]
        ),
        "offered_seconds": np.array(
            [s.tradeoff2.offered_seconds for s in samples]
        ),
        "normalized_grid_size": np.array(
            [s.tradeoff2.normalized_grid_size for s in samples]
        ),
        "dim2": np.array([s.point.dim2 for s in samples]),
    }
