"""Regeneration of every figure of the paper's evaluation.

One entry point per paper artifact (DESIGN.md experiment index):

* :func:`figure1` — BL2D dynamic behaviour under a static partitioner
  (load imbalance % and communication amount vs. time);
* :func:`figure_app` — Figures 4--7: per application, actual relative
  communication vs ``beta_C`` and actual relative data migration vs
  ``beta_m``, superimposed without scaling;
* :func:`shape_report` — quantified versions of the section 5.2 claims;
* :func:`dimension2_series` — the requested/offered trajectory of the
  dimension-II theory (section 4.3).

All functions return plain dicts of numpy arrays/floats so benchmarks and
notebooks can consume or print them directly (no plotting dependency).

Execution goes through :mod:`repro.engine`: each figure submits its
simulator replay and model-sampling jobs to the content-addressed result
store, so regenerating a figure reuses work done by other figures,
ablations, benchmarks or CLI sweeps — and a warm store renders the whole
evaluation without re-simulating anything.  Passing an explicit ``trace``
bypasses the engine (ad-hoc traces have no canonical content hash) and
computes inline exactly as before.
"""

from __future__ import annotations

import numpy as np

from ..engine import penalties_spec, run_spec, sim_spec
from ..metrics import load_imbalance_percent
from ..model import StateSampler
from ..partition import NaturePlusFable, Partitioner, proc_loads
from ..simulator import TraceSimulator
from ..trace import Trace
from .analysis import (
    amplitude_ratio,
    best_lag,
    dominant_period,
    envelope_fraction,
    pearson,
)
from .workloads import APP_NAMES

__all__ = [
    "FIGURE_APPS",
    "figure1",
    "figure_app",
    "shape_report",
    "dimension2_series",
]

#: Figure number -> application, per the paper's layout.
FIGURE_APPS = {4: "rm2d", 5: "bl2d", 6: "sc2d", 7: "tp2d"}

DEFAULT_NPROCS = 16


def _static_partitioner() -> Partitioner:
    """The paper's partitioning setup: Nature+Fable with static defaults."""
    return NaturePlusFable()


def _as_warehouse(warehouse):
    """Accept a :class:`~repro.warehouse.Warehouse` or a dataset path."""
    from ..warehouse import Warehouse

    if isinstance(warehouse, Warehouse):
        return warehouse
    return Warehouse(warehouse)


def _fetch(spec, store, warehouse):
    """One run's ``(trace name, series arrays)`` from either source.

    With ``warehouse`` set the run is read back from the columnar
    dataset (raising ``KeyError`` when it was never ingested — the
    warehouse is a read-only view, it never computes); otherwise the
    engine resolves the spec against the store, computing on a miss.
    The warehouse readback is bit-identical to the stored arrays, so
    every figure statistic is byte-for-byte the same either way.
    """
    if warehouse is not None:
        wh = _as_warehouse(warehouse)
        key = spec.key()
        return str(wh.run_row(key)["trace"]), wh.run_series(key)
    result = run_spec(spec, store=store)
    return result.meta["trace"], result.arrays


def figure1(
    trace: Trace | None = None,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
    store=None,
    warehouse=None,
) -> dict:
    """Figure 1: dynamic behaviour of BL2D under a static P.

    Returns the per-step series the figure plots: load imbalance (in
    percent) and communication amount, against the time step.
    ``warehouse`` switches the data source from the store-scan path to
    a built :class:`~repro.warehouse.Warehouse` (bit-identical).
    """
    if trace is not None:
        return _figure1_inline(trace, nprocs)
    name, arrays = _fetch(
        sim_spec("bl2d", scale, nprocs=nprocs), store, warehouse
    )
    return {
        "trace": name,
        "nprocs": nprocs,
        "step": arrays["step"],
        # 100 * (max/avg - 1), identical to load_imbalance_percent on the
        # per-step loads (the simulator stores the max/avg ratio).
        "load_imbalance_percent": 100.0 * (arrays["load_imbalance"] - 1.0),
        "relative_comm": arrays["relative_comm"],
    }


def _figure1_inline(trace: Trace, nprocs: int) -> dict:
    """In-process Figure 1 for an ad-hoc (non-canonical) trace."""
    sim = TraceSimulator()
    partitioner = _static_partitioner()
    steps: list[int] = []
    imbalance: list[float] = []
    comm: list[float] = []
    previous = None
    for snap in trace:
        result = partitioner.partition(snap.hierarchy, nprocs, previous)
        loads = proc_loads(result, snap.hierarchy)
        steps.append(snap.step)
        imbalance.append(load_imbalance_percent(loads))
        metrics = sim.measure_step(
            snap.hierarchy, result, previous, None, step=snap.step
        )
        comm.append(metrics.relative_comm)
        previous = result
    return {
        "trace": trace.name,
        "nprocs": nprocs,
        "step": np.array(steps),
        "load_imbalance_percent": np.array(imbalance),
        "relative_comm": np.array(comm),
    }


def _figure_app_dict(
    name: str,
    nprocs: int,
    steps: np.ndarray,
    beta_c: np.ndarray,
    beta_m: np.ndarray,
    actual_comm: np.ndarray,
    actual_mig: np.ndarray,
) -> dict:
    # Step 0 has no predecessor: drop it from migration statistics.
    mig_model = beta_m[1:]
    mig_actual = actual_mig[1:]
    return {
        "trace": name,
        "nprocs": nprocs,
        "step": steps,
        "actual_relative_comm": actual_comm,
        "beta_c": beta_c,
        "actual_relative_migration": actual_mig,
        "beta_m": beta_m,
        "comm_correlation": pearson(beta_c, actual_comm),
        "migration_correlation": pearson(mig_model, mig_actual),
        "comm_envelope_fraction": envelope_fraction(beta_c, actual_comm),
        "migration_amplitude_ratio": amplitude_ratio(mig_model, mig_actual),
        "migration_lead": best_lag(mig_model, mig_actual),
        "comm_period_model": dominant_period(beta_c),
        "comm_period_actual": dominant_period(actual_comm),
        "migration_period_model": dominant_period(mig_model),
        "migration_period_actual": dominant_period(mig_actual),
    }


def figure_app(
    name: str,
    trace: Trace | None = None,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
    store=None,
    warehouse=None,
) -> dict:
    """Figures 4-7: model penalties vs. measured behaviour for one app.

    Left panel data: the actual relative communication and the penalty
    ``beta_C``.  Right panel data: the actual relative data migration and
    the penalty ``beta_m``.  Both pairs are superimposed without scaling
    (section 5.1.4); trend statistics quantify the visual comparison.
    """
    if name not in APP_NAMES:
        raise ValueError(f"unknown application {name!r}")
    if trace is not None:
        sim = TraceSimulator()
        result = sim.run(trace, _static_partitioner(), nprocs)
        model = StateSampler(nprocs=nprocs).penalty_series(trace)
        return _figure_app_dict(
            trace.name,
            nprocs,
            model.steps,
            model.beta_c,
            model.beta_m,
            result.series("relative_comm"),
            result.series("relative_migration"),
        )
    trace_name, sim_arrays = _fetch(
        sim_spec(name, scale, nprocs=nprocs), store, warehouse
    )
    _, model_arrays = _fetch(
        penalties_spec(name, scale, nprocs=nprocs), store, warehouse
    )
    return _figure_app_dict(
        trace_name,
        nprocs,
        model_arrays["step"],
        model_arrays["beta_c"],
        model_arrays["beta_m"],
        sim_arrays["relative_comm"],
        sim_arrays["relative_migration"],
    )


def shape_report(
    nprocs: int = DEFAULT_NPROCS, scale: str = "paper", store=None,
    warehouse=None,
) -> dict[str, dict]:
    """Quantified section 5.2 claims for the whole suite.

    Per application: do the penalties co-move with the measurements
    (positive correlation), does ``beta_C`` form an aggressive upper
    envelope, is ``beta_m`` cautious in amplitude, and do the oscillation
    periods agree for the oscillatory applications?
    """
    out: dict[str, dict] = {}
    for name in APP_NAMES:
        fig = figure_app(
            name, nprocs=nprocs, scale=scale, store=store,
            warehouse=warehouse,
        )
        out[name] = {
            "comm_correlation": fig["comm_correlation"],
            "migration_correlation": fig["migration_correlation"],
            "comm_envelope_fraction": fig["comm_envelope_fraction"],
            "migration_amplitude_ratio": fig["migration_amplitude_ratio"],
            "migration_lead": fig["migration_lead"],
            "periods": {
                "comm_model": fig["comm_period_model"],
                "comm_actual": fig["comm_period_actual"],
                "migration_model": fig["migration_period_model"],
                "migration_actual": fig["migration_period_actual"],
            },
        }
    return out


def dimension2_series(
    name: str = "bl2d",
    trace: Trace | None = None,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = "paper",
    store=None,
    warehouse=None,
) -> dict:
    """The dimension-II trajectory: requested vs offered time (section 4.3)."""
    if trace is not None:
        sampler = StateSampler(nprocs=nprocs)
        samples = sampler.sample_trace(trace)
        return {
            "trace": trace.name,
            "step": np.array([s.step for s in samples]),
            "requested_fraction": np.array(
                [s.tradeoff2.requested_fraction for s in samples]
            ),
            "requested_seconds": np.array(
                [s.tradeoff2.requested_seconds for s in samples]
            ),
            "offered_seconds": np.array(
                [s.tradeoff2.offered_seconds for s in samples]
            ),
            "normalized_grid_size": np.array(
                [s.tradeoff2.normalized_grid_size for s in samples]
            ),
            "dim2": np.array([s.point.dim2 for s in samples]),
        }
    model = run_spec(penalties_spec(name, scale, nprocs=nprocs), store=store)
    return {
        "trace": model.meta["trace"],
        "step": model.arrays["step"],
        "requested_fraction": model.arrays["requested_fraction"],
        "requested_seconds": model.arrays["requested_seconds"],
        "offered_seconds": model.arrays["offered_seconds"],
        "normalized_grid_size": model.arrays["normalized_grid_size"],
        "dim2": model.arrays["dim2"],
    }
