"""Grid-relative metrics (section 4.1 of the paper).

Load imbalance measured in percent is the de-facto standard; the paper's
contribution (3) extends the idea to data migration and communication so
that *inter-application* comparisons become possible:

* **relative data migration** between ``t-1`` and ``t`` is the number of
  migrated grid points normalized by ``|H_{t-1}|`` — 100 % means every
  point of the old grid moved;
* **relative communication** of a coarse step is the number of
  point-communication events normalized by the *workload*
  ``sum_l n_l * r^l`` — 100 % means every point communicated at every
  local time step of the coarse step.
"""

from __future__ import annotations

import numpy as np

from ..hierarchy import GridHierarchy

__all__ = [
    "load_imbalance_percent",
    "relative_migration",
    "relative_communication",
]


def load_imbalance_percent(loads: np.ndarray) -> float:
    """Load imbalance in percent: ``100 * (max/avg - 1)``.

    The paper's de-facto standard metric — "the load of the heaviest
    loaded processor divided by the average load" — expressed as the
    percentage excess of the bottleneck rank.  0 % is perfect balance.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    if (loads < 0).any():
        raise ValueError("loads must be non-negative")
    avg = loads.mean()
    if avg == 0:
        return 0.0
    return float(100.0 * (loads.max() / avg - 1.0))


def relative_migration(migrated_points: int, previous: GridHierarchy) -> float:
    """Migrated points / ``|H_{t-1}|`` (section 4.1).

    "Data migration between time-steps t-1 and t should be normalized with
    respect to grid size ... at time-step t-1.  Consequently, a
    100-percent data migration translates to that all points in the grid
    are moved."
    """
    if migrated_points < 0:
        raise ValueError("migrated_points must be >= 0")
    denom = previous.ncells
    if denom == 0:
        return 0.0
    return migrated_points / denom


def relative_communication(
    comm_point_steps: int | float, hierarchy: GridHierarchy
) -> float:
    """Point-communication events / workload (section 4.1).

    "A 100-percent communication at a coarse time-step would translate to
    all points in the grid being involved in communications at all local
    time steps involved in the particular coarse time-step."
    """
    if comm_point_steps < 0:
        raise ValueError("comm_point_steps must be >= 0")
    denom = hierarchy.workload
    if denom == 0:
        return 0.0
    return float(comm_point_steps) / denom
