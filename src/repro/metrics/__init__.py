"""Grid-relative metrics enabling inter-application comparison (paper §4.1)."""

from .relative import (
    load_imbalance_percent,
    relative_communication,
    relative_migration,
)

__all__ = [
    "load_imbalance_percent",
    "relative_communication",
    "relative_migration",
]
