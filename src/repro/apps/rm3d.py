"""RM3D: the 3-D Richtmyer--Meshkov compressible-turbulence kernel.

The 3-D analogue of :mod:`repro.apps.rm2d`, completing 2-D/3-D parity for
all four kernel families (tp/bl/sc/rm): a Mach ~1.5 shock in light gas
runs into a doubly-periodically perturbed density interface to heavy gas
inside a closed box.  Reflective walls re-shock the interface repeatedly,
so the high-gradient set (shock fronts plus the growing 3-D finger/bubble
structure of the instability) wanders irregularly — the *seemingly
random* trace family of the paper's Figure 4, now with genuinely 3-D
refined regions whose surface grows much faster than the 2-D analogue's.

We solve the 3-D compressible Euler equations

    U_t + div F(U) = 0,   U = (rho, rho u, rho v, rho w, E)

with a first-order Rusanov (local Lax--Friedrichs) finite-volume scheme,
written axis-generically (one flux sweep per direction).

Registered through the unified component registry
(``@register("app", "rm3d")``) like any third-party kernel would be: the
engine, CLI, sweeps and the spec graph pick it up purely by name.
"""

from __future__ import annotations

import numpy as np

from ..registry import register
from .base import ShadowApplication

__all__ = ["RichtmyerMeshkov3D"]


@register(
    "app",
    "rm3d",
    description="3-D Richtmyer--Meshkov instability, seemingly random trace",
)
class RichtmyerMeshkov3D(ShadowApplication):
    """Shocked perturbed interface in a closed 3-D box (Euler / Rusanov).

    Parameters
    ----------
    shape :
        Shadow-grid resolution (three extents; the domain is the unit
        cube).
    dt :
        Coarse-step time increment (sub-cycled to the CFL bound).
    gamma :
        Ratio of specific heats.
    atwood :
        Interface density contrast ``(rho2 - rho1) / (rho2 + rho1)``.
    perturbation_modes :
        Number of sinusoidal modes per transverse direction seeding the
        interface perturbation.
    seed :
        Seed for the perturbation phases/amplitudes.
    """

    name = "rm3d"
    ndim = 3

    def __init__(
        self,
        shape: tuple[int, int, int] = (48, 48, 48),
        dt: float = 0.006,
        gamma: float = 1.4,
        atwood: float = 0.5,
        perturbation_modes: int = 3,
        seed: int = 2004,
    ) -> None:
        if len(shape) != 3:
            raise ValueError("RichtmyerMeshkov3D needs a 3-d shadow grid")
        if min(shape) < 16:
            raise ValueError("shadow grid too small for a shock problem")
        if not 0.0 < atwood < 1.0:
            raise ValueError("atwood number must be in (0, 1)")
        self._shape = tuple(int(s) for s in shape)
        self._dt = float(dt)
        self._gamma = float(gamma)
        self._time = 0.0
        self._h = tuple(1.0 / s for s in self._shape)
        rng = np.random.default_rng(seed)
        axes = [(np.arange(s) + 0.5) / s for s in self._shape]
        X, Y, Z = np.meshgrid(*axes, indexing="ij")
        # Perturbed interface position x_i(y, z): a random superposition
        # of low transverse modes, the 3-D generalization of RM2D's x_i(y).
        interface = np.full(self._shape[1:], 0.55)
        y, z = axes[1], axes[2]
        for my in range(perturbation_modes + 1):
            for mz in range(perturbation_modes + 1):
                if my == 0 and mz == 0:
                    continue
                amp = rng.uniform(0.002, 0.008)
                phase_y = rng.uniform(0, 2 * np.pi)
                phase_z = rng.uniform(0, 2 * np.pi)
                interface += amp * np.sin(
                    2 * np.pi * my * y[:, None] + phase_y
                ) * np.sin(2 * np.pi * mz * z[None, :] + phase_z)
        rho_light = 1.0
        rho_heavy = rho_light * (1 + atwood) / (1 - atwood)
        rho = np.where(X < interface[None, :, :], rho_light, rho_heavy)
        p = np.full(self._shape, 1.0)
        velocities = [np.zeros(self._shape) for _ in range(3)]
        # Shock at x = 0.35 moving right through the light gas (Mach ~1.5
        # post-shock state from Rankine-Hugoniot for gamma = 1.4).
        shock = X < 0.35
        rho[shock] = 1.862
        p[shock] = 2.458
        velocities[0][shock] = 0.756
        self._U = self._primitive_to_conserved(rho, velocities, p)

    # -- ShadowApplication interface ---------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        """Density — flags both shocks and the deforming interface."""
        return self._U[0]

    def advance(self) -> None:
        """One coarse step of CFL-limited Rusanov sub-cycles."""
        remaining = self._dt
        while remaining > 1e-14:
            rho, vel, p = self._conserved_to_primitive(self._U)
            c = np.sqrt(self._gamma * p / rho)
            smax = sum(
                float((np.abs(v) + c).max() / h) for v, h in zip(vel, self._h)
            )
            sub = min(remaining, 0.35 / max(smax, 1e-12))
            self._rusanov_step(sub)
            self._time += sub
            remaining -= sub

    # -- internals -----------------------------------------------------------
    def _primitive_to_conserved(
        self, rho: np.ndarray, vel: list[np.ndarray], p: np.ndarray
    ) -> np.ndarray:
        kinetic = 0.5 * rho * sum(v**2 for v in vel)
        E = p / (self._gamma - 1.0) + kinetic
        return np.stack([rho, *(rho * v for v in vel), E])

    def _conserved_to_primitive(
        self, U: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray], np.ndarray]:
        rho = np.maximum(U[0], 1e-10)
        vel = [U[1 + d] / rho for d in range(3)]
        kinetic = 0.5 * rho * sum(v**2 for v in vel)
        p = np.maximum((self._gamma - 1.0) * (U[4] - kinetic), 1e-10)
        return rho, vel, p

    def _flux(self, U: np.ndarray, axis: int) -> np.ndarray:
        """Euler flux along ``axis`` (0, 1 or 2)."""
        rho, vel, p = self._conserved_to_primitive(U)
        vn = vel[axis]
        momentum = [rho * v * vn for v in vel]
        momentum[axis] = momentum[axis] + p
        return np.stack([rho * vn, *momentum, (U[4] + p) * vn])

    def _pad_reflect(self, U: np.ndarray, axis: int) -> np.ndarray:
        """Ghost cells for reflective walls: mirror, flip normal momentum."""
        sl_lo = [slice(None)] * 4
        sl_hi = [slice(None)] * 4
        sl_lo[1 + axis] = slice(0, 1)
        sl_hi[1 + axis] = slice(-1, None)
        lo = U[tuple(sl_lo)].copy()
        hi = U[tuple(sl_hi)].copy()
        lo[1 + axis] *= -1.0
        hi[1 + axis] *= -1.0
        return np.concatenate([lo, U, hi], axis=1 + axis)

    def _rusanov_step(self, dt: float) -> None:
        """First-order Rusanov finite-volume update, one sweep per axis."""
        U = self._U
        dU = np.zeros_like(U)
        for axis in range(3):
            Up = self._pad_reflect(U, axis)
            rho, vel, p = self._conserved_to_primitive(Up)
            c = np.sqrt(self._gamma * p / rho)
            a = np.abs(vel[axis]) + c
            F = self._flux(Up, axis)
            sl_lo = [slice(None)] * 4
            sl_hi = [slice(None)] * 4
            sl_lo[1 + axis] = slice(None, -1)
            sl_hi[1 + axis] = slice(1, None)
            lo, hi = tuple(sl_lo), tuple(sl_hi)
            a_lo = a[lo[1:]]
            a_hi = a[hi[1:]]
            amax = np.maximum(a_lo, a_hi)[None]
            flux = 0.5 * (F[lo] + F[hi]) - 0.5 * amax * (Up[hi] - Up[lo])
            sl_in_lo = [slice(None)] * 4
            sl_in_hi = [slice(None)] * 4
            sl_in_lo[1 + axis] = slice(None, -1)
            sl_in_hi[1 + axis] = slice(1, None)
            dU -= (dt / self._h[axis]) * (
                flux[tuple(sl_in_hi)] - flux[tuple(sl_in_lo)]
            )
        self._U = U + dU
