"""SC2D: the Scalarwave numerical-relativity kernel.

The paper's SC2D is the hyperbolic (wave-equation-like) part of the Cactus
numerical-relativity toolkit (section 5.1.1); its trace is *oscillatory*
in both load imbalance and communication volume, and the model must track
the oscillation period (Figure 6).

We solve the 2-D scalar wave equation

    u_tt = c^2 laplacian(u) + S(x, t)

with a standard second-order leapfrog scheme and a *pulsed* compact source
at the domain centre: every pulse launches an expanding annular wavefront
that sweeps outward and leaves through absorbing (sponge) boundaries.  The
refined region is the thin high-gradient annulus, so the hierarchy
periodically inflates (front mid-domain, large perimeter) and deflates
(front gone, next pulse pending) — the oscillatory behaviour the paper
reports for SC2D.
"""

from __future__ import annotations

import numpy as np

from ..registry import register
from .base import ShadowApplication

__all__ = ["ScalarWave2D"]


@register("app", "sc2d", description="Scalarwave numerical relativity (Cactus-style), oscillatory trace")
class ScalarWave2D(ShadowApplication):
    """Pulsed-source scalar wave with absorbing boundaries.

    Parameters
    ----------
    shape :
        Shadow-grid resolution.
    dt :
        Coarse-step time increment (sub-cycled to respect the CFL bound).
    wave_speed :
        ``c`` in the wave equation (unit square domain).
    pulse_period :
        Time between source pulses — sets the trace's oscillation period.
    pulse_width :
        Temporal width of each Gaussian pulse.
    """

    name = "sc2d"

    def __init__(
        self,
        shape: tuple[int, int] = (128, 128),
        dt: float = 0.02,
        wave_speed: float = 1.0,
        pulse_period: float = 0.45,
        pulse_width: float = 0.03,
    ) -> None:
        if min(shape) < 8:
            raise ValueError("shadow grid too small")
        if pulse_period <= 0 or pulse_width <= 0:
            raise ValueError("pulse period and width must be positive")
        self._shape = shape
        self._dt = float(dt)
        self._c = float(wave_speed)
        self._period = float(pulse_period)
        self._width = float(pulse_width)
        self._time = 0.0
        nx, ny = shape
        self._h = 1.0 / min(nx, ny)
        x = (np.arange(nx) + 0.5) / nx
        y = (np.arange(ny) + 0.5) / ny
        X, Y = np.meshgrid(x, y, indexing="ij")
        r2 = (X - 0.5) ** 2 + (Y - 0.5) ** 2
        self._source_profile = np.exp(-r2 / 0.002)
        # Sponge layer: damping ramps up in the outer 12 % of the domain.
        edge = np.minimum.reduce([X, Y, 1.0 - X, 1.0 - Y])
        ramp = np.clip((0.12 - edge) / 0.12, 0.0, 1.0)
        self._damping = 8.0 * ramp**2
        self._u = np.zeros(shape)
        self._v = np.zeros(shape)  # du/dt

    # -- ShadowApplication interface ---------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        return self._u

    def source_amplitude(self, t: float) -> float:
        """Gaussian pulse train: amplitude of the source at time ``t``."""
        phase = t % self._period
        # Pulse centred a few widths into each period.
        centre = 3.0 * self._width
        return float(np.exp(-((phase - centre) ** 2) / (2 * self._width**2)))

    def advance(self) -> None:
        """One coarse step: CFL-limited velocity-Verlet sub-cycling."""
        cfl_dt = 0.4 * self._h / self._c
        nsub = max(1, int(np.ceil(self._dt / cfl_dt)))
        sub = self._dt / nsub
        for _ in range(nsub):
            lap = self._laplacian(self._u)
            amp = self.source_amplitude(self._time)
            accel = self._c**2 * lap + 60.0 * amp * self._source_profile
            accel -= self._damping * self._v
            self._v += sub * accel
            self._u += sub * self._v
            self._time += sub

    # -- internals -----------------------------------------------------------
    def _laplacian(self, u: np.ndarray) -> np.ndarray:
        """5-point Laplacian with homogeneous Neumann edges."""
        up = np.empty_like(u)
        up[:] = -4.0 * u
        up += np.roll(u, 1, axis=0)
        up += np.roll(u, -1, axis=0)
        up += np.roll(u, 1, axis=1)
        up += np.roll(u, -1, axis=1)
        # Fix wrapped edges: replicate boundary cells (Neumann).
        up[0, :] += u[0, :] - u[-1, :]
        up[-1, :] += u[-1, :] - u[0, :]
        up[:, 0] += u[:, 0] - u[:, -1]
        up[:, -1] += u[:, -1] - u[:, 0]
        return up / self._h**2
