"""The four SAMR application kernels of the paper's validation suite.

============  ==========================================  ==================
Trace name    Kernel                                      Paper behaviour
============  ==========================================  ==================
``tp2d``      2-D transport benchmark (GrACE)             seemingly random
``bl2d``      Buckley--Leverett oil-water flow (IPARS)    oscillatory
``sc2d``      Scalarwave numerical relativity (Cactus)    oscillatory
``rm2d``      Richtmyer--Meshkov instability (VTF)        seemingly random
============  ==========================================  ==================
"""

from .base import ShadowApplication, TraceGenConfig, build_hierarchy, generate_trace
from .bl2d import BuckleyLeverett2D, fractional_flow
from .rm2d import RichtmyerMeshkov2D
from .sc2d import ScalarWave2D
from .tp2d import Transport2D

__all__ = [
    "ShadowApplication",
    "TraceGenConfig",
    "build_hierarchy",
    "generate_trace",
    "BuckleyLeverett2D",
    "fractional_flow",
    "RichtmyerMeshkov2D",
    "ScalarWave2D",
    "Transport2D",
    "APPLICATIONS",
    "make_application",
]

#: Registry of the paper's four kernels, keyed by trace name.
APPLICATIONS = {
    "tp2d": Transport2D,
    "bl2d": BuckleyLeverett2D,
    "sc2d": ScalarWave2D,
    "rm2d": RichtmyerMeshkov2D,
}


def make_application(name: str, **kwargs) -> ShadowApplication:
    """Instantiate one of the paper's kernels by trace name."""
    try:
        cls = APPLICATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}"
        ) from None
    return cls(**kwargs)
