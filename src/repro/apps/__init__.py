"""The SAMR application kernels: the paper's validation suite plus 3-D.

============  ==========================================  ==================
Trace name    Kernel                                      Behaviour
============  ==========================================  ==================
``tp2d``      2-D transport benchmark (GrACE)             seemingly random
``bl2d``      Buckley--Leverett oil-water flow (IPARS)    oscillatory
``sc2d``      Scalarwave numerical relativity (Cactus)    oscillatory
``rm2d``      Richtmyer--Meshkov instability (VTF)        seemingly random
``tp3d``      3-D transport benchmark (this repo)         seemingly random
``bl3d``      3-D Buckley--Leverett oil-water flow        oscillatory
``sc3d``      3-D Scalarwave numerical relativity         oscillatory
``rm3d``      3-D Richtmyer--Meshkov instability          seemingly random
============  ==========================================  ==================

The first four are the paper's single-processor traces (section 5.1.1);
the 3-D kernels extend the suite to the hierarchies production SAMR
codes actually run — one 3-D analogue per 2-D family (tp/bl/sc/rm).

Every kernel registers itself with the unified component registry
(``@register("app", name)`` in its own module), so :data:`APPLICATIONS`
is a *live* view: kernels added by third-party plugins (the
``repro.components`` entry-point group) or at runtime appear here — and
everywhere names are resolved — without touching engine internals.
"""

from ..registry import registry
from .base import ShadowApplication, TraceGenConfig, build_hierarchy, generate_trace
from .bl2d import BuckleyLeverett2D, fractional_flow
from .bl3d import BuckleyLeverett3D
from .rm2d import RichtmyerMeshkov2D
from .rm3d import RichtmyerMeshkov3D
from .sc2d import ScalarWave2D
from .sc3d import ScalarWave3D
from .tp2d import Transport2D
from .tp3d import Transport3D

__all__ = [
    "ShadowApplication",
    "TraceGenConfig",
    "build_hierarchy",
    "generate_trace",
    "BuckleyLeverett2D",
    "BuckleyLeverett3D",
    "fractional_flow",
    "RichtmyerMeshkov2D",
    "RichtmyerMeshkov3D",
    "ScalarWave2D",
    "ScalarWave3D",
    "Transport2D",
    "Transport3D",
    "APPLICATIONS",
    "make_application",
]

#: Live registry view of all kernels, keyed by trace name.
APPLICATIONS = registry("app")


def make_application(name: str, **kwargs) -> ShadowApplication:
    """Instantiate a registered kernel by trace name."""
    return APPLICATIONS.create(name, **kwargs)
