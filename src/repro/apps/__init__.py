"""The SAMR application kernels: the paper's validation suite plus 3-D.

============  ==========================================  ==================
Trace name    Kernel                                      Behaviour
============  ==========================================  ==================
``tp2d``      2-D transport benchmark (GrACE)             seemingly random
``bl2d``      Buckley--Leverett oil-water flow (IPARS)    oscillatory
``sc2d``      Scalarwave numerical relativity (Cactus)    oscillatory
``rm2d``      Richtmyer--Meshkov instability (VTF)        seemingly random
``tp3d``      3-D transport benchmark (this repo)         seemingly random
``bl3d``      3-D Buckley--Leverett oil-water flow        oscillatory
============  ==========================================  ==================

The first four are the paper's single-processor traces (section 5.1.1);
``tp3d`` and ``bl3d`` extend the suite to the 3-D hierarchies production
SAMR codes actually run — one seemingly random, one oscillatory.
"""

from .base import ShadowApplication, TraceGenConfig, build_hierarchy, generate_trace
from .bl2d import BuckleyLeverett2D, fractional_flow
from .bl3d import BuckleyLeverett3D
from .rm2d import RichtmyerMeshkov2D
from .sc2d import ScalarWave2D
from .tp2d import Transport2D
from .tp3d import Transport3D

__all__ = [
    "ShadowApplication",
    "TraceGenConfig",
    "build_hierarchy",
    "generate_trace",
    "BuckleyLeverett2D",
    "BuckleyLeverett3D",
    "fractional_flow",
    "RichtmyerMeshkov2D",
    "ScalarWave2D",
    "Transport2D",
    "Transport3D",
    "APPLICATIONS",
    "make_application",
]

#: Registry of all kernels, keyed by trace name.
APPLICATIONS = {
    "tp2d": Transport2D,
    "bl2d": BuckleyLeverett2D,
    "sc2d": ScalarWave2D,
    "rm2d": RichtmyerMeshkov2D,
    "tp3d": Transport3D,
    "bl3d": BuckleyLeverett3D,
}


def make_application(name: str, **kwargs) -> ShadowApplication:
    """Instantiate one of the paper's kernels by trace name."""
    try:
        cls = APPLICATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}"
        ) from None
    return cls(**kwargs)
