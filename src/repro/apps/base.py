"""Shared machinery for the four SAMR application kernels.

The paper's validation traces come from single-processor runs of four
"real-world" kernels (section 5.1.1): numerical relativity (SC2D), oil
reservoir simulation (BL2D), compressible turbulence (RM2D) and a 2-D
transport benchmark (TP2D).  We do not have the original GrACE/Cactus/
IPARS/VTF binaries, so each kernel is rebuilt as a *shadow-grid* PDE
solver: the equation is solved on a uniform grid, and at each regrid step
an error indicator is thresholded level by level, clustered with
Berger--Rigoutsos, and stacked into a properly-nested factor-2 hierarchy —
exactly the information the original traces record (DESIGN.md, section 2).

The experimental parameters mirror the paper: 5 levels of factor-2
refinement in space and time, regridding every 4 steps, 100 time-steps,
granularity 2 (section 5.1.1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace

import numpy as np

from ..clustering import (
    ClusterParams,
    buffer_flags,
    cluster_flags,
    gradient_indicator,
)
from ..geometry import Box, BoxList, bounding_box, rasterize_mask
from ..hierarchy import GridHierarchy, PatchLevel
from ..telemetry import span
from ..trace import Trace, TraceStep

__all__ = ["ShadowApplication", "TraceGenConfig", "build_hierarchy", "generate_trace"]


@dataclass(frozen=True, slots=True)
class TraceGenConfig:
    """Trace-generation parameters (paper defaults, section 5.1.1).

    Parameters
    ----------
    base_shape :
        Base-grid (level 0) cell counts.
    max_levels :
        Hierarchy depth including the base (paper: 5).
    refine_ratio :
        Space and time refinement factor per level (paper: 2).
    nsteps :
        Coarse time-steps to run (paper: 100).
    regrid_interval :
        Coarse steps between regrids (paper: 4).
    flag_threshold :
        Indicator threshold for level-1 flags, in ``[0, 1]``.
    threshold_growth :
        Multiplier applied per deeper level — deeper levels keep only the
        strongest features.
    buffer_width :
        Flag dilation in *level-1 cells* before clustering; the physical
        buffer width is held constant across levels (width in level-``l``
        cells grows with the refinement ratio), matching how production
        SAMR codes keep features inside patches between regrids.
    cluster :
        Berger--Rigoutsos knobs (paper granularity: 2).
    """

    base_shape: tuple[int, ...] = (32, 32)
    max_levels: int = 5
    refine_ratio: int = 2
    nsteps: int = 100
    regrid_interval: int = 4
    flag_threshold: float = 0.10
    threshold_growth: float = 1.3
    buffer_width: int = 2
    cluster: ClusterParams = field(
        default_factory=lambda: ClusterParams(efficiency=0.75, granularity=2)
    )

    def __post_init__(self) -> None:
        if len(self.base_shape) < 1 or any(s < 1 for s in self.base_shape):
            raise ValueError("base_shape must have positive extents")
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        if self.refine_ratio < 2:
            raise ValueError("refine_ratio must be >= 2")
        if self.nsteps < 1 or self.regrid_interval < 1:
            raise ValueError("nsteps and regrid_interval must be >= 1")
        if not 0.0 < self.flag_threshold < 1.0:
            raise ValueError("flag_threshold must be in (0, 1)")
        if self.threshold_growth < 1.0:
            raise ValueError("threshold_growth must be >= 1")
        if self.cluster.ndim != self.ndim:
            # Keep the clustering knobs in the spatial dimension of the
            # workload without forcing every caller to thread it by hand.
            object.__setattr__(
                self, "cluster", replace(self.cluster, ndim=self.ndim)
            )

    @property
    def ndim(self) -> int:
        """Spatial dimensionality of the workload."""
        return len(self.base_shape)

    def level_shape(self, level: int) -> tuple[int, ...]:
        """Cell counts of level ``level``'s index space."""
        r = self.refine_ratio**level
        return tuple(s * r for s in self.base_shape)

    def small(self) -> "TraceGenConfig":
        """A cheap variant for unit tests (shallow, short, coarse).

        Dimension-preserving: 2-D shrinks to ``16**2`` base cells, higher
        dimensions to ``8**ndim``.
        """
        side = 16 if self.ndim == 2 else 8
        return replace(
            self, base_shape=(side,) * self.ndim, max_levels=3, nsteps=12
        )


class ShadowApplication(abc.ABC):
    """A PDE kernel solved on a uniform shadow grid.

    Subclasses implement one coarse time-step of the physics and expose the
    scalar field the error indicator is computed from.  The shadow
    resolution is independent of the hierarchy depth; indicators are
    resampled onto each level's index space.
    """

    #: identifier used as the trace name ("tp2d", "bl2d", ...)
    name: str = "shadow"

    #: spatial dimensionality of the kernel (workload registries key off it)
    ndim: int = 2

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, ...]:
        """Shadow-grid cell counts (one extent per spatial dimension)."""

    @abc.abstractmethod
    def advance(self) -> None:
        """Advance the solution by one coarse time-step."""

    @abc.abstractmethod
    def indicator_field(self) -> np.ndarray:
        """Scalar field whose gradients drive refinement (shadow grid)."""

    @property
    @abc.abstractmethod
    def time(self) -> float:
        """Current physical time."""


def _resample(array: np.ndarray, target: tuple[int, ...], reduce: str) -> np.ndarray:
    """Resample a shadow-grid array onto a level's index space.

    Shapes must be related by integer factors per axis.  Downsampling
    reduces blocks with ``max`` (conservative for indicators); upsampling
    repeats values.
    """
    if array.ndim != len(target):
        raise ValueError(f"cannot resample {array.ndim}-d array to {target}")
    out = array
    for axis in range(array.ndim):
        src, dst = out.shape[axis], target[axis]
        if src == dst:
            continue
        if dst > src:
            if dst % src:
                raise ValueError(f"incompatible shapes {out.shape} -> {target}")
            out = np.repeat(out, dst // src, axis=axis)
        else:
            if src % dst:
                raise ValueError(f"incompatible shapes {out.shape} -> {target}")
            factor = src // dst
            shape = list(out.shape)
            shape[axis] = dst
            shape.insert(axis + 1, factor)
            blocks = out.reshape(shape)
            if reduce == "max":
                out = blocks.max(axis=axis + 1)
            elif reduce == "any":
                out = blocks.any(axis=axis + 1)
            else:
                raise ValueError(f"unknown reduction {reduce!r}")
    return out


def _flag_window(
    flagged: np.ndarray,
    shape: tuple[int, ...],
    win_lo: tuple[int, ...],
    win_hi: tuple[int, ...],
) -> np.ndarray:
    """Resampled boolean flags restricted to a level-space window.

    ``flagged`` is the thresholded shadow-resolution boolean; the window
    ``[win_lo, win_hi)`` lives in the level's index space ``shape`` and
    must be aligned to each upsampled axis's resample factor.  Cropping
    the source first commutes exactly with :func:`_resample` (per-axis
    repeat / block-``any`` are local), so this equals the window slice of
    the full-level resample without materializing it.
    """
    crop = flagged
    for axis in range(flagged.ndim):
        src, dst = flagged.shape[axis], shape[axis]
        if dst >= src:
            f = dst // src
            sl = slice(win_lo[axis] // f, win_hi[axis] // f)
        else:
            g = src // dst
            sl = slice(win_lo[axis] * g, win_hi[axis] * g)
        crop = crop[(slice(None),) * axis + (sl,)]
    win_shape = tuple(h - l for l, h in zip(win_lo, win_hi))
    return _resample(crop, win_shape, reduce="any")


def build_hierarchy(
    indicator: np.ndarray, config: TraceGenConfig
) -> GridHierarchy:
    """Build a properly-nested hierarchy from a shadow-grid indicator.

    Level ``l >= 1`` flags the cells whose (resampled) indicator exceeds
    ``flag_threshold * threshold_growth**(l-1)``, restricted to the region
    refined by level ``l - 1``; flags are buffered, clustered with
    Berger--Rigoutsos, and the clustered boxes are clipped against the
    refined parent patches so proper nesting holds *exactly*.

    All per-level arrays are windowed to the refined parent region's
    bounding box (grown by the buffer width, aligned to the resample
    factors): flags can only survive inside the parent region, so the
    window is exact — and a full-level array at ``ultra`` scale (1024^3
    finest space) would be a gigabyte of bools per level per regrid.
    """
    if indicator.ndim != config.ndim:
        raise ValueError(
            f"{indicator.ndim}-d indicator for a {config.ndim}-d config"
        )
    domain = Box((0,) * config.ndim, config.base_shape)
    levels = [PatchLevel(0, [domain], ratio=1)]
    parent_boxes = BoxList([domain])
    for l in range(1, config.max_levels):
        shape = config.level_shape(l)
        tau = min(0.95, config.flag_threshold * config.threshold_growth ** (l - 1))
        # Constant *physical* buffer width: scale by the level's ratio
        # relative to level 1.
        width = (
            config.buffer_width * config.refine_ratio ** (l - 1)
            if config.buffer_width
            else 0
        )
        # Proper nesting: only refine inside the parent's refined region.
        parent_refined = parent_boxes.refine(config.refine_ratio)
        pbb = bounding_box(parent_refined.boxes)
        # Window: parent bounding box grown by the buffer stencil (flags
        # up to `width` outside the parent dilate into it), clipped to
        # the domain, aligned to each upsampled axis's resample factor.
        win_lo: list[int] = []
        win_hi: list[int] = []
        for ax in range(config.ndim):
            f = (
                shape[ax] // indicator.shape[ax]
                if shape[ax] >= indicator.shape[ax]
                else 1
            )
            lo = max(0, pbb.lo[ax] - width) // f * f
            hi = -(-min(shape[ax], pbb.hi[ax] + width) // f) * f
            win_lo.append(lo)
            win_hi.append(hi)
        wlo, whi = tuple(win_lo), tuple(win_hi)
        win_shape = tuple(h - lo for lo, h in zip(wlo, whi))
        # Threshold at the shadow resolution, then resample the *boolean*:
        # ``max(block) > tau == any(block > tau)`` and upsampling commutes
        # with the comparison, so this is bit-identical to resampling the
        # float indicator first — without ever materializing a
        # full-level-resolution float array.
        flags = _flag_window(indicator > tau, shape, wlo, whi)
        if width:
            # Binary max dilation: reflect == clip at true domain edges;
            # at artificial window edges every cell that can survive the
            # parent mask is >= width away, so its stencil is in-window.
            flags = buffer_flags(flags, width)
        wbox = Box(wlo, whi)
        shifted_parents: list[Box] = []
        neg = tuple(-x for x in wlo)
        for p in parent_refined:
            piece = p.intersect(wbox)  # always whole: parents lie in pbb
            if piece is not None:
                shifted_parents.append(piece.shift(neg))
        parent_mask = rasterize_mask(
            shifted_parents, Box((0,) * config.ndim, win_shape)
        )
        flags &= parent_mask
        if not flags.any():
            break
        # Berger--Rigoutsos first shrinks to the flag bounding box, so
        # clustering the window and shifting is exact.
        clusters = [b.shift(wlo) for b in cluster_flags(flags, config.cluster)]
        # Clip against parent patches: guarantees exact nesting even when
        # clustering swallowed unflagged filler cells outside the parent.
        clipped: list[Box] = []
        for box in clusters:
            for parent in parent_refined:
                piece = box.intersect(parent)
                if piece is not None:
                    clipped.append(piece)
        patches = BoxList(clipped).disjointified().coalesced()
        if patches.ncells == 0:
            break
        levels.append(PatchLevel(l, patches, ratio=config.refine_ratio))
        parent_boxes = patches
    return GridHierarchy(domain, levels)


def generate_trace(
    app: ShadowApplication, config: TraceGenConfig | None = None
) -> Trace:
    """Run a kernel for ``config.nsteps`` coarse steps and record regrids.

    A snapshot is recorded at step 0 and after every
    ``config.regrid_interval`` coarse steps, mirroring the paper's
    regrid-every-4-steps schedule.
    """
    if config is None:
        config = TraceGenConfig()
    steps: list[TraceStep] = []

    def record(step: int) -> None:
        with span("trace.snapshot", cat="trace", app=app.name, step=step):
            indicator = gradient_indicator(app.indicator_field())
            hierarchy = build_hierarchy(indicator, config)
            steps.append(
                TraceStep(step=step, time=app.time, hierarchy=hierarchy)
            )

    with span("trace.generate", cat="trace", app=app.name,
              nsteps=config.nsteps, ndim=config.ndim):
        record(0)
        for step in range(1, config.nsteps + 1):
            app.advance()
            if step % config.regrid_interval == 0:
                record(step)
    return Trace(
        name=app.name,
        steps=steps,
        metadata={
            "base_shape": list(config.base_shape),
            "max_levels": config.max_levels,
            "refine_ratio": config.refine_ratio,
            "nsteps": config.nsteps,
            "regrid_interval": config.regrid_interval,
            "flag_threshold": config.flag_threshold,
            "shadow_shape": list(app.shape),
        },
    )
