"""TP2D: the 2-D transport-equation benchmark kernel.

The paper's TP2D is "a simple benchmark kernel that solves the transport
equation in 2D and is part of the GrACE distribution" (section 5.1.1), and
its trace exhibits *seemingly random* data-migration and communication
dynamics (Figure 7).

We solve the linear advection equation

    du/dt + v(x, t) . grad(u) = 0

with a semi-Lagrangian scheme (unconditionally stable backward
characteristic tracing with bilinear interpolation).  The velocity field is
a time-meandering vortex: a solid-body rotation whose centre slowly drifts
along a seeded pseudo-random path.  The advected feature is a pair of
compact Gaussian pulses; their wandering orbits produce the irregular
refinement dynamics the paper reports for TP2D.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..registry import register
from .base import ShadowApplication

__all__ = ["Transport2D"]


@register("app", "tp2d", description="2-D transport benchmark (GrACE-style), seemingly random trace")
class Transport2D(ShadowApplication):
    """Meandering-vortex advection of compact pulses.

    Parameters
    ----------
    shape :
        Shadow-grid resolution.
    dt :
        Coarse-step time increment (domain is the unit square).
    seed :
        Seed of the vortex-centre drift path.
    """

    name = "tp2d"

    def __init__(
        self,
        shape: tuple[int, int] = (128, 128),
        dt: float = 0.02,
        seed: int = 2004,
    ) -> None:
        if min(shape) < 8:
            raise ValueError("shadow grid too small")
        self._shape = shape
        self._dt = float(dt)
        self._time = 0.0
        rng = np.random.default_rng(seed)
        # Smooth drift path for the vortex centre: random Fourier series.
        self._drift_amp = rng.uniform(0.05, 0.18, size=(2, 3))
        self._drift_freq = rng.uniform(0.3, 1.1, size=(2, 3))
        self._drift_phase = rng.uniform(0, 2 * np.pi, size=(2, 3))
        # Irregularly-varying vortex strength: the feature speed (hence the
        # per-regrid hierarchy change the model must track) fluctuates.
        self._gust_freq = rng.uniform(0.2, 1.4, size=4)
        self._gust_phase = rng.uniform(0, 2 * np.pi, size=4)
        nx, ny = shape
        x = (np.arange(nx) + 0.5) / nx
        y = (np.arange(ny) + 0.5) / ny
        self._X, self._Y = np.meshgrid(x, y, indexing="ij")
        u = np.zeros(shape)
        for cx, cy, w in ((0.35, 0.5, 0.05), (0.65, 0.45, 0.04)):
            u += np.exp(-(((self._X - cx) ** 2 + (self._Y - cy) ** 2) / w**2))
        self._u = u

    # -- ShadowApplication interface ---------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        return self._u

    def advance(self) -> None:
        """One semi-Lagrangian coarse step."""
        vx, vy = self._velocity(self._time)
        nx, ny = self._shape
        # Backward-trace departure points in index coordinates.
        i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
        dep_i = i - vx * self._dt * nx
        dep_j = j - vy * self._dt * ny
        self._u = ndimage.map_coordinates(
            self._u, [dep_i, dep_j], order=1, mode="grid-wrap"
        )
        self._time += self._dt

    # -- internals -----------------------------------------------------------
    def _vortex_centre(self, t: float) -> tuple[float, float]:
        """Drifting vortex centre at time ``t`` (unit-square coordinates)."""
        centre = []
        for d in range(2):
            offset = np.sum(
                self._drift_amp[d]
                * np.sin(2 * np.pi * self._drift_freq[d] * t + self._drift_phase[d])
            )
            centre.append(0.5 + offset)
        return centre[0], centre[1]

    def _gust(self, t: float) -> float:
        """Vortex-strength multiplier in about ``[0.25, 1.75]``."""
        s = float(
            np.mean(np.sin(2 * np.pi * self._gust_freq * t + self._gust_phase))
        )
        return 1.0 + 0.75 * s

    def _velocity(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Solid-body rotation about the drifting centre, softened core."""
        cx, cy = self._vortex_centre(t)
        dx = self._X - cx
        dy = self._Y - cy
        r2 = dx**2 + dy**2
        omega = self._gust(t) * 1.6 / (1.0 + 6.0 * r2)
        return -omega * dy, omega * dx
