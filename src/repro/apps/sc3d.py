"""SC3D: the 3-D Scalarwave numerical-relativity kernel.

The 3-D analogue of :mod:`repro.apps.sc2d`, mirroring how Cactus-class
relativity codes actually run: the scalar wave equation

    u_tt = c^2 laplacian(u) + S(x, t)

on the unit cube, second-order leapfrog with CFL-limited sub-cycling, a
*pulsed* compact source at the cube centre and absorbing (sponge)
boundaries.  Every pulse launches an expanding spherical shell; the
refined region is the thin high-gradient shell, so the hierarchy
periodically inflates (front mid-domain, large surface) and deflates
(front absorbed, next pulse pending) — giving the 3-D suite a second
*oscillatory* trace alongside BL3D, with the much faster area growth a
spherical front has over a cylindrical one.

Registered through the unified component registry
(``@register("app", "sc3d")``) like any third-party kernel would be: the
engine, CLI, sweeps and the spec graph pick it up purely by name.
"""

from __future__ import annotations

import numpy as np

from ..registry import register
from .base import ShadowApplication

__all__ = ["ScalarWave3D"]


@register(
    "app",
    "sc3d",
    description="3-D Scalarwave numerical relativity, oscillatory trace",
)
class ScalarWave3D(ShadowApplication):
    """Pulsed-source 3-D scalar wave with absorbing boundaries.

    Parameters
    ----------
    shape :
        Shadow-grid resolution (three extents; the domain is the unit
        cube).
    dt :
        Coarse-step time increment (sub-cycled to respect the CFL bound).
    wave_speed :
        ``c`` in the wave equation.
    pulse_period :
        Time between source pulses — sets the trace's oscillation period.
    pulse_width :
        Temporal width of each Gaussian pulse.
    """

    name = "sc3d"
    ndim = 3

    def __init__(
        self,
        shape: tuple[int, int, int] = (48, 48, 48),
        dt: float = 0.02,
        wave_speed: float = 1.0,
        pulse_period: float = 0.45,
        pulse_width: float = 0.03,
    ) -> None:
        if len(shape) != 3:
            raise ValueError("ScalarWave3D needs a 3-d shadow grid")
        if min(shape) < 8:
            raise ValueError("shadow grid too small")
        if pulse_period <= 0 or pulse_width <= 0:
            raise ValueError("pulse period and width must be positive")
        self._shape = tuple(int(s) for s in shape)
        self._dt = float(dt)
        self._c = float(wave_speed)
        self._period = float(pulse_period)
        self._width = float(pulse_width)
        self._time = 0.0
        self._h = 1.0 / min(self._shape)
        axes = [(np.arange(n) + 0.5) / n for n in self._shape]
        X, Y, Z = np.meshgrid(*axes, indexing="ij")
        r2 = (X - 0.5) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2
        self._source_profile = np.exp(-r2 / 0.002)
        # Sponge layer: damping ramps up in the outer 12 % of the domain.
        edge = np.minimum.reduce(
            [X, Y, Z, 1.0 - X, 1.0 - Y, 1.0 - Z]
        )
        ramp = np.clip((0.12 - edge) / 0.12, 0.0, 1.0)
        self._damping = 8.0 * ramp**2
        self._u = np.zeros(self._shape)
        self._v = np.zeros(self._shape)  # du/dt

    # -- ShadowApplication interface ---------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        return self._u

    def source_amplitude(self, t: float) -> float:
        """Gaussian pulse train: amplitude of the source at time ``t``."""
        phase = t % self._period
        centre = 3.0 * self._width
        return float(np.exp(-((phase - centre) ** 2) / (2 * self._width**2)))

    def advance(self) -> None:
        """One coarse step: CFL-limited velocity-Verlet sub-cycling."""
        # 3-D leapfrog stability needs dt <= h / (c sqrt(3)); stay below.
        cfl_dt = 0.35 * self._h / self._c
        nsub = max(1, int(np.ceil(self._dt / cfl_dt)))
        sub = self._dt / nsub
        for _ in range(nsub):
            lap = self._laplacian(self._u)
            amp = self.source_amplitude(self._time)
            accel = self._c**2 * lap + 60.0 * amp * self._source_profile
            accel -= self._damping * self._v
            self._v += sub * accel
            self._u += sub * self._v
            self._time += sub

    # -- internals ---------------------------------------------------------
    def _laplacian(self, u: np.ndarray) -> np.ndarray:
        """7-point Laplacian with homogeneous Neumann faces."""
        up = np.empty_like(u)
        up[:] = -6.0 * u
        for axis in range(3):
            up += np.roll(u, 1, axis=axis)
            up += np.roll(u, -1, axis=axis)
            # Fix wrapped faces: replicate boundary cells (Neumann).
            first = [slice(None)] * 3
            last = [slice(None)] * 3
            first[axis] = 0
            last[axis] = -1
            up[tuple(first)] += u[tuple(first)] - u[tuple(last)]
            up[tuple(last)] += u[tuple(last)] - u[tuple(first)]
        return up / self._h**2
