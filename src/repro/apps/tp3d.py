"""TP3D: a 3-D transport benchmark kernel.

The paper's validation suite is 2-D, but the SAMR production codes its
framework targets (the GrACE/Cactus lineage) are 3-D.  TP3D extends the
TP2D transport benchmark to three dimensions so 3-D hierarchies flow
through the whole meta-partitioning stack: the linear advection equation

    du/dt + v(x, t) . grad(u) = 0

is solved with the same semi-Lagrangian scheme (unconditionally stable
backward characteristic tracing, trilinear interpolation).  The velocity
field is a meandering columnar vortex: solid-body rotation about a
vertical axis whose centre drifts along a seeded pseudo-random path,
plus a gentle time-varying vertical shear that corkscrews the features
through the third dimension.  The advected feature is a pair of compact
Gaussian blobs; their wandering orbits produce irregular, fully 3-D
refinement dynamics.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..registry import register
from .base import ShadowApplication

__all__ = ["Transport3D"]


@register("app", "tp3d", description="3-D transport benchmark, seemingly random trace")
class Transport3D(ShadowApplication):
    """Meandering-vortex advection of compact blobs in 3-D.

    Parameters
    ----------
    shape :
        Shadow-grid resolution (three extents; the domain is the unit
        cube).
    dt :
        Coarse-step time increment.
    seed :
        Seed of the vortex-centre drift path.
    """

    name = "tp3d"
    ndim = 3

    def __init__(
        self,
        shape: tuple[int, int, int] = (48, 48, 48),
        dt: float = 0.02,
        seed: int = 2004,
    ) -> None:
        if len(shape) != 3:
            raise ValueError("Transport3D needs a 3-d shadow grid")
        if min(shape) < 8:
            raise ValueError("shadow grid too small")
        self._shape = tuple(int(s) for s in shape)
        self._dt = float(dt)
        self._time = 0.0
        rng = np.random.default_rng(seed)
        # Smooth drift path for the vortex axis: random Fourier series per
        # horizontal coordinate, as in TP2D.
        self._drift_amp = rng.uniform(0.05, 0.18, size=(2, 3))
        self._drift_freq = rng.uniform(0.3, 1.1, size=(2, 3))
        self._drift_phase = rng.uniform(0, 2 * np.pi, size=(2, 3))
        # Irregularly-varying vortex strength and vertical shear.
        self._gust_freq = rng.uniform(0.2, 1.4, size=4)
        self._gust_phase = rng.uniform(0, 2 * np.pi, size=4)
        self._shear_freq = rng.uniform(0.2, 0.9, size=2)
        self._shear_phase = rng.uniform(0, 2 * np.pi, size=2)
        nx, ny, nz = self._shape
        x = (np.arange(nx) + 0.5) / nx
        y = (np.arange(ny) + 0.5) / ny
        z = (np.arange(nz) + 0.5) / nz
        self._X, self._Y, self._Z = np.meshgrid(x, y, z, indexing="ij")
        self._I, self._J, self._K = np.meshgrid(
            np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
        )
        u = np.zeros(self._shape)
        for cx, cy, cz, w in ((0.35, 0.5, 0.45, 0.07), (0.65, 0.45, 0.6, 0.06)):
            u += np.exp(
                -(
                    (
                        (self._X - cx) ** 2
                        + (self._Y - cy) ** 2
                        + (self._Z - cz) ** 2
                    )
                    / w**2
                )
            )
        self._u = u

    # -- ShadowApplication interface ---------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        return self._u

    def advance(self) -> None:
        """One semi-Lagrangian coarse step."""
        vx, vy, vz = self._velocity(self._time)
        nx, ny, nz = self._shape
        dep_i = self._I - vx * self._dt * nx
        dep_j = self._J - vy * self._dt * ny
        dep_k = self._K - vz * self._dt * nz
        self._u = ndimage.map_coordinates(
            self._u, [dep_i, dep_j, dep_k], order=1, mode="grid-wrap"
        )
        self._time += self._dt

    # -- internals -----------------------------------------------------------
    def _vortex_centre(self, t: float) -> tuple[float, float]:
        """Drifting vortex-axis position at time ``t`` (unit coordinates)."""
        centre = []
        for d in range(2):
            offset = np.sum(
                self._drift_amp[d]
                * np.sin(2 * np.pi * self._drift_freq[d] * t + self._drift_phase[d])
            )
            centre.append(0.5 + offset)
        return centre[0], centre[1]

    def _gust(self, t: float) -> float:
        """Vortex-strength multiplier in about ``[0.25, 1.75]``."""
        s = float(
            np.mean(np.sin(2 * np.pi * self._gust_freq * t + self._gust_phase))
        )
        return 1.0 + 0.75 * s

    def _velocity(self, t: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar rotation about the drifting axis plus vertical shear."""
        cx, cy = self._vortex_centre(t)
        dx = self._X - cx
        dy = self._Y - cy
        r2 = dx**2 + dy**2
        omega = self._gust(t) * 1.6 / (1.0 + 6.0 * r2)
        shear = float(
            np.mean(np.sin(2 * np.pi * self._shear_freq * t + self._shear_phase))
        )
        # Vertical velocity strongest near the vortex core, alternating in
        # sign over time: blobs corkscrew up and down the column.
        vz = 0.5 * shear / (1.0 + 6.0 * r2)
        return -omega * dy, omega * dx, vz
