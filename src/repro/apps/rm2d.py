"""RM2D: the Richtmyer--Meshkov compressible-turbulence kernel.

The paper's RM2D is the VTF (Caltech ASCI/ASAP) compressible-turbulence
application solving the Richtmyer--Meshkov instability: "a fingering
instability which occurs at a material interface accelerated by a shock
wave" (section 5.1.1).  Its trace shows *seemingly random* migration and
communication dynamics (Figure 4).

We solve the 2-D compressible Euler equations

    U_t + F(U)_x + G(U)_y = 0,   U = (rho, rho u, rho v, E)

with a first-order Rusanov (local Lax--Friedrichs) finite-volume scheme.
The initial condition is the classic RM setup: a Mach ~1.5 shock in light
gas approaching a sinusoidally-perturbed density interface to heavy gas.
Reflective walls re-shock the interface repeatedly, so the high-gradient
regions (shock fronts + growing interface fingers) wander irregularly —
the source of RM2D's apparently random refinement dynamics.
"""

from __future__ import annotations

import numpy as np

from ..registry import register
from .base import ShadowApplication

__all__ = ["RichtmyerMeshkov2D"]


@register("app", "rm2d", description="Richtmyer--Meshkov instability (VTF-style), seemingly random trace")
class RichtmyerMeshkov2D(ShadowApplication):
    """Shocked perturbed interface in a closed box (Euler / Rusanov).

    Parameters
    ----------
    shape :
        Shadow-grid resolution.
    dt :
        Coarse-step time increment (sub-cycled to the CFL bound).
    gamma :
        Ratio of specific heats.
    atwood :
        Interface density contrast ``(rho2 - rho1) / (rho2 + rho1)``.
    perturbation_modes :
        Number of sinusoidal modes seeding the interface perturbation.
    seed :
        Seed for the perturbation phases/amplitudes.
    """

    name = "rm2d"

    def __init__(
        self,
        shape: tuple[int, int] = (128, 128),
        dt: float = 0.006,
        gamma: float = 1.4,
        atwood: float = 0.5,
        perturbation_modes: int = 4,
        seed: int = 2003,
    ) -> None:
        if min(shape) < 16:
            raise ValueError("shadow grid too small for a shock problem")
        if not 0.0 < atwood < 1.0:
            raise ValueError("atwood number must be in (0, 1)")
        self._shape = shape
        self._dt = float(dt)
        self._gamma = float(gamma)
        self._time = 0.0
        nx, ny = shape
        self._hx = 1.0 / nx
        self._hy = 1.0 / ny
        rng = np.random.default_rng(seed)
        x = (np.arange(nx) + 0.5) / nx
        y = (np.arange(ny) + 0.5) / ny
        X, Y = np.meshgrid(x, y, indexing="ij")
        # Perturbed interface position x_i(y).
        interface = np.full(ny, 0.55)
        for m in range(1, perturbation_modes + 1):
            amp = rng.uniform(0.004, 0.012)
            phase = rng.uniform(0, 2 * np.pi)
            interface += amp * np.sin(2 * np.pi * m * y + phase)
        rho_light = 1.0
        rho_heavy = rho_light * (1 + atwood) / (1 - atwood)
        rho = np.where(X < interface[None, :], rho_light, rho_heavy)
        p = np.full(shape, 1.0)
        u = np.zeros(shape)
        v = np.zeros(shape)
        # Shock at x = 0.35 moving right through the light gas (Mach ~1.5
        # post-shock state from Rankine-Hugoniot for gamma = 1.4).
        shock = X < 0.35
        rho[shock] = 1.862
        p[shock] = 2.458
        u[shock] = 0.756
        self._U = self._primitive_to_conserved(rho, u, v, p)

    # -- ShadowApplication interface ---------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        """Density — flags both shocks and the deforming interface."""
        return self._U[0]

    def advance(self) -> None:
        """One coarse step of CFL-limited Rusanov sub-cycles."""
        remaining = self._dt
        while remaining > 1e-14:
            rho, u, v, p = self._conserved_to_primitive(self._U)
            c = np.sqrt(self._gamma * p / rho)
            smax = float((np.abs(u) + c).max() / self._hx + (np.abs(v) + c).max() / self._hy)
            sub = min(remaining, 0.35 / max(smax, 1e-12))
            self._rusanov_step(sub)
            self._time += sub
            remaining -= sub

    # -- internals -----------------------------------------------------------
    def _primitive_to_conserved(
        self, rho: np.ndarray, u: np.ndarray, v: np.ndarray, p: np.ndarray
    ) -> np.ndarray:
        E = p / (self._gamma - 1.0) + 0.5 * rho * (u**2 + v**2)
        return np.stack([rho, rho * u, rho * v, E])

    def _conserved_to_primitive(
        self, U: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        rho = np.maximum(U[0], 1e-10)
        u = U[1] / rho
        v = U[2] / rho
        kinetic = 0.5 * rho * (u**2 + v**2)
        p = np.maximum((self._gamma - 1.0) * (U[3] - kinetic), 1e-10)
        return rho, u, v, p

    def _flux_x(self, U: np.ndarray) -> np.ndarray:
        rho, u, v, p = self._conserved_to_primitive(U)
        return np.stack([rho * u, rho * u**2 + p, rho * u * v, (U[3] + p) * u])

    def _flux_y(self, U: np.ndarray) -> np.ndarray:
        rho, u, v, p = self._conserved_to_primitive(U)
        return np.stack([rho * v, rho * u * v, rho * v**2 + p, (U[3] + p) * v])

    def _pad_reflect(self, U: np.ndarray, axis: int) -> np.ndarray:
        """Ghost cells for reflective walls: mirror and flip the normal momentum."""
        lo = U[:, :1, :] if axis == 1 else U[:, :, :1]
        hi = U[:, -1:, :] if axis == 1 else U[:, :, -1:]
        lo = lo.copy()
        hi = hi.copy()
        mom = 1 if axis == 1 else 2
        lo[mom] *= -1.0
        hi[mom] *= -1.0
        return np.concatenate([lo, U, hi], axis=axis)

    def _rusanov_step(self, dt: float) -> None:
        """First-order Rusanov finite-volume update with reflective walls."""
        U = self._U
        g = self._gamma
        # --- x-direction ---
        Ux = self._pad_reflect(U, axis=1)
        rho, u, v, p = self._conserved_to_primitive(Ux)
        c = np.sqrt(g * p / rho)
        a = np.abs(u) + c
        F = self._flux_x(Ux)
        aL, aR = a[:-1, :], a[1:, :]
        amax = np.maximum(aL, aR)[None]
        flux_x = 0.5 * (F[:, :-1, :] + F[:, 1:, :]) - 0.5 * amax * (
            Ux[:, 1:, :] - Ux[:, :-1, :]
        )
        dU = -(dt / self._hx) * (flux_x[:, 1:, :] - flux_x[:, :-1, :])
        # --- y-direction ---
        Uy = self._pad_reflect(U, axis=2)
        rho, u, v, p = self._conserved_to_primitive(Uy)
        c = np.sqrt(g * p / rho)
        a = np.abs(v) + c
        G = self._flux_y(Uy)
        aL, aR = a[:, :-1], a[:, 1:]
        amax = np.maximum(aL, aR)[None]
        flux_y = 0.5 * (G[:, :, :-1] + G[:, :, 1:]) - 0.5 * amax * (
            Uy[:, :, 1:] - Uy[:, :, :-1]
        )
        dU += -(dt / self._hy) * (flux_y[:, :, 1:] - flux_y[:, :, :-1])
        self._U = U + dU
