"""BL3D: the 3-D Buckley--Leverett oil-water flow kernel.

The 3-D analogue of :mod:`repro.apps.bl2d`, mirroring how IPARS-class
reservoir codes actually run: the two-phase fractional-flow saturation
equation

    ds/dt + div( f(s) v ) = 0,      f(s) = s^2 / (s^2 + M (1 - s)^2)

is solved on the unit cube with a corner-to-corner displacement drive —
an injector well at the ``(0,0,0)`` corner and a producer at ``(1,1,1)``
(the 3-D quarter-five-spot, incompressible point-source potential flow,
so ``v`` is analytic) — through a mildly heterogeneous permeability
field.  The injection rate is modulated sinusoidally (water-alternating
injection cycles), so the water front surges and stalls periodically and
the refined shell around it grows and shrinks with the same period:
BL3D gives the 3-D suite an *oscillatory* trace to contrast with TP3D's
seemingly random one, exactly as BL2D does in the paper's 2-D suite.

Discretization: first-order upwind finite volumes with a CFL-limited
inner sub-cycle per coarse step, dimension-by-dimension flux splitting.
"""

from __future__ import annotations

import numpy as np

from ..registry import register
from .base import ShadowApplication
from .bl2d import fractional_flow

__all__ = ["BuckleyLeverett3D"]


@register("app", "bl3d", description="3-D Buckley--Leverett oil-water flow, oscillatory trace")
class BuckleyLeverett3D(ShadowApplication):
    """Corner-to-corner Buckley--Leverett displacement with cyclic injection.

    Parameters
    ----------
    shape :
        Shadow-grid resolution (three extents; the domain is the unit
        cube).
    dt :
        Coarse-step time increment.
    mobility_ratio :
        Oil/water mobility ratio ``M``.
    injection_period :
        Period (physical time) of the injection-rate modulation — sets
        the oscillation period seen in the trace.
    seed :
        Seed for the permeability-noise field (mild heterogeneity).
    """

    name = "bl3d"
    ndim = 3

    def __init__(
        self,
        shape: tuple[int, int, int] = (48, 48, 48),
        dt: float = 0.012,
        mobility_ratio: float = 2.0,
        injection_period: float = 0.5,
        seed: int = 1942,
    ) -> None:
        if len(shape) != 3:
            raise ValueError("BuckleyLeverett3D needs a 3-d shadow grid")
        if min(shape) < 8:
            raise ValueError("shadow grid too small")
        if injection_period <= 0:
            raise ValueError("injection_period must be positive")
        self._shape = tuple(int(s) for s in shape)
        self._dt = float(dt)
        self._M = float(mobility_ratio)
        self._period = float(injection_period)
        self._time = 0.0
        axes = [
            (np.arange(n) + 0.5) / n for n in self._shape
        ]
        X, Y, Z = np.meshgrid(*axes, indexing="ij")
        # 3-D quarter-five-spot potential flow: point source at the origin
        # corner, point sink at the far corner (3-D kernel ~ 1/r^3).
        eps = 0.75 / min(self._shape)
        r3s = (X**2 + Y**2 + Z**2 + eps**2) ** 1.5
        r3k = (
            (X - 1.0) ** 2 + (Y - 1.0) ** 2 + (Z - 1.0) ** 2 + eps**2
        ) ** 1.5
        v = [
            X / r3s - (X - 1.0) / r3k,
            Y / r3s - (Y - 1.0) / r3k,
            Z / r3s - (Z - 1.0) / r3k,
        ]
        # Mild permeability heterogeneity perturbs the front shape.
        rng = np.random.default_rng(seed)
        noise = rng.normal(0.0, 1.0, self._shape)
        for _ in range(4):  # cheap smoothing
            noise = sum(
                np.roll(noise, shift, axis)
                for axis in range(3)
                for shift in (1, -1)
            ) / 6.0
        perm = np.exp(0.35 * noise / max(noise.std(), 1e-12))
        self._v = [vi * perm for vi in v]
        speed = sum(np.abs(vi).max() for vi in self._v)
        self._scale = 0.35 / speed  # normalize so fronts move O(cells)/step
        # Initial water bank near the injector.
        self._s = np.where(X + Y + Z < 0.25, 1.0, 0.0)

    # -- ShadowApplication interface ----------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        return self._s

    def injection_rate(self, t: float) -> float:
        """Cyclic injection multiplier in ``[0.15, 1.0]``."""
        return 0.575 + 0.425 * np.sin(2 * np.pi * t / self._period)

    def advance(self) -> None:
        """One coarse step: CFL-limited upwind sub-cycling."""
        remaining = self._dt
        while remaining > 1e-14:
            rate = self.injection_rate(self._time)
            v = [vi * (self._scale * rate) for vi in self._v]
            vmax = max(
                max(
                    np.abs(vi).max() * n
                    for vi, n in zip(v, self._shape)
                ),
                1e-12,
            )
            sub = min(remaining, 0.4 / vmax)
            self._upwind_step(v, sub)
            self._time += sub
            remaining -= sub

    # -- internals -----------------------------------------------------------
    def _upwind_step(self, v: list[np.ndarray], dt: float) -> None:
        """First-order Godunov/upwind update of the saturation field."""
        s = self._s
        f = fractional_flow(s, self._M)
        div = np.zeros_like(s)
        for axis, (va, n) in enumerate(zip(v, self._shape)):
            # Face velocities between cells i-1 and i along this axis.
            v_face = 0.5 * (va + np.roll(va, 1, axis=axis))
            f_up = np.where(v_face > 0, np.roll(f, 1, axis=axis), f)
            F = v_face * f_up
            first = [slice(None)] * 3
            first[axis] = 0
            F[tuple(first)] = 0.0  # closed inflow boundary (injection = source)
            contrib = (np.roll(F, -1, axis=axis) - F) * n
            # Outflow at the far face: zero the wrapped flux contribution.
            last = [slice(None)] * 3
            last[axis] = -1
            contrib[tuple(last)] = (0.0 - F[tuple(last)]) * n
            div += contrib
        s_new = s - dt * div
        # Injector keeps the corner saturated.
        well = tuple(slice(0, max(2, n // 32)) for n in self._shape)
        s_new[well] = 1.0
        self._s = np.clip(s_new, 0.0, 1.0)
