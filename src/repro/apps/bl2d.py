"""BL2D: the Buckley--Leverett oil-water flow kernel.

The paper's BL2D is the Buckley--Leverett model from the IPARS reservoir
toolkit, "used in Oil-Water Flow Simulation for simulation of hydrocarbon
pollution in aquifers" (section 5.1.1).  Its trace exhibits *oscillatory*
data migration and communication whose time period the model must capture
(Figure 5), and Figure 1 uses it to motivate dynamic partitioner selection.

We solve the two-phase fractional-flow saturation equation

    ds/dt + div( f(s) v ) = 0,      f(s) = s^2 / (s^2 + M (1 - s)^2)

on the unit square with a quarter-five-spot velocity field (injector in
one corner, producer in the opposite corner; incompressible potential
flow, so ``v`` is analytic).  The injection rate is modulated
sinusoidally — water-alternating injection cycles — which drives the
water front to surge and stall periodically; the refined region around the
front therefore grows and shrinks with the same period, producing the
oscillatory hierarchy dynamics the paper reports for BL2D.

Discretization: first-order upwind finite volumes with a CFL-limited inner
sub-cycle per coarse step.
"""

from __future__ import annotations

import numpy as np

from ..registry import register
from .base import ShadowApplication

__all__ = ["BuckleyLeverett2D", "fractional_flow"]


def fractional_flow(s: np.ndarray, mobility_ratio: float) -> np.ndarray:
    """Buckley--Leverett fractional flow ``f(s) = s^2 / (s^2 + M (1-s)^2)``.

    ``s`` is water saturation in ``[0, 1]``; ``mobility_ratio`` is the
    oil/water mobility ratio ``M``.
    """
    s = np.clip(s, 0.0, 1.0)
    s2 = s * s
    o2 = (1.0 - s) ** 2
    denom = s2 + mobility_ratio * o2
    out = np.zeros_like(s)
    nz = denom > 0
    out[nz] = s2[nz] / denom[nz]
    return out


@register("app", "bl2d", description="Buckley--Leverett oil-water flow (IPARS-style), oscillatory trace")
class BuckleyLeverett2D(ShadowApplication):
    """Quarter-five-spot Buckley--Leverett displacement with cyclic injection.

    Parameters
    ----------
    shape :
        Shadow-grid resolution.
    dt :
        Coarse-step time increment.
    mobility_ratio :
        Oil/water mobility ratio ``M`` (paper-era reservoir kernels use
        values around 2).
    injection_period :
        Period (physical time) of the injection-rate modulation — sets the
        oscillation period seen in the trace.
    seed :
        Seed for the permeability-noise field (mild heterogeneity).
    """

    name = "bl2d"

    def __init__(
        self,
        shape: tuple[int, int] = (128, 128),
        dt: float = 0.012,
        mobility_ratio: float = 2.0,
        injection_period: float = 0.5,
        seed: int = 1997,
    ) -> None:
        if min(shape) < 8:
            raise ValueError("shadow grid too small")
        if injection_period <= 0:
            raise ValueError("injection_period must be positive")
        self._shape = shape
        self._dt = float(dt)
        self._M = float(mobility_ratio)
        self._period = float(injection_period)
        self._time = 0.0
        nx, ny = shape
        x = (np.arange(nx) + 0.5) / nx
        y = (np.arange(ny) + 0.5) / ny
        X, Y = np.meshgrid(x, y, indexing="ij")
        # Quarter-five-spot potential flow: source at (0,0), sink at (1,1).
        eps = 0.75 / min(shape)
        r2s = X**2 + Y**2 + eps**2
        r2k = (X - 1.0) ** 2 + (Y - 1.0) ** 2 + eps**2
        vx = X / r2s - (X - 1.0) / r2k
        vy = Y / r2s - (Y - 1.0) / r2k
        # Mild permeability heterogeneity perturbs the front shape.
        rng = np.random.default_rng(seed)
        noise = rng.normal(0.0, 1.0, shape)
        for _ in range(4):  # cheap smoothing
            noise = 0.25 * (
                np.roll(noise, 1, 0)
                + np.roll(noise, -1, 0)
                + np.roll(noise, 1, 1)
                + np.roll(noise, -1, 1)
            )
        perm = np.exp(0.35 * noise / max(noise.std(), 1e-12))
        self._vx = vx * perm
        self._vy = vy * perm
        speed = np.abs(self._vx).max() + np.abs(self._vy).max()
        self._scale = 0.35 / speed  # normalize so fronts move O(cells)/step
        # Initial water bank near the injector.
        self._s = np.where(X + Y < 0.15, 1.0, 0.0)

    # -- ShadowApplication interface ----------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def time(self) -> float:
        return self._time

    def indicator_field(self) -> np.ndarray:
        return self._s

    def injection_rate(self, t: float) -> float:
        """Cyclic injection multiplier in ``[0.15, 1.0]``."""
        return 0.575 + 0.425 * np.sin(2 * np.pi * t / self._period)

    def advance(self) -> None:
        """One coarse step: CFL-limited upwind sub-cycling."""
        nx, ny = self._shape
        remaining = self._dt
        while remaining > 1e-14:
            rate = self.injection_rate(self._time)
            vx = self._vx * self._scale * rate
            vy = self._vy * self._scale * rate
            vmax = max(np.abs(vx).max() * nx, np.abs(vy).max() * ny, 1e-12)
            sub = min(remaining, 0.4 / vmax)
            self._upwind_step(vx, vy, sub)
            self._time += sub
            remaining -= sub

    # -- internals -------------------------------------------------------------
    def _upwind_step(self, vx: np.ndarray, vy: np.ndarray, dt: float) -> None:
        """First-order Godunov/upwind update of the saturation field."""
        nx, ny = self._shape
        s = self._s
        f = fractional_flow(s, self._M)
        # Face fluxes, x-direction (faces between i-1 and i).
        vx_face = 0.5 * (vx + np.roll(vx, 1, axis=0))
        f_up_x = np.where(vx_face > 0, np.roll(f, 1, axis=0), f)
        Fx = vx_face * f_up_x
        Fx[0, :] = 0.0  # closed outer boundary (injection handled as source)
        vy_face = 0.5 * (vy + np.roll(vy, 1, axis=1))
        f_up_y = np.where(vy_face > 0, np.roll(f, 1, axis=1), f)
        Fy = vy_face * f_up_y
        Fy[:, 0] = 0.0
        div = (np.roll(Fx, -1, axis=0) - Fx) * nx + (np.roll(Fy, -1, axis=1) - Fy) * ny
        # Outflow at the far edges (producer corner) handled by the roll
        # wrap; zero the wrapped contribution explicitly.
        div[-1, :] = ((0.0 - Fx[-1, :]) * nx) + (np.roll(Fy, -1, axis=1) - Fy)[
            -1, :
        ] * ny
        s_new = s - dt * div
        # Injector keeps the corner saturated.
        s_new[: max(2, nx // 32), : max(2, ny // 32)] = 1.0
        self._s = np.clip(s_new, 0.0, 1.0)
