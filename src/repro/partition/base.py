"""Partitioner interfaces and the distribution container.

A partitioner maps a :class:`~repro.hierarchy.GridHierarchy` onto ``P``
processors.  Distributions are represented as per-level *owner maps*
(:class:`~repro.geometry.OwnerMap`): sparse, patch-aligned corner arrays
with an owning rank per box.  Every downstream metric (load, ghost
communication, migration) is vectorized box calculus over those corner
arrays, so simulator cost scales with patch counts rather than with the
volume of the finest index space.

Dense per-level owner rasters — the original representation — remain
available through :meth:`PartitionResult.rasters` (and the deprecated
:attr:`PartitionResult.owners` shim, which rasterizes lazily); they are
kept as a cross-check path and for visualization, not for the hot path.

The P of the paper's PAC-triple is a :class:`Partitioner` instance; its
parameters are what the meta-partitioner tunes at run time.
"""

from __future__ import annotations

import abc
import warnings

import numpy as np

from ..geometry import OwnerMap, intersection_volume
from ..hierarchy import GridHierarchy

__all__ = ["PartitionResult", "Partitioner", "level_weights", "proc_loads"]


def level_weights(hierarchy: GridHierarchy) -> list[int]:
    """Per-cell workload weight of each level: local steps per coarse step."""
    return [level.time_refinement_weight() for level in hierarchy]


class PartitionResult:
    """A distribution of one hierarchy over ``nprocs`` ranks.

    Parameters
    ----------
    maps :
        One :class:`~repro.geometry.OwnerMap` per level; its shape equals
        the level's index space and its boxes cover exactly the refined
        cells, with ranks in ``[0, nprocs)``.
    nprocs :
        Number of processors.
    partition_seconds :
        Modeled cost of computing this distribution (consumed by the
        dimension-II speed-vs-quality trade-off).
    owners :
        .. deprecated:: 0.5
            Legacy constructor input: dense int32 per-level owner rasters
            (``NO_OWNER`` outside the refined region).  Converted to owner
            maps on construction; pass ``maps`` instead.
    """

    __slots__ = ("maps", "nprocs", "partition_seconds", "_rasters")

    def __init__(
        self,
        maps: tuple[OwnerMap, ...] | None = None,
        nprocs: int = 1,
        partition_seconds: float = 0.0,
        *,
        owners: tuple[np.ndarray, ...] | None = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if (maps is None) == (owners is None):
            raise ValueError("pass exactly one of maps= or owners=")
        rasters: tuple[np.ndarray, ...] | None = None
        if owners is not None:
            rasters = tuple(owners)
            for raster in rasters:
                if raster.dtype != np.int32:
                    raise ValueError("owner rasters must be int32")
            maps = tuple(OwnerMap.from_raster(r) for r in rasters)
        else:
            maps = tuple(maps)  # type: ignore[arg-type]
            for m in maps:
                if not isinstance(m, OwnerMap):
                    raise TypeError(
                        f"maps must contain OwnerMap instances, got {type(m)!r}"
                    )
        self.maps = maps
        self.nprocs = int(nprocs)
        self.partition_seconds = float(partition_seconds)
        self._rasters = rasters

    @property
    def nlevels(self) -> int:
        """Number of level maps."""
        return len(self.maps)

    # -- dense views -------------------------------------------------------
    def rasters(self) -> tuple[np.ndarray, ...]:
        """Dense int32 owner rasters of every level (computed lazily).

        The raster view is the cross-check representation: it can be
        orders of magnitude larger than the owner maps (it scales with the
        index-space volume), so the simulator never touches it.  Results
        constructed from legacy rasters return the original arrays.
        """
        if self._rasters is None:
            self._rasters = tuple(m.rasterize() for m in self.maps)
        return self._rasters

    @property
    def owners(self) -> tuple[np.ndarray, ...]:
        """Deprecated dense view; use :attr:`maps` or :meth:`rasters`."""
        warnings.warn(
            "PartitionResult.owners is deprecated: distributions are sparse "
            "OwnerMaps now; use .maps for the sparse form or .rasters() for "
            "an explicit dense conversion",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.rasters()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = sum(m.ncells for m in self.maps)
        return (
            f"PartitionResult({self.nlevels} levels, {cells} cells, "
            f"P={self.nprocs})"
        )

    # -- invariants --------------------------------------------------------
    def validate(self, hierarchy: GridHierarchy) -> None:
        """Check the distribution is complete and consistent.

        Every refined cell of every level must be owned by a valid rank
        and no unrefined cell may be owned.
        """
        if self.nlevels != hierarchy.nlevels:
            raise ValueError(
                f"{self.nlevels} rasters for {hierarchy.nlevels} levels"
            )
        for level in hierarchy:
            m = self.maps[level.index]
            expected_shape = hierarchy.level_domain(level.index).shape
            if m.shape != expected_shape:
                raise ValueError(
                    f"level {level.index} raster shape {m.shape} != "
                    f"domain {expected_shape}"
                )
            m.validate_disjoint()
            owned = m.ncells
            refined = level.ncells
            covered = intersection_volume(
                [b for b, _ in m.boxes()], level.patches.boxes
            )
            missing = refined - covered
            extra = owned - covered
            if missing or extra:
                raise ValueError(
                    f"level {level.index}: {missing} refined cells unowned, "
                    f"{extra} unrefined cells owned"
                )
            if m.nboxes:
                vals = m.ranks
                if vals.min() < 0 or vals.max() >= self.nprocs:
                    raise ValueError(
                        f"level {level.index}: owner ranks outside "
                        f"[0, {self.nprocs})"
                    )

    def loads(self, hierarchy: GridHierarchy) -> np.ndarray:
        """Per-rank computational load (cells x local steps per coarse step)."""
        return proc_loads(self, hierarchy)


def proc_loads(result: PartitionResult, hierarchy: GridHierarchy) -> np.ndarray:
    """Per-rank workload of a distribution: ``sum_l w_l * cells_l(rank)``."""
    loads = np.zeros(result.nprocs, dtype=np.float64)
    for level, m in zip(hierarchy, result.maps):
        if m.nboxes:
            counts = m.rank_cell_counts(result.nprocs)
            loads += counts * float(level.time_refinement_weight())
    return loads


class Partitioner(abc.ABC):
    """Base class of all partitioning strategies.

    Subclasses implement :meth:`partition`; ``previous`` carries the last
    distribution so incremental strategies (the sticky remapper) can
    minimize data migration.  Stateless strategies ignore it.
    """

    #: short identifier used in experiment tables
    name: str = "abstract"

    @abc.abstractmethod
    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        """Distribute ``hierarchy`` over ``nprocs`` ranks."""

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        """Modeled partitioning cost (dimension-II input).

        Default model: linear in total cells and patch count.  Subclasses
        scale it by their own complexity factor.
        """
        return 1e-7 * hierarchy.ncells + 1e-5 * hierarchy.npatches

    def describe(self) -> dict:
        """Parameter dictionary for experiment provenance."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"
