"""Partitioner interfaces and the distribution container.

A partitioner maps a :class:`~repro.hierarchy.GridHierarchy` onto ``P``
processors.  Distributions are represented as per-level *owner rasters*:
dense ``int32`` arrays over each level's index space holding the owning
rank for refined cells and :data:`~repro.geometry.NO_OWNER` elsewhere.
Rasters keep every downstream metric (load, ghost communication,
migration) a vectorized numpy reduction.

The P of the paper's PAC-triple is a :class:`Partitioner` instance; its
parameters are what the meta-partitioner tunes at run time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..geometry import NO_OWNER
from ..hierarchy import GridHierarchy

__all__ = ["PartitionResult", "Partitioner", "level_weights", "proc_loads"]


def level_weights(hierarchy: GridHierarchy) -> list[int]:
    """Per-cell workload weight of each level: local steps per coarse step."""
    return [level.time_refinement_weight() for level in hierarchy]


@dataclass(frozen=True)
class PartitionResult:
    """A distribution of one hierarchy over ``nprocs`` ranks.

    Parameters
    ----------
    owners :
        One raster per level; shape equals the level's index space, values
        in ``{NO_OWNER} ∪ [0, nprocs)``, with exactly the refined cells
        owned.
    nprocs :
        Number of processors.
    partition_seconds :
        Modeled cost of computing this distribution (consumed by the
        dimension-II speed-vs-quality trade-off).
    """

    owners: tuple[np.ndarray, ...]
    nprocs: int
    partition_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        object.__setattr__(self, "owners", tuple(self.owners))
        for raster in self.owners:
            if raster.dtype != np.int32:
                raise ValueError("owner rasters must be int32")

    @property
    def nlevels(self) -> int:
        """Number of level rasters."""
        return len(self.owners)

    def validate(self, hierarchy: GridHierarchy) -> None:
        """Check the distribution is complete and consistent.

        Every refined cell of every level must be owned by a valid rank and
        no unrefined cell may be owned.
        """
        if self.nlevels != hierarchy.nlevels:
            raise ValueError(
                f"{self.nlevels} rasters for {hierarchy.nlevels} levels"
            )
        for level in hierarchy:
            raster = self.owners[level.index]
            expected_shape = hierarchy.level_domain(level.index).shape
            if raster.shape != expected_shape:
                raise ValueError(
                    f"level {level.index} raster shape {raster.shape} != "
                    f"domain {expected_shape}"
                )
            mask = hierarchy.level_mask(level.index)
            owned = raster != NO_OWNER
            if not (owned == mask).all():
                missing = int((mask & ~owned).sum())
                extra = int((owned & ~mask).sum())
                raise ValueError(
                    f"level {level.index}: {missing} refined cells unowned, "
                    f"{extra} unrefined cells owned"
                )
            if owned.any():
                vals = raster[owned]
                if vals.min() < 0 or vals.max() >= self.nprocs:
                    raise ValueError(
                        f"level {level.index}: owner ranks outside [0, {self.nprocs})"
                    )

    def loads(self, hierarchy: GridHierarchy) -> np.ndarray:
        """Per-rank computational load (cells x local steps per coarse step)."""
        return proc_loads(self, hierarchy)


def proc_loads(result: PartitionResult, hierarchy: GridHierarchy) -> np.ndarray:
    """Per-rank workload of a distribution: ``sum_l w_l * cells_l(rank)``."""
    loads = np.zeros(result.nprocs, dtype=np.float64)
    for level, raster in zip(hierarchy, result.owners):
        owned = raster[raster != NO_OWNER]
        if owned.size:
            counts = np.bincount(owned, minlength=result.nprocs)
            loads += counts * float(level.time_refinement_weight())
    return loads


class Partitioner(abc.ABC):
    """Base class of all partitioning strategies.

    Subclasses implement :meth:`partition`; ``previous`` carries the last
    distribution so incremental strategies (the sticky remapper) can
    minimize data migration.  Stateless strategies ignore it.
    """

    #: short identifier used in experiment tables
    name: str = "abstract"

    @abc.abstractmethod
    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        """Distribute ``hierarchy`` over ``nprocs`` ranks."""

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        """Modeled partitioning cost (dimension-II input).

        Default model: linear in total cells and patch count.  Subclasses
        scale it by their own complexity factor.
        """
        return 1e-7 * hierarchy.ncells + 1e-5 * hierarchy.npatches

    def describe(self) -> dict:
        """Parameter dictionary for experiment provenance."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"
