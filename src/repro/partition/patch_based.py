"""Patch-based partitioners.

Patch-based strategies (section 2.2, e.g. SAMRAI's mapping) make
distribution decisions *per patch, per level*: each level of the hierarchy
is load-balanced independently, a patch being kept whole, split, or spread
over ranks.  The advantages are manageable load imbalance and no forced
repartitioning at regrid; the shortcomings are serialization bottlenecks
and inter-level communication, because parents and children generally land
on different ranks.

Two classic disciplines are provided:

* **greedy LPT** (longest processing time): sort patches by weight, assign
  each to the least-loaded rank, optionally chopping patches that exceed
  the average load first.
* **round-robin**: the naive uniform spread the paper attributes to early
  patch-based frameworks.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..geometry import Box, OwnerMap
from ..hierarchy import GridHierarchy
from .base import PartitionResult, Partitioner

__all__ = ["PatchBasedPartitioner"]


class PatchBasedPartitioner(Partitioner):
    """Per-level patch distribution.

    Parameters
    ----------
    strategy :
        ``"lpt"`` (greedy least-loaded) or ``"round-robin"``.
    split_oversized :
        Chop patches heavier than the mean rank load before assignment
        (LPT only) — this is what keeps patch-based imbalance "manageable".
    """

    name = "patch-based"

    def __init__(self, strategy: str = "lpt", split_oversized: bool = True) -> None:
        if strategy not in ("lpt", "round-robin"):
            raise ValueError("strategy must be 'lpt' or 'round-robin'")
        self.strategy = strategy
        self.split_oversized = split_oversized

    def describe(self) -> dict:
        return {
            "name": self.name,
            "strategy": self.strategy,
            "split_oversized": self.split_oversized,
        }

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        # Patch-based decisions touch patches, not cells: cheap.
        return 5e-6 * hierarchy.npatches + 1e-6 * nprocs

    # -- assignment disciplines ---------------------------------------------
    @staticmethod
    def _round_robin(boxes: list[Box], nprocs: int) -> list[tuple[Box, int]]:
        return [(box, i % nprocs) for i, box in enumerate(boxes)]

    @staticmethod
    def _lpt(
        boxes: list[Box], weights: list[float], nprocs: int
    ) -> list[tuple[Box, int]]:
        order = sorted(range(len(boxes)), key=lambda i: -weights[i])
        heap = [(0.0, p) for p in range(nprocs)]
        heapq.heapify(heap)
        out: list[tuple[Box, int]] = []
        for i in order:
            load, p = heapq.heappop(heap)
            out.append((boxes[i], p))
            heapq.heappush(heap, (load + weights[i], p))
        return out

    def _maybe_split(
        self, boxes: list[Box], weight_per_cell: float, nprocs: int
    ) -> list[Box]:
        """Chop patches exceeding the per-rank average load."""
        total = sum(b.ncells for b in boxes) * weight_per_cell
        if total == 0:
            return boxes
        cap_cells = max(1.0, total / nprocs / weight_per_cell)
        out: list[Box] = []
        queue = list(boxes)
        while queue:
            box = queue.pop()
            if box.ncells <= cap_cells:
                out.append(box)
                continue
            d = int(np.argmax(box.shape))
            if box.shape[d] < 2:
                out.append(box)
                continue
            lo, hi = box.split(d, box.lo[d] + box.shape[d] // 2)
            queue.extend([lo, hi])
        return out

    # -- Partitioner interface -------------------------------------------------
    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        """Distribute each level independently."""
        maps = []
        for level in hierarchy:
            domain = hierarchy.level_domain(level.index)
            boxes = list(level.patches)
            w = float(level.time_refinement_weight())
            if not boxes:
                maps.append(OwnerMap.empty(domain.shape))
                continue
            if self.strategy == "round-robin":
                assignments = self._round_robin(boxes, nprocs)
            else:
                if self.split_oversized:
                    boxes = self._maybe_split(boxes, w, nprocs)
                weights = [b.ncells * w for b in boxes]
                assignments = self._lpt(boxes, weights, nprocs)
            maps.append(OwnerMap.from_assignments(assignments, domain))
        return PartitionResult(
            maps=tuple(maps),
            nprocs=nprocs,
            partition_seconds=self.cost_seconds(hierarchy, nprocs),
        )
