"""Chains-on-chains partitioning: cut a weighted sequence into P segments.

Every SFC-based partitioner reduces to this 1-D problem: given workload
weights along the curve, choose ``P - 1`` cut points so the heaviest
segment is as light as possible.  We provide the classic greedy
prefix-sum heuristic (linear time, what production SAMR partitioners use
at scale) and an exact parametric-search solver (used by the "high
quality" partitioner configurations the dimension-II trade-off can buy).
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_chains", "exact_chains", "segments_to_ranks"]


def _validate(weights: np.ndarray, nparts: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be a 1-d array")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    return weights


def greedy_chains(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Greedy prefix cut: close a segment once it reaches ``total/nparts``.

    Returns the boundary array ``bounds`` of length ``nparts + 1`` with
    ``bounds[0] == 0`` and ``bounds[-1] == len(weights)``; part ``p`` owns
    ``weights[bounds[p]:bounds[p+1]]``.  Runs in O(n) via searchsorted.
    """
    weights = _validate(weights, nparts)
    n = weights.size
    if nparts == 1 or n == 0:
        return np.array([0] + [n] * nparts, dtype=np.int64)
    prefix = np.cumsum(weights)
    total = prefix[-1]
    targets = total * np.arange(1, nparts, dtype=np.float64) / nparts
    # Cut after the element whose prefix first reaches the target.
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    cuts = np.clip(cuts, 1, n)
    bounds = np.concatenate(([0], cuts, [n]))
    # Enforce monotonicity (degenerate when many zero weights collapse cuts).
    bounds = np.maximum.accumulate(bounds)
    return bounds.astype(np.int64)


def exact_chains(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Optimal contiguous partition minimizing the maximum segment weight.

    Parametric search on the bottleneck value with a greedy feasibility
    probe: O(n log(total/eps)).  Ties are broken by cutting as early as
    possible, matching :func:`greedy_chains` boundary conventions.
    """
    weights = _validate(weights, nparts)
    n = weights.size
    if nparts == 1 or n == 0:
        return np.array([0] + [n] * nparts, dtype=np.int64)
    prefix = np.concatenate(([0.0], np.cumsum(weights)))
    total = prefix[-1]
    wmax = weights.max() if n else 0.0

    def feasible(cap: float) -> bool:
        parts = 0
        start = 0
        while start < n:
            # Furthest end with segment weight <= cap.
            end = int(np.searchsorted(prefix, prefix[start] + cap, side="right")) - 1
            if end <= start:
                return False
            start = end
            parts += 1
            if parts > nparts:
                return False
        return parts <= nparts

    lo, hi = max(wmax, total / nparts), total
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    cap = hi * (1 + 1e-12)
    bounds = [0]
    start = 0
    remaining = nparts
    while remaining > 1:
        # Leave enough weight for the remaining parts to stay feasible; the
        # greedy-forward end is always feasible after the parametric search.
        end = int(np.searchsorted(prefix, prefix[start] + cap, side="right")) - 1
        end = min(max(end, start + 1), n)
        bounds.append(end)
        start = end
        remaining -= 1
    bounds.append(n)
    out = np.maximum.accumulate(np.array(bounds, dtype=np.int64))
    return np.minimum(out, n)


def segments_to_ranks(bounds: np.ndarray, n: int) -> np.ndarray:
    """Expand segment boundaries to a per-element rank array."""
    bounds = np.asarray(bounds, dtype=np.int64)
    nparts = bounds.size - 1
    ranks = np.empty(n, dtype=np.int32)
    for p in range(nparts):
        ranks[bounds[p] : bounds[p + 1]] = p
    return ranks
