"""Partitioning strategies for SAMR grid hierarchies.

The P component of the paper's PAC-triple.  Families (section 2.2):

* :class:`DomainSfcPartitioner` — strictly domain-based SFC decomposition
  (no inter-level communication; imbalance risk on deep hierarchies);
* :class:`PatchBasedPartitioner` — per-level patch distribution (balanced
  levels; inter-level communication);
* :class:`NaturePlusFable` — the hybrid Hue/Core bi-level partitioner the
  paper's experiments use;
* :class:`StickyRepartitioner` — migration-minimizing incremental wrapper
  (the "diffusion-like" option of trade-off 3).
"""

from .base import PartitionResult, Partitioner, level_weights, proc_loads
from .chains import exact_chains, greedy_chains, segments_to_ranks
from .domain_sfc import DomainSfcPartitioner, column_workloads
from .hybrid import NatureFableParams, NaturePlusFable
from .patch_based import PatchBasedPartitioner
from .sticky import StickyRepartitioner

__all__ = [
    "PartitionResult",
    "Partitioner",
    "level_weights",
    "proc_loads",
    "exact_chains",
    "greedy_chains",
    "segments_to_ranks",
    "DomainSfcPartitioner",
    "column_workloads",
    "NatureFableParams",
    "NaturePlusFable",
    "PatchBasedPartitioner",
    "StickyRepartitioner",
]
