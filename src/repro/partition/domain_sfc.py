"""Strictly domain-based SFC partitioner.

Domain-based partitioners (section 2.2) partition the *physical domain*
rather than the grids: the base grid is decomposed into atomic units, each
unit carries the full workload of the column of refined cells above it,
and units are assigned whole — so all levels overlying a base-grid region
land on the same rank.  This eliminates inter-level communication and
exposes all parallelism, at the cost of intractable load imbalance for
deep, localized hierarchies ("bad cuts").

Implementation: atomic units are ``unit_size``-sided blocks of base cells
(squares in 2-D, cubes in 3-D, ...) ordered along a space-filling curve;
unit weights are the exact column workloads, accumulated *sparsely* from
the patch boxes (per-patch block-overlap volumes — no fine-level rasters
are ever materialized, so paper-scale 3-D hierarchies stay cheap);
chains-on-chains splits the 1-D sequence and the per-level owner maps are
the unit blocks refined to each level and clipped against its patches.
The unit-vs-patch clipping runs through the pair-index-accelerated
:func:`~repro.geometry.pair_intersections`, keeping the overlap query
near-linear in blocks + patches at ``deep``/``ultra`` scale.
"""

from __future__ import annotations

import numpy as np

from ..geometry import (
    OwnerMap,
    add_box_overlap,
    box_corners,
    boxes_from_labels,
    pair_intersections,
)
from ..hierarchy import GridHierarchy
from ..sfc import sfc_order_nd
from .base import PartitionResult, Partitioner
from .chains import exact_chains, greedy_chains, segments_to_ranks

__all__ = ["DomainSfcPartitioner", "column_workloads"]


def column_workloads(
    hierarchy: GridHierarchy, unit_size: int
) -> np.ndarray:
    """Workload of each atomic-unit column, shape ``base_shape // unit``.

    The weight of a unit is ``sum_l w_l * (refined cells of level l above
    the unit)`` with ``w_l`` the time-refinement weight — exactly the work
    a rank inherits by owning that piece of the domain.  Works for any
    spatial dimensionality of the hierarchy.  Computed patch by patch via
    block-overlap volumes (all integer-valued, so the float accumulation
    is exact and identical to the dense ``block_sum`` of the level masks).
    """
    base_shape = hierarchy.domain.shape
    if any(s % unit_size for s in base_shape):
        raise ValueError(
            f"unit_size {unit_size} does not divide base shape {base_shape}"
        )
    unit_shape = tuple(s // unit_size for s in base_shape)
    weights = np.zeros(unit_shape, dtype=np.float64)
    for level in hierarchy:
        ratio = hierarchy.cumulative_ratio(level.index)
        block = unit_size * ratio  # fine cells per unit per axis
        w = float(level.time_refinement_weight())
        for patch in level.patches:
            add_box_overlap(weights, patch, block, w)
    return weights


class DomainSfcPartitioner(Partitioner):
    """Space-filling-curve domain decomposition.

    Parameters
    ----------
    curve :
        ``"hilbert"`` (fully ordered — the expensive, high-locality option
        the paper mentions under trade-off 3) or ``"morton"`` (partially
        ordered, cheaper).
    unit_size :
        Atomic-unit side length in base cells.  Small units improve load
        balance; large units improve locality (the Nature+Fable "atomic
        unit" steering parameter).
    exact :
        Use the optimal chains-on-chains solver instead of the greedy one
        (the speed-vs-quality knob of dimension II).
    """

    name = "domain-sfc"

    def __init__(
        self, curve: str = "hilbert", unit_size: int = 2, exact: bool = False
    ) -> None:
        if curve not in ("hilbert", "morton"):
            raise ValueError("curve must be 'hilbert' or 'morton'")
        if unit_size < 1:
            raise ValueError("unit_size must be >= 1")
        self.curve = curve
        self.unit_size = unit_size
        self.exact = exact

    def describe(self) -> dict:
        return {
            "name": self.name,
            "curve": self.curve,
            "unit_size": self.unit_size,
            "exact": self.exact,
        }

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        base = super().cost_seconds(hierarchy, nprocs)
        factor = 2.5 if self.curve == "hilbert" else 1.0
        if self.exact:
            factor *= 4.0
        return base * factor

    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        """Assign atomic-unit columns to ranks along the curve."""
        weights = column_workloads(hierarchy, self.unit_size)
        unit_shape = weights.shape
        coords = [c.ravel() for c in np.indices(unit_shape)]
        order_bits = max(1, int(np.ceil(np.log2(max(unit_shape)))))
        order = sfc_order_nd(coords, curve=self.curve, order=order_bits)
        seq_weights = weights.ravel()[order]
        solver = exact_chains if self.exact else greedy_chains
        bounds = solver(seq_weights, nprocs)
        seq_ranks = segments_to_ranks(bounds, seq_weights.size)
        unit_owner = np.empty(weights.size, dtype=np.int32)
        unit_owner[order] = seq_ranks
        unit_owner = unit_owner.reshape(unit_shape)
        # Sparse expansion: unit blocks -> rank boxes -> clip per level.
        unit_boxes, unit_ranks = boxes_from_labels(unit_owner)
        unit_corners = box_corners(unit_boxes, hierarchy.ndim)
        unit_ranks = np.asarray(unit_ranks, dtype=np.int32)
        maps = []
        for level in hierarchy:
            scale = self.unit_size * hierarchy.cumulative_ratio(level.index)
            patch_corners = box_corners(
                level.patches.boxes, hierarchy.ndim
            )
            corners, ai, _ = pair_intersections(
                unit_corners * scale, patch_corners
            )
            maps.append(
                OwnerMap(
                    hierarchy.level_domain(level.index).shape,
                    corners,
                    unit_ranks[ai],
                )
            )
        return PartitionResult(
            maps=tuple(maps),
            nprocs=nprocs,
            partition_seconds=self.cost_seconds(hierarchy, nprocs),
        )
