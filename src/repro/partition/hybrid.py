"""Nature+Fable: the hybrid partitioner used in the paper's validation.

Nature+Fable (Natural Regions + Fractional blocking and bi-level
partitioning, section 2.2) is the Uppsala/Rutgers hybrid that the paper
partitions all four traces with ("static 'default' values", section
5.1.2).  Its structure, reproduced here:

1. **Hue/Core separation** (strictly domain-based): the base grid is split
   into homogeneous unrefined regions (*Hues*, level-0 cells only) and
   complex refined regions (*Cores*, a base-grid portion plus all overlaid
   refined grids).  Cores are the connected components of the refined
   footprint.
2. **Meta-partitioning**: each Core (and the Hue remainder) becomes a
   meta-partition mapped to a contiguous group of processors sized
   proportionally to its workload.
3. **Bi-level clustering**: inside a Core, refinement levels are clustered
   pairwise into bi-levels ``(0,1), (2,3), ...``; both levels of a
   bi-level share one decomposition, eliminating intra-bi-level parent-
   child communication.
4. **Expert blocking**: each bi-level region is decomposed into atomic
   blocks, ordered along an SFC ("partially ordered", i.e. Morton, per the
   paper's remark), and assigned to the group's ranks; the same blocking
   engine partitions the Hues.

Steering parameters (section 4, "to focus on load balance ... choose a
small atomic unit, select a large Q, choose fractional blocking"):
``atomic_unit`` (block side), ``q`` (chunks per rank in the coarse
assignment; ``q > 1`` trades locality for balance via LPT over chunks) and
``fractional_blocking`` (cell-granularity boundary blocks).

Representation: only base-grid arrays are ever materialized.  Bi-level
block weights are accumulated patch by patch (exact integer-valued
block-overlap volumes, identical to the dense ``block_sum`` of the level
masks) into a unit grid *windowed to the Core's bounding box*, unit
assignment enumerates only the non-empty units sparsely (no
``np.indices`` raster over the unit grid — the last volume-proportional
allocation), and the per-level output is a sparse
:class:`~repro.geometry.OwnerMap` — the unit blocks clipped against the
level's patches inside the Core — so deep 3-D hierarchies never allocate
a fine-level raster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..geometry import (
    Box,
    OwnerMap,
    add_box_overlap,
    box_corners,
    boxes_from_mask,
    pair_intersections,
)
from ..hierarchy import GridHierarchy
from ..sfc import sfc_order_nd
from .base import PartitionResult, Partitioner
from .chains import greedy_chains, segments_to_ranks

__all__ = ["NatureFableParams", "NaturePlusFable"]


@dataclass(frozen=True, slots=True)
class NatureFableParams:
    """Steering parameters of Nature+Fable (the paper's defaults)."""

    atomic_unit: int = 4
    q: int = 1
    fractional_blocking: bool = False
    curve: str = "morton"
    bilevel_size: int = 2

    def __post_init__(self) -> None:
        if self.atomic_unit < 1:
            raise ValueError("atomic_unit must be >= 1")
        if self.q < 1:
            raise ValueError("q must be >= 1")
        if self.curve not in ("morton", "hilbert"):
            raise ValueError("curve must be 'morton' or 'hilbert'")
        if self.bilevel_size < 1:
            raise ValueError("bilevel_size must be >= 1")

    def balance_focused(self) -> "NatureFableParams":
        """The load-balance-focused configuration of section 4."""
        return NatureFableParams(
            atomic_unit=1,
            q=max(2, self.q),
            fractional_blocking=True,
            curve=self.curve,
            bilevel_size=self.bilevel_size,
        )

    def locality_focused(self) -> "NatureFableParams":
        """The communication-focused configuration (large blocks, contiguous)."""
        return NatureFableParams(
            atomic_unit=max(4, self.atomic_unit),
            q=1,
            fractional_blocking=False,
            curve="hilbert",
            bilevel_size=self.bilevel_size,
        )


def _assign_sequence(
    weights: np.ndarray, ranks: np.ndarray, q: int
) -> np.ndarray:
    """Assign an SFC-ordered weight sequence to the given ranks.

    ``q == 1``: contiguous chains (maximum locality).  ``q > 1``: the
    sequence is cut into ``len(ranks) * q`` equal-weight chunks which are
    then LPT-balanced over the ranks — better balance, more surface.
    Returns a per-element rank array.
    """
    g = ranks.size
    if g == 1:
        return np.full(weights.size, ranks[0], dtype=np.int32)
    if q == 1:
        bounds = greedy_chains(weights, g)
        local = segments_to_ranks(bounds, weights.size)
        return ranks[local].astype(np.int32)
    nchunks = g * q
    bounds = greedy_chains(weights, nchunks)
    chunk_weights = np.add.reduceat(
        np.concatenate((weights, [0.0])), np.minimum(bounds[:-1], weights.size)
    )
    chunk_weights[bounds[:-1] == bounds[1:]] = 0.0
    heap = [(0.0, int(r)) for r in ranks]
    heapq.heapify(heap)
    order = np.argsort(-chunk_weights, kind="stable")
    chunk_rank = np.empty(nchunks, dtype=np.int32)
    for c in order:
        load, r = heapq.heappop(heap)
        chunk_rank[c] = r
        heapq.heappush(heap, (load + float(chunk_weights[c]), r))
    out = np.empty(weights.size, dtype=np.int32)
    for c in range(nchunks):
        out[bounds[c] : bounds[c + 1]] = chunk_rank[c]
    return out


def _merge_unit_runs(
    coords: np.ndarray, ranks: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge same-rank unit cells into runs along the last axis.

    ``coords`` is ``(k, ndim)`` integer cell coordinates (any order,
    no duplicates) with a rank per cell; returns ``(corners, ranks)``
    of maximal row-major runs — the sparse replacement for lifting a
    dense unit-owner raster through ``boxes_from_labels``.
    """
    k, ndim = coords.shape
    if k == 0:
        return np.empty((0, 2 * ndim), dtype=np.int64), ranks[:0]
    # Row-major: axis 0 is the primary sort key (lexsort's last key).
    order = np.lexsort(tuple(coords[:, d] for d in range(ndim - 1, -1, -1)))
    c = coords[order]
    r = ranks[order]
    breaks = np.ones(k, dtype=bool)
    breaks[1:] = (
        (r[1:] != r[:-1])
        | (c[1:, :-1] != c[:-1, :-1]).any(axis=1)
        | (c[1:, -1] != c[:-1, -1] + 1)
    )
    starts = np.flatnonzero(breaks)
    ends = np.append(starts[1:], k)
    corners = np.concatenate((c[starts], c[ends - 1] + 1), axis=1)
    return corners.astype(np.int64), r[starts]


class NaturePlusFable(Partitioner):
    """The hybrid Hue/Core bi-level partitioner (see module docstring)."""

    name = "nature+fable"

    def __init__(self, params: NatureFableParams | None = None) -> None:
        self.params = params or NatureFableParams()

    def describe(self) -> dict:
        p = self.params
        return {
            "name": self.name,
            "atomic_unit": p.atomic_unit,
            "q": p.q,
            "fractional_blocking": p.fractional_blocking,
            "curve": p.curve,
            "bilevel_size": p.bilevel_size,
        }

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        base = super().cost_seconds(hierarchy, nprocs)
        factor = 1.5 + 0.5 * self.params.q
        if self.params.fractional_blocking:
            factor += 0.5
        if self.params.curve == "hilbert":
            factor += 1.0
        return base * factor

    # ------------------------------------------------------------------
    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        ndim = hierarchy.ndim
        # Per-level accumulators of (corner rows, ranks) assignment pieces.
        parts: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(hierarchy.nlevels)
        ]
        # --- 1. Hue/Core separation -----------------------------------
        refined = hierarchy.refined_mask_on_base()
        labels, ncores = ndimage.label(refined)
        hue_mask = ~refined
        # Workloads: column workload of each base cell.
        col_work = self._column_work(hierarchy)
        core_work = ndimage.sum_labels(
            col_work, labels, index=np.arange(1, ncores + 1)
        ) if ncores else np.zeros(0)
        hue_work = float(col_work[hue_mask].sum())
        # --- 2. Meta-partitioning: contiguous rank groups --------------
        regions = [("hue", hue_mask, hue_work)] if hue_mask.any() else []
        for c in range(ncores):
            regions.append((f"core{c}", labels == c + 1, float(core_work[c])))
        groups = self._allocate_groups([w for _, _, w in regions], nprocs)
        # --- 3+4. Blocking within each meta-partition -------------------
        for (kind, mask, _), ranks in zip(regions, groups):
            if kind == "hue":
                self._block_hue(mask, ranks, parts)
            else:
                self._block_core(hierarchy, mask, ranks, parts)
        maps = []
        for l in range(hierarchy.nlevels):
            shape = hierarchy.level_domain(l).shape
            if parts[l]:
                corners = np.concatenate([c for c, _ in parts[l]])
                ranks_arr = np.concatenate([r for _, r in parts[l]])
                maps.append(OwnerMap(shape, corners, ranks_arr))
            else:
                maps.append(OwnerMap.empty(shape))
        return PartitionResult(
            maps=tuple(maps),
            nprocs=nprocs,
            partition_seconds=self.cost_seconds(hierarchy, nprocs),
        )

    # ------------------------------------------------------------------
    def _column_work(self, hierarchy: GridHierarchy) -> np.ndarray:
        """Workload of the refinement column above each base cell.

        Accumulated patch by patch (integer-valued overlap volumes — exact
        in float64, identical to the dense mask ``block_sum``).
        """
        work = np.zeros(hierarchy.domain.shape, dtype=np.float64)
        for level in hierarchy:
            ratio = hierarchy.cumulative_ratio(level.index)
            w = float(level.time_refinement_weight())
            for patch in level.patches:
                add_box_overlap(work, patch, ratio, w)
        return work

    @staticmethod
    def _allocate_groups(workloads: list[float], nprocs: int) -> list[np.ndarray]:
        """Contiguous rank ranges proportional to workload (>= 1 rank each).

        Group boundaries are the *rounded cumulative* workload fractions,
        so a small drift in one region's workload moves at most the
        adjacent boundary by one rank — keeping rank assignment stable
        across regrids (wholesale group reshuffles would show up as pure
        partitioner-noise data migration).
        """
        n = len(workloads)
        if n == 0:
            return []
        w = np.asarray(workloads, dtype=np.float64)
        w = np.maximum(w, 1e-12)
        if n >= nprocs:
            # More meta-partitions than ranks: round-robin whole groups.
            return [np.array([i % nprocs]) for i in range(n)]
        cum = np.concatenate(([0.0], np.cumsum(w))) / w.sum()
        bounds = np.rint(cum * nprocs).astype(np.int64)
        bounds[0], bounds[-1] = 0, nprocs
        # Guarantee non-empty groups by nudging collapsed boundaries.
        for i in range(1, n + 1):
            if bounds[i] <= bounds[i - 1]:
                bounds[i] = bounds[i - 1] + 1
        overflow = bounds[-1] - nprocs
        if overflow > 0:
            # Pull back from the right while preserving >= 1 rank each.
            for i in range(n - 1, 0, -1):
                if overflow == 0:
                    break
                shrinkable = bounds[i] - bounds[i - 1] - 1
                give = min(shrinkable, overflow)
                bounds[i:n] -= give
                overflow -= give
            bounds[-1] = nprocs
        return [np.arange(bounds[i], bounds[i + 1]) for i in range(n)]

    def _block_hue(
        self,
        mask: np.ndarray,
        ranks: np.ndarray,
        parts: list[list[tuple[np.ndarray, np.ndarray]]],
    ) -> None:
        """Expert blocking of the unrefined base-grid remainder (level 0).

        The hue lives at base-grid resolution; its cells are enumerated
        sparsely and merged into same-rank runs — no owner raster.
        """
        unit_w = np.where(mask, 1.0, 0.0)
        coords, seq_rank = self._assign_units(unit_w, ranks)
        corners, run_ranks = _merge_unit_runs(coords, seq_rank)
        if corners.shape[0]:
            parts[0].append((corners, run_ranks))

    def _block_core(
        self,
        hierarchy: GridHierarchy,
        core_mask: np.ndarray,
        ranks: np.ndarray,
        parts: list[list[tuple[np.ndarray, np.ndarray]]],
    ) -> None:
        """Bi-level blocking of one Core region, rasterless.

        Per bi-level, the atomic-unit weight grid (at the bi-level's
        coarse resolution divided by the unit side) is accumulated from
        the member levels' patches clipped to the Core; units are
        SFC-assigned exactly as the dense path did, and each member
        level's owner map is the unit blocks refined to the level and
        clipped against its in-Core patches.
        """
        p = self.params
        ndim = core_mask.ndim
        nlev = hierarchy.nlevels
        core_corners = box_corners(boxes_from_mask(core_mask), ndim)
        # Base-grid bounding box of the Core: the unit weight grid only
        # needs to cover it.  At fractional blocking (unit == 1) a
        # full-domain unit grid would be the last volume-proportional
        # dense array in the partitioner; the window keeps it O(Core).
        core_lo = core_corners[:, :ndim].min(axis=0)
        core_hi = core_corners[:, ndim:].max(axis=0)
        for lc in range(0, nlev, p.bilevel_size):
            lf_range = range(lc, min(lc + p.bilevel_size, nlev))
            coarse_ratio = hierarchy.cumulative_ratio(lc)
            coarse_shape = tuple(s * coarse_ratio for s in core_mask.shape)
            unit = 1 if p.fractional_blocking else p.atomic_unit
            unit_shape = tuple(-(-s // unit) for s in coarse_shape)
            win_lo = (core_lo * coarse_ratio) // unit
            win_hi = -(-(core_hi * coarse_ratio) // unit)
            unit_w = np.zeros(tuple(win_hi - win_lo), dtype=np.float64)
            clipped: dict[int, np.ndarray] = {}
            for lf in lf_range:
                sub = hierarchy.cumulative_ratio(lf) // coarse_ratio
                patch_corners = box_corners(
                    hierarchy[lf].patches.boxes, ndim
                )
                sect, _, _ = pair_intersections(
                    patch_corners, core_corners * (coarse_ratio * sub)
                )
                clipped[lf] = sect
                w = float(hierarchy[lf].time_refinement_weight())
                block = unit * sub
                shift = np.concatenate((win_lo, win_lo)) * block
                for row in sect - shift:
                    add_box_overlap(
                        unit_w,
                        Box(tuple(row[:ndim]), tuple(row[ndim:])),
                        block,
                        w,
                    )
            if not (unit_w > 0).any():
                continue
            coords, seq_rank = self._assign_units(
                unit_w, ranks, origin=win_lo, unit_shape=unit_shape
            )
            unit_box_corners, unit_ranks = _merge_unit_runs(coords, seq_rank)
            unit_corners = unit_box_corners * unit
            # Paint every member level of the bi-level from one decomposition.
            for lf in lf_range:
                sub = hierarchy.cumulative_ratio(lf) // coarse_ratio
                sect, ai, _ = pair_intersections(
                    unit_corners * sub, clipped[lf]
                )
                if sect.shape[0]:
                    parts[lf].append((sect, unit_ranks[ai]))

    def _assign_units(
        self,
        unit_w: np.ndarray,
        ranks: np.ndarray,
        origin: np.ndarray | None = None,
        unit_shape: tuple[int, ...] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """SFC-ordered assignment of non-empty atomic units to ranks.

        ``unit_w`` may be a window into a larger unit grid: ``origin`` is
        the window's offset (coordinates are made absolute *before* the
        SFC ordering) and ``unit_shape`` the full grid's extents (fixing
        the curve's order bits), so a windowed call assigns exactly what
        a full-grid call would.  Only units with positive weight are
        enumerated — ``(k, ndim)`` coordinates in SFC order plus a rank
        per unit; no dense owner raster exists at any point.  Every cell
        the bi-level must own lies in a unit with positive weight (the
        weights are integer counts times positive level weights).
        """
        p = self.params
        if unit_shape is None:
            unit_shape = unit_w.shape
        nonzero = np.nonzero(unit_w > 0)
        coords = np.stack(nonzero, axis=1).astype(np.int64)
        if origin is not None:
            coords += np.asarray(origin, dtype=np.int64)
        order_bits = max(1, int(np.ceil(np.log2(max(unit_shape)))))
        order = sfc_order_nd(
            [coords[:, d] for d in range(coords.shape[1])],
            curve=p.curve,
            order=order_bits,
        )
        seq_w = unit_w[nonzero][order]
        seq_rank = _assign_sequence(seq_w, ranks, p.q)
        return coords[order], seq_rank
