"""Nature+Fable: the hybrid partitioner used in the paper's validation.

Nature+Fable (Natural Regions + Fractional blocking and bi-level
partitioning, section 2.2) is the Uppsala/Rutgers hybrid that the paper
partitions all four traces with ("static 'default' values", section
5.1.2).  Its structure, reproduced here:

1. **Hue/Core separation** (strictly domain-based): the base grid is split
   into homogeneous unrefined regions (*Hues*, level-0 cells only) and
   complex refined regions (*Cores*, a base-grid portion plus all overlaid
   refined grids).  Cores are the connected components of the refined
   footprint.
2. **Meta-partitioning**: each Core (and the Hue remainder) becomes a
   meta-partition mapped to a contiguous group of processors sized
   proportionally to its workload.
3. **Bi-level clustering**: inside a Core, refinement levels are clustered
   pairwise into bi-levels ``(0,1), (2,3), ...``; both levels of a
   bi-level share one decomposition, eliminating intra-bi-level parent-
   child communication.
4. **Expert blocking**: each bi-level region is decomposed into atomic
   blocks, ordered along an SFC ("partially ordered", i.e. Morton, per the
   paper's remark), and assigned to the group's ranks; the same blocking
   engine partitions the Hues.

Steering parameters (section 4, "to focus on load balance ... choose a
small atomic unit, select a large Q, choose fractional blocking"):
``atomic_unit`` (block side), ``q`` (chunks per rank in the coarse
assignment; ``q > 1`` trades locality for balance via LPT over chunks) and
``fractional_blocking`` (cell-granularity boundary blocks).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..geometry import NO_OWNER, block_sum, upsample
from ..hierarchy import GridHierarchy
from ..sfc import sfc_order_nd
from .base import PartitionResult, Partitioner
from .chains import greedy_chains, segments_to_ranks

__all__ = ["NatureFableParams", "NaturePlusFable"]


@dataclass(frozen=True, slots=True)
class NatureFableParams:
    """Steering parameters of Nature+Fable (the paper's defaults)."""

    atomic_unit: int = 4
    q: int = 1
    fractional_blocking: bool = False
    curve: str = "morton"
    bilevel_size: int = 2

    def __post_init__(self) -> None:
        if self.atomic_unit < 1:
            raise ValueError("atomic_unit must be >= 1")
        if self.q < 1:
            raise ValueError("q must be >= 1")
        if self.curve not in ("morton", "hilbert"):
            raise ValueError("curve must be 'morton' or 'hilbert'")
        if self.bilevel_size < 1:
            raise ValueError("bilevel_size must be >= 1")

    def balance_focused(self) -> "NatureFableParams":
        """The load-balance-focused configuration of section 4."""
        return NatureFableParams(
            atomic_unit=1,
            q=max(2, self.q),
            fractional_blocking=True,
            curve=self.curve,
            bilevel_size=self.bilevel_size,
        )

    def locality_focused(self) -> "NatureFableParams":
        """The communication-focused configuration (large blocks, contiguous)."""
        return NatureFableParams(
            atomic_unit=max(4, self.atomic_unit),
            q=1,
            fractional_blocking=False,
            curve="hilbert",
            bilevel_size=self.bilevel_size,
        )


def _assign_sequence(
    weights: np.ndarray, ranks: np.ndarray, q: int
) -> np.ndarray:
    """Assign an SFC-ordered weight sequence to the given ranks.

    ``q == 1``: contiguous chains (maximum locality).  ``q > 1``: the
    sequence is cut into ``len(ranks) * q`` equal-weight chunks which are
    then LPT-balanced over the ranks — better balance, more surface.
    Returns a per-element rank array.
    """
    g = ranks.size
    if g == 1:
        return np.full(weights.size, ranks[0], dtype=np.int32)
    if q == 1:
        bounds = greedy_chains(weights, g)
        local = segments_to_ranks(bounds, weights.size)
        return ranks[local].astype(np.int32)
    nchunks = g * q
    bounds = greedy_chains(weights, nchunks)
    chunk_weights = np.add.reduceat(
        np.concatenate((weights, [0.0])), np.minimum(bounds[:-1], weights.size)
    )
    chunk_weights[bounds[:-1] == bounds[1:]] = 0.0
    heap = [(0.0, int(r)) for r in ranks]
    heapq.heapify(heap)
    order = np.argsort(-chunk_weights, kind="stable")
    chunk_rank = np.empty(nchunks, dtype=np.int32)
    for c in order:
        load, r = heapq.heappop(heap)
        chunk_rank[c] = r
        heapq.heappush(heap, (load + float(chunk_weights[c]), r))
    out = np.empty(weights.size, dtype=np.int32)
    for c in range(nchunks):
        out[bounds[c] : bounds[c + 1]] = chunk_rank[c]
    return out


class NaturePlusFable(Partitioner):
    """The hybrid Hue/Core bi-level partitioner (see module docstring)."""

    name = "nature+fable"

    def __init__(self, params: NatureFableParams | None = None) -> None:
        self.params = params or NatureFableParams()

    def describe(self) -> dict:
        p = self.params
        return {
            "name": self.name,
            "atomic_unit": p.atomic_unit,
            "q": p.q,
            "fractional_blocking": p.fractional_blocking,
            "curve": p.curve,
            "bilevel_size": p.bilevel_size,
        }

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        base = super().cost_seconds(hierarchy, nprocs)
        factor = 1.5 + 0.5 * self.params.q
        if self.params.fractional_blocking:
            factor += 0.5
        if self.params.curve == "hilbert":
            factor += 1.0
        return base * factor

    # ------------------------------------------------------------------
    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        rasters = [
            np.full(hierarchy.level_domain(l).shape, NO_OWNER, dtype=np.int32)
            for l in range(hierarchy.nlevels)
        ]
        # --- 1. Hue/Core separation -----------------------------------
        refined = hierarchy.refined_mask_on_base()
        labels, ncores = ndimage.label(refined)
        hue_mask = ~refined
        # Workloads: column workload of each base cell.
        col_work = self._column_work(hierarchy)
        core_work = ndimage.sum_labels(
            col_work, labels, index=np.arange(1, ncores + 1)
        ) if ncores else np.zeros(0)
        hue_work = float(col_work[hue_mask].sum())
        # --- 2. Meta-partitioning: contiguous rank groups --------------
        regions = [("hue", hue_mask, hue_work)] if hue_mask.any() else []
        for c in range(ncores):
            regions.append((f"core{c}", labels == c + 1, float(core_work[c])))
        groups = self._allocate_groups([w for _, _, w in regions], nprocs)
        # --- 3+4. Blocking within each meta-partition -------------------
        for (kind, mask, _), ranks in zip(regions, groups):
            if kind == "hue":
                self._block_hue(hierarchy, mask, ranks, rasters)
            else:
                self._block_core(hierarchy, mask, ranks, rasters)
        return PartitionResult(
            owners=tuple(rasters),
            nprocs=nprocs,
            partition_seconds=self.cost_seconds(hierarchy, nprocs),
        )

    # ------------------------------------------------------------------
    def _column_work(self, hierarchy: GridHierarchy) -> np.ndarray:
        """Workload of the refinement column above each base cell."""
        work = np.zeros(hierarchy.domain.shape, dtype=np.float64)
        for level in hierarchy:
            mask = hierarchy.level_mask(level.index)
            ratio = hierarchy.cumulative_ratio(level.index)
            work += block_sum(mask, ratio) * float(level.time_refinement_weight())
        return work

    @staticmethod
    def _allocate_groups(workloads: list[float], nprocs: int) -> list[np.ndarray]:
        """Contiguous rank ranges proportional to workload (>= 1 rank each).

        Group boundaries are the *rounded cumulative* workload fractions,
        so a small drift in one region's workload moves at most the
        adjacent boundary by one rank — keeping rank assignment stable
        across regrids (wholesale group reshuffles would show up as pure
        partitioner-noise data migration).
        """
        n = len(workloads)
        if n == 0:
            return []
        w = np.asarray(workloads, dtype=np.float64)
        w = np.maximum(w, 1e-12)
        if n >= nprocs:
            # More meta-partitions than ranks: round-robin whole groups.
            return [np.array([i % nprocs]) for i in range(n)]
        cum = np.concatenate(([0.0], np.cumsum(w))) / w.sum()
        bounds = np.rint(cum * nprocs).astype(np.int64)
        bounds[0], bounds[-1] = 0, nprocs
        # Guarantee non-empty groups by nudging collapsed boundaries.
        for i in range(1, n + 1):
            if bounds[i] <= bounds[i - 1]:
                bounds[i] = bounds[i - 1] + 1
        overflow = bounds[-1] - nprocs
        if overflow > 0:
            # Pull back from the right while preserving >= 1 rank each.
            for i in range(n - 1, 0, -1):
                if overflow == 0:
                    break
                shrinkable = bounds[i] - bounds[i - 1] - 1
                give = min(shrinkable, overflow)
                bounds[i:n] -= give
                overflow -= give
            bounds[-1] = nprocs
        return [np.arange(bounds[i], bounds[i + 1]) for i in range(n)]

    def _block_hue(
        self,
        hierarchy: GridHierarchy,
        mask: np.ndarray,
        ranks: np.ndarray,
        rasters: list[np.ndarray],
    ) -> None:
        """Expert blocking of the unrefined base-grid remainder (level 0)."""
        owner = self._block_region(mask.astype(np.float64), mask, ranks, unit=1)
        rasters[0][mask] = owner[mask]

    def _block_core(
        self,
        hierarchy: GridHierarchy,
        core_mask: np.ndarray,
        ranks: np.ndarray,
        rasters: list[np.ndarray],
    ) -> None:
        """Bi-level blocking of one Core region."""
        p = self.params
        nlev = hierarchy.nlevels
        for lc in range(0, nlev, p.bilevel_size):
            lf_range = range(lc, min(lc + p.bilevel_size, nlev))
            coarse_ratio = hierarchy.cumulative_ratio(lc)
            coarse_shape = tuple(s * coarse_ratio for s in core_mask.shape)
            core_at_lc = upsample(core_mask, coarse_ratio)
            # Combined weight raster at the bi-level's coarse resolution.
            weight = np.zeros(coarse_shape, dtype=np.float64)
            present = np.zeros(coarse_shape, dtype=bool)
            for lf in lf_range:
                mask = hierarchy.level_mask(lf)
                sub = hierarchy.cumulative_ratio(lf) // coarse_ratio
                counts = block_sum(mask, sub)
                weight += counts * float(
                    hierarchy[lf].time_refinement_weight()
                )
                present |= counts > 0
            present &= core_at_lc
            if not present.any():
                continue
            weight = np.where(present, weight, 0.0)
            unit = 1 if p.fractional_blocking else p.atomic_unit
            owner = self._block_region(weight, present, ranks, unit=unit)
            # Paint every member level of the bi-level from one decomposition.
            for lf in lf_range:
                sub = hierarchy.cumulative_ratio(lf) // coarse_ratio
                fine_owner = upsample(owner, sub)
                mask = hierarchy.level_mask(lf)
                core_at_lf = upsample(core_at_lc, sub)
                sel = mask & core_at_lf
                rasters[lf][sel] = fine_owner[sel]

    def _block_region(
        self,
        weight: np.ndarray,
        present: np.ndarray,
        ranks: np.ndarray,
        unit: int,
    ) -> np.ndarray:
        """SFC-ordered atomic-block assignment of one region.

        Returns an owner raster over the full index space of ``weight``
        (values meaningless outside ``present``).
        """
        p = self.params
        shape = weight.shape
        unit_shape = tuple(-(-s // unit) for s in shape)
        pad = [(0, u * unit - s) for u, s in zip(unit_shape, shape)]
        wpad = np.pad(weight, pad)
        unit_w = block_sum(wpad, unit)
        coords = np.indices(unit_shape).reshape(len(shape), -1)
        nonzero = unit_w.ravel() > 0
        order_bits = max(1, int(np.ceil(np.log2(max(unit_shape)))))
        order = sfc_order_nd(
            [c[nonzero] for c in coords], curve=p.curve, order=order_bits
        )
        seq_w = unit_w.ravel()[nonzero][order]
        seq_rank = _assign_sequence(seq_w, ranks, p.q)
        unit_owner = np.full(unit_w.size, NO_OWNER, dtype=np.int32)
        flat_idx = np.flatnonzero(nonzero)[order]
        unit_owner[flat_idx] = seq_rank
        unit_owner = unit_owner.reshape(unit_shape)
        owner = upsample(unit_owner, unit)
        owner = owner[tuple(slice(0, s) for s in shape)]
        # Cells in `present` whose unit had zero aggregate weight (possible
        # when `present` marks presence but weights vanish) inherit the
        # group's first rank.
        fallback = present & (owner == NO_OWNER)
        owner = owner.copy()
        owner[fallback] = ranks[0]
        return owner
