"""Migration-minimizing incremental remapper ("diffusion-like" repartitioning).

Section 4 of the paper notes that, unlike the other trade-offs, data
migration has *no unique counterpart*: one can attack it by "invoking some
kind of post mapping technique or switching methods to a more
'diffusion-like' one" — whatever the current partitioning's weaknesses,
they are what gets traded away.  The optimal amount of migration is zero:
keep all data where it is.

:class:`StickyRepartitioner` realizes that family of strategies.  It wraps
any inner partitioner and, at each regrid:

1. keeps the previous owner for every cell that persists from ``H_{t-1}``
   to ``H_t`` (zero migration for surviving data);
2. gives newly-created cells their inner-partitioner owner (new data is
   interpolated in place, not migrated);
3. runs a *bounded diffusion pass*: while the load imbalance exceeds
   ``imbalance_tolerance``, cells of the most-loaded rank are re-assigned
   to the rank the fresh inner partition chose for them, in deterministic
   scan order, up to ``migration_budget`` (a fraction of ``|H_{t-1}|``).

With a zero budget it degenerates to pure ownership persistence; with an
infinite budget and zero tolerance it converges to the inner partitioner's
fresh answer.  The meta-partitioner moves along exactly this dial when
dimension III says migration is (or is not) worth optimizing.
"""

from __future__ import annotations

import numpy as np

from ..geometry import NO_OWNER
from ..hierarchy import GridHierarchy
from .base import PartitionResult, Partitioner, proc_loads

__all__ = ["StickyRepartitioner"]


class StickyRepartitioner(Partitioner):
    """Ownership-persistent wrapper around an inner partitioner.

    Parameters
    ----------
    inner :
        The partitioner producing fresh target distributions.
    imbalance_tolerance :
        Acceptable ``max/avg`` load ratio before diffusion kicks in
        (1.0 = perfect balance required; typical 1.1--1.5).
    migration_budget :
        Upper bound on diffused cells per regrid, as a fraction of the
        previous hierarchy's size.  ``None`` = unbounded.
    """

    name = "sticky"

    def __init__(
        self,
        inner: Partitioner,
        imbalance_tolerance: float = 1.25,
        migration_budget: float | None = 0.25,
    ) -> None:
        if imbalance_tolerance < 1.0:
            raise ValueError("imbalance_tolerance must be >= 1.0")
        if migration_budget is not None and migration_budget < 0:
            raise ValueError("migration_budget must be >= 0")
        self.inner = inner
        self.imbalance_tolerance = imbalance_tolerance
        self.migration_budget = migration_budget

    def describe(self) -> dict:
        return {
            "name": self.name,
            "inner": self.inner.describe(),
            "imbalance_tolerance": self.imbalance_tolerance,
            "migration_budget": self.migration_budget,
        }

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        # One fresh inner run plus a cheap diffusion sweep.
        return self.inner.cost_seconds(hierarchy, nprocs) * 1.2

    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        fresh = self.inner.partition(hierarchy, nprocs, previous)
        if previous is None or previous.nprocs != nprocs:
            return PartitionResult(
                owners=fresh.owners,
                nprocs=nprocs,
                partition_seconds=self.cost_seconds(hierarchy, nprocs),
            )
        rasters: list[np.ndarray] = []
        prev_cells = 0
        for l in range(hierarchy.nlevels):
            target = fresh.owners[l]
            raster = target.copy()
            if l < previous.nlevels:
                prev = previous.owners[l]
                if prev.shape == raster.shape:
                    persists = (prev != NO_OWNER) & (raster != NO_OWNER)
                    raster[persists] = prev[persists]
                    prev_cells += int((prev != NO_OWNER).sum())
            rasters.append(raster)
        result = PartitionResult(owners=tuple(rasters), nprocs=nprocs)
        self._diffuse(result, fresh, hierarchy, prev_cells)
        return PartitionResult(
            owners=result.owners,
            nprocs=nprocs,
            partition_seconds=self.cost_seconds(hierarchy, nprocs),
        )

    # ------------------------------------------------------------------
    def _diffuse(
        self,
        result: PartitionResult,
        fresh: PartitionResult,
        hierarchy: GridHierarchy,
        prev_cells: int,
    ) -> None:
        """Bounded load diffusion towards the fresh target distribution."""
        budget = (
            None
            if self.migration_budget is None
            else int(self.migration_budget * prev_cells)
        )
        if budget == 0:
            return
        loads = proc_loads(result, hierarchy)
        moved = 0
        # Iterate overloaded ranks; move their cells towards the fresh owner.
        for _ in range(8 * result.nprocs):
            avg = loads.mean()
            if avg <= 0:
                return
            worst = int(np.argmax(loads))
            if loads[worst] <= self.imbalance_tolerance * avg:
                return
            progress = False
            for l in range(hierarchy.nlevels):
                raster = result.owners[l]
                target = fresh.owners[l]
                w = float(hierarchy[l].time_refinement_weight())
                movable = (raster == worst) & (target != worst) & (target != NO_OWNER)
                idx = np.flatnonzero(movable.ravel())
                if idx.size == 0:
                    continue
                # How many cells bring `worst` back under tolerance?
                excess = (loads[worst] - self.imbalance_tolerance * avg) / w
                take = int(min(idx.size, max(1, np.ceil(excess))))
                if budget is not None:
                    take = min(take, budget - moved)
                    if take <= 0:
                        return
                chosen = idx[:take]
                flat_r = raster.ravel()
                flat_t = target.ravel()
                dest = flat_t[chosen]
                flat_r[chosen] = dest
                counts = np.bincount(dest, minlength=result.nprocs)
                loads += counts * w
                loads[worst] -= take * w
                moved += take
                progress = True
                break
            if not progress:
                return
