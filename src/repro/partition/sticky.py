"""Migration-minimizing incremental remapper ("diffusion-like" repartitioning).

Section 4 of the paper notes that, unlike the other trade-offs, data
migration has *no unique counterpart*: one can attack it by "invoking some
kind of post mapping technique or switching methods to a more
'diffusion-like' one" — whatever the current partitioning's weaknesses,
they are what gets traded away.  The optimal amount of migration is zero:
keep all data where it is.

:class:`StickyRepartitioner` realizes that family of strategies.  It wraps
any inner partitioner and, at each regrid:

1. keeps the previous owner for every cell that persists from ``H_{t-1}``
   to ``H_t`` (zero migration for surviving data);
2. gives newly-created cells their inner-partitioner owner (new data is
   interpolated in place, not migrated);
3. runs a *bounded diffusion pass*: while the load imbalance exceeds
   ``imbalance_tolerance``, cells of the most-loaded rank are re-assigned
   to the rank the fresh inner partition chose for them, in deterministic
   scan order, up to ``migration_budget`` (a fraction of ``|H_{t-1}|``).

With a zero budget it degenerates to pure ownership persistence; with an
infinite budget and zero tolerance it converges to the inner partitioner's
fresh answer.  The meta-partitioner moves along exactly this dial when
dimension III says migration is (or is not) worth optimizing.

All three steps are box calculus on sparse owner maps: persistence is an
overlay (previous owners clipped to the new owned region, fresh owners
beneath), and the diffusion pass picks the first ``take`` movable cells
in row-major scan order by binary-searching a scan-prefix region — the
exact sparse counterpart of ``np.flatnonzero(movable)[:take]`` on a
raster, bit-identical without materializing one.  The overlap queries
behind both steps run through the grid-bucket pair index
(:mod:`repro.geometry.pairindex`); all pair-index modes emit pairs in
the same canonical order, so the remapper's output is bit-identical
across ``REPRO_PAIR_INDEX`` settings.
"""

from __future__ import annotations

import numpy as np

from ..geometry import (
    OwnerMap,
    corner_volumes,
    first_cells_in_scan_order,
    overlay_corners,
    pair_intersections,
    subtract_corners,
)
from ..hierarchy import GridHierarchy
from .base import PartitionResult, Partitioner

__all__ = ["StickyRepartitioner"]


class StickyRepartitioner(Partitioner):
    """Ownership-persistent wrapper around an inner partitioner.

    Parameters
    ----------
    inner :
        The partitioner producing fresh target distributions.
    imbalance_tolerance :
        Acceptable ``max/avg`` load ratio before diffusion kicks in
        (1.0 = perfect balance required; typical 1.1--1.5).
    migration_budget :
        Upper bound on diffused cells per regrid, as a fraction of the
        previous hierarchy's size.  ``None`` = unbounded.
    """

    name = "sticky"

    def __init__(
        self,
        inner: Partitioner,
        imbalance_tolerance: float = 1.25,
        migration_budget: float | None = 0.25,
    ) -> None:
        if imbalance_tolerance < 1.0:
            raise ValueError("imbalance_tolerance must be >= 1.0")
        if migration_budget is not None and migration_budget < 0:
            raise ValueError("migration_budget must be >= 0")
        self.inner = inner
        self.imbalance_tolerance = imbalance_tolerance
        self.migration_budget = migration_budget

    def describe(self) -> dict:
        return {
            "name": self.name,
            "inner": self.inner.describe(),
            "imbalance_tolerance": self.imbalance_tolerance,
            "migration_budget": self.migration_budget,
        }

    def cost_seconds(self, hierarchy: GridHierarchy, nprocs: int) -> float:
        # One fresh inner run plus a cheap diffusion sweep.
        return self.inner.cost_seconds(hierarchy, nprocs) * 1.2

    def partition(
        self,
        hierarchy: GridHierarchy,
        nprocs: int,
        previous: PartitionResult | None = None,
    ) -> PartitionResult:
        fresh = self.inner.partition(hierarchy, nprocs, previous)
        if previous is None or previous.nprocs != nprocs:
            return PartitionResult(
                maps=fresh.maps,
                nprocs=nprocs,
                partition_seconds=self.cost_seconds(hierarchy, nprocs),
            )
        levels: list[list[np.ndarray]] = []
        prev_cells = 0
        for l in range(hierarchy.nlevels):
            target = fresh.maps[l]
            corners, ranks = target.corners, target.ranks
            if l < previous.nlevels:
                prev_m = previous.maps[l]
                if prev_m.shape == target.shape:
                    # Persisting cells (owned at t-1 and t) keep the
                    # previous owner; the remainder keeps the fresh one.
                    kept, pi, _ = pair_intersections(
                        prev_m.corners, target.corners
                    )
                    corners, ranks = overlay_corners(
                        kept, prev_m.ranks[pi], target.corners, target.ranks
                    )
                    prev_cells += prev_m.ncells
            levels.append([corners, ranks])
        self._diffuse(levels, fresh, hierarchy, prev_cells, nprocs)
        maps = tuple(
            OwnerMap(fresh.maps[l].shape, corners, ranks)
            for l, (corners, ranks) in enumerate(levels)
        )
        return PartitionResult(
            maps=maps,
            nprocs=nprocs,
            partition_seconds=self.cost_seconds(hierarchy, nprocs),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _loads(
        levels: list[list[np.ndarray]],
        hierarchy: GridHierarchy,
        nprocs: int,
    ) -> np.ndarray:
        """Per-rank loads of the working distribution (same math as
        :func:`~repro.partition.base.proc_loads`)."""
        loads = np.zeros(nprocs, dtype=np.float64)
        for level, (corners, ranks) in zip(hierarchy, levels):
            if corners.shape[0]:
                counts = np.zeros(nprocs, dtype=np.int64)
                np.add.at(counts, ranks, corner_volumes(corners))
                loads += counts * float(level.time_refinement_weight())
        return loads

    def _diffuse(
        self,
        levels: list[list[np.ndarray]],
        fresh: PartitionResult,
        hierarchy: GridHierarchy,
        prev_cells: int,
        nprocs: int,
    ) -> None:
        """Bounded load diffusion towards the fresh target distribution."""
        budget = (
            None
            if self.migration_budget is None
            else int(self.migration_budget * prev_cells)
        )
        if budget == 0:
            return
        loads = self._loads(levels, hierarchy, nprocs)
        moved = 0
        # Iterate overloaded ranks; move their cells towards the fresh owner.
        for _ in range(8 * nprocs):
            avg = loads.mean()
            if avg <= 0:
                return
            worst = int(np.argmax(loads))
            if loads[worst] <= self.imbalance_tolerance * avg:
                return
            progress = False
            for l in range(hierarchy.nlevels):
                corners, ranks = levels[l]
                target = fresh.maps[l]
                w = float(hierarchy[l].time_refinement_weight())
                worst_sel = ranks == worst
                away = target.ranks != worst
                movable, _, tj = pair_intersections(
                    corners[worst_sel], target.corners[away]
                )
                volume = int(corner_volumes(movable).sum())
                if volume == 0:
                    continue
                # How many cells bring `worst` back under tolerance?
                excess = (loads[worst] - self.imbalance_tolerance * avg) / w
                take = int(min(volume, max(1, np.ceil(excess))))
                if budget is not None:
                    take = min(take, budget - moved)
                    if take <= 0:
                        return
                # First `take` movable cells in row-major scan order —
                # the sparse, bit-identical counterpart of the raster
                # path's np.flatnonzero(movable)[:take].
                chosen_c, src = first_cells_in_scan_order(
                    movable, target.shape, take
                )
                chosen_r = target.ranks[away][tj][src]
                dest_counts = np.zeros(nprocs, dtype=np.int64)
                np.add.at(dest_counts, chosen_r, corner_volumes(chosen_c))
                remaining = subtract_corners(corners[worst_sel], chosen_c)
                levels[l] = [
                    np.concatenate((corners[~worst_sel], remaining, chosen_c)),
                    np.concatenate(
                        (
                            ranks[~worst_sel],
                            np.full(remaining.shape[0], worst, np.int32),
                            chosen_r,
                        )
                    ),
                ]
                loads += dest_counts * w
                loads[worst] -= take * w
                moved += take
                progress = True
                break
            if not progress:
                return
