"""repro — reproduction of Steensland & Ray, "A Partitioner-Centric Model
for SAMR Partitioning Trade-off Optimization: Part II" (SAND2003-8725 /
ICPP 2004).

Subpackage map (see DESIGN.md for the full system inventory):

==================  =====================================================
``repro.registry``   unified component registry (apps, partitioners,
                     schedules, machines, scales; plugin entry points)
``repro.geometry``   integer box calculus, patch sets, rasterization
``repro.sfc``        Morton / Hilbert space-filling curves
``repro.hierarchy``  SAMR grid hierarchies (levels, nesting, workload)
``repro.clustering`` error flagging + Berger--Rigoutsos clustering
``repro.apps``       the paper's kernels (TP2D/BL2D/SC2D/RM2D) + 3-D
``repro.trace``      regrid-snapshot traces and serialization
``repro.partition``  domain-based / patch-based / hybrid / sticky P's
``repro.simulator``  trace-driven Berger--Colella execution simulator
``repro.metrics``    grid-relative metrics (section 4.1)
``repro.model``      the penalties and the classification space (core)
``repro.meta``       the meta-partitioner and the ArMADA octant baseline
``repro.experiments`` regeneration of every figure of the evaluation
``repro.engine``     dependency-aware experiment execution over a
                     content-addressed result store (versioned public
                     API), and the ``python -m repro`` CLI
==================  =====================================================
"""

from .hierarchy import GridHierarchy, PatchLevel
from .model import (
    ClassificationPoint,
    StateSampler,
    StateTrajectory,
    communication_penalty,
    dimension1,
    load_imbalance_penalty,
    migration_penalty,
)
from .trace import Trace, TraceStep

__version__ = "1.0.0"

__all__ = [
    "GridHierarchy",
    "PatchLevel",
    "ClassificationPoint",
    "StateSampler",
    "StateTrajectory",
    "communication_penalty",
    "dimension1",
    "load_imbalance_penalty",
    "migration_penalty",
    "Trace",
    "TraceStep",
    "__version__",
]
