"""SAMR grid hierarchies: patch levels and properly-nested level stacks."""

from .hierarchy import GridHierarchy
from .level import PatchLevel

__all__ = ["GridHierarchy", "PatchLevel"]
