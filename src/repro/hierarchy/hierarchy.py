"""The SAMR grid hierarchy: a stack of properly-nested refinement levels.

This is the ``H_t`` of the paper.  A hierarchy snapshot is exactly what the
trace files capture at each regrid step, and everything downstream — the
partitioners, the execution simulator and the penalties ``beta_m`` /
``beta_C`` / ``beta_L`` — consumes hierarchies through this class.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..geometry import Box, BoxList, paint_box, rasterize_mask
from .level import PatchLevel

__all__ = ["GridHierarchy"]


class GridHierarchy:
    """A properly-nested stack of :class:`PatchLevel` objects.

    Parameters
    ----------
    domain :
        The base-grid index box (level 0's index space), anchored at the
        origin.
    levels :
        Levels in increasing order; ``levels[0]`` must cover the whole
        ``domain`` (Berger--Colella base grid).

    Notes
    -----
    ``|H_t|`` in the paper — the *size* of the hierarchy used to normalize
    ``beta_m`` and the dimension-II grid-size factor — is the total number
    of grid points over all levels, :attr:`ncells`.
    """

    __slots__ = ("domain", "levels")

    def __init__(self, domain: Box, levels: Sequence[PatchLevel]) -> None:
        if domain.empty:
            raise ValueError("hierarchy domain must be non-empty")
        if any(l != 0 for l in domain.lo):
            raise ValueError("hierarchy domain must be anchored at the origin")
        levels = list(levels)
        if not levels:
            raise ValueError("hierarchy needs at least the base level")
        for expected, level in enumerate(levels):
            if level.index != expected:
                raise ValueError(
                    f"levels must be contiguous from 0; got index {level.index} "
                    f"at position {expected}"
                )
        self.domain = domain
        self.levels = tuple(levels)

    # -- container protocol ----------------------------------------------
    def __iter__(self) -> Iterator[PatchLevel]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, i: int) -> PatchLevel:
        return self.levels[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GridHierarchy):
            return NotImplemented
        return self.domain == other.domain and self.levels == other.levels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(f"l{lev.index}:{lev.ncells}" for lev in self.levels)
        return f"GridHierarchy(domain={self.domain.shape}, [{sizes}])"

    # -- sizes --------------------------------------------------------------
    @property
    def nlevels(self) -> int:
        """Number of levels (including the base)."""
        return len(self.levels)

    @property
    def ndim(self) -> int:
        """Spatial dimensionality."""
        return self.domain.ndim

    @property
    def ncells(self) -> int:
        """``|H|``: total grid points across all levels."""
        return sum(level.ncells for level in self.levels)

    @property
    def workload(self) -> int:
        """Total computational work per coarse step: ``sum_l n_l * r^l``.

        The paper's 100 %-communication reference quantity (section 4.1):
        every grid point communicating at every local time step of a coarse
        step amounts to exactly this many point-steps.
        """
        return sum(level.workload for level in self.levels)

    @property
    def npatches(self) -> int:
        """Total patch count over all levels."""
        return sum(level.npatches for level in self.levels)

    def level_domain(self, level_index: int) -> Box:
        """Index-space box of level ``level_index`` (the refined domain)."""
        ratio = self.cumulative_ratio(level_index)
        return self.domain.refine(ratio)

    def cumulative_ratio(self, level_index: int) -> int:
        """Refinement ratio of level ``level_index`` relative to level 0."""
        if not 0 <= level_index < self.nlevels:
            raise ValueError(f"no level {level_index} in {self.nlevels}-level hierarchy")
        ratio = 1
        for level in self.levels[1 : level_index + 1]:
            ratio *= level.ratio
        return ratio

    # -- masks --------------------------------------------------------------
    def level_mask(self, level_index: int) -> np.ndarray:
        """Boolean raster of the refined region of a level (its index space).

        Dense view — it scales with the level's index-space *volume*, so
        the partitioners, penalties and simulator metrics all work from
        the patch boxes directly (sparse box calculus) and this raster is
        only used for visualization and cross-checks at small scales.
        """
        return rasterize_mask(
            self.levels[level_index].patches, self.level_domain(level_index)
        )

    def refined_mask_on_base(self) -> np.ndarray:
        """Boolean raster on the *base* grid of cells refined by level >= 1.

        This is what Nature+Fable's Hue/Core separation is computed from:
        Hues are the unrefined complement, Cores the connected refined
        parts (with all overlaid levels attached, strictly domain-based).
        """
        mask = np.zeros(self.domain.shape, dtype=bool)
        if self.nlevels < 2:
            return mask
        ratio = self.cumulative_ratio(1)
        coarse = BoxList(self.levels[1].patches).coarsen(ratio)
        for box in coarse:
            paint_box(mask, box, True)  # type: ignore[arg-type]
        return mask

    # -- invariants -----------------------------------------------------------
    def validate(self, nesting_buffer: int = 0) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        * level 0 covers the domain exactly,
        * every level's patches are disjoint and inside the level domain,
        * every level ``l >= 1`` is nested in level ``l - 1`` (grown by
          ``nesting_buffer`` coarse cells, clipped to the domain).
        """
        base_cells = self.levels[0].ncells
        if base_cells != self.domain.ncells:
            raise ValueError(
                f"base level covers {base_cells} cells, domain has "
                f"{self.domain.ncells}"
            )
        for level in self.levels:
            level.validate()
            dom = self.level_domain(level.index)
            for patch in level:
                if not dom.contains_box(patch):
                    raise ValueError(f"patch {patch} outside level domain {dom}")
        for fine in self.levels[1:]:
            coarse = self.levels[fine.index - 1]
            coarse_dom = self.level_domain(coarse.index)
            parent_region = BoxList(
                b.grow(nesting_buffer).intersect(coarse_dom)
                for b in coarse.patches
                if b.grow(nesting_buffer).intersect(coarse_dom) is not None
            )
            fine_on_coarse = fine.patches.coarsen(fine.ratio)
            needed = fine_on_coarse.disjointified().ncells
            covered = parent_region.disjointified().intersect_volume(
                fine_on_coarse.disjointified()
            )
            if covered < needed:
                raise ValueError(
                    f"level {fine.index} not nested in level {coarse.index}: "
                    f"{needed - covered} coarse cells uncovered"
                )

    # -- construction helpers --------------------------------------------------
    @staticmethod
    def base_only(domain: Box, ratio: int = 2) -> "GridHierarchy":
        """A hierarchy with just the base grid covering ``domain``."""
        return GridHierarchy(domain, [PatchLevel(0, [domain], ratio=1)])

    def with_levels(self, levels: Sequence[PatchLevel]) -> "GridHierarchy":
        """A new hierarchy over the same domain with different levels."""
        return GridHierarchy(self.domain, levels)

    # -- serialization ------------------------------------------------------
    def to_json(self) -> dict:
        """JSON form of the full hierarchy snapshot."""
        return {
            "domain": self.domain.to_json(),
            "levels": [level.to_json() for level in self.levels],
        }

    @staticmethod
    def from_json(data: dict) -> "GridHierarchy":
        """Inverse of :meth:`to_json`."""
        return GridHierarchy(
            Box.from_json(data["domain"]),
            [PatchLevel.from_json(entry) for entry in data["levels"]],
        )
