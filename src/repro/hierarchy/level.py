"""A single refinement level of a SAMR grid hierarchy."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..geometry import Box, BoxList

__all__ = ["PatchLevel"]


class PatchLevel:
    """One refinement level: a disjoint patch set in the level's index space.

    Parameters
    ----------
    index :
        Level number; 0 is the base grid.
    boxes :
        Disjoint patches in this level's own (refined) index space.
    ratio :
        Refinement ratio of this level relative to level ``index - 1``
        (the paper uses factor-2 refinement throughout; 1 for the base).

    Notes
    -----
    With factor-2 refinement in *time* as well as space, level ``l``
    executes ``2^l`` local time steps per coarse step; its workload weight
    is therefore ``2^l`` flops-per-cell-units per coarse step.  That weight
    is what the paper's "communication normalized with respect to work
    load" (section 4.1) is built on.
    """

    __slots__ = ("index", "patches", "ratio")

    def __init__(self, index: int, boxes: Iterable[Box], ratio: int = 2) -> None:
        if index < 0:
            raise ValueError("level index must be >= 0")
        if ratio < 1:
            raise ValueError("refinement ratio must be >= 1")
        self.index = int(index)
        self.ratio = int(ratio)
        self.patches = boxes if isinstance(boxes, BoxList) else BoxList(boxes)

    # -- container protocol ----------------------------------------------
    def __iter__(self) -> Iterator[Box]:
        return iter(self.patches)

    def __len__(self) -> int:
        return len(self.patches)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatchLevel):
            return NotImplemented
        return (
            self.index == other.index
            and self.ratio == other.ratio
            and set(self.patches.boxes) == set(other.patches.boxes)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatchLevel(l={self.index}, {len(self.patches)} patches, "
            f"{self.ncells} cells)"
        )

    # -- queries -----------------------------------------------------------
    @property
    def ncells(self) -> int:
        """Cell count of the level (disjoint patch sum)."""
        return self.patches.ncells

    @property
    def npatches(self) -> int:
        """Number of patches on this level."""
        return len(self.patches)

    def time_refinement_weight(self) -> int:
        """Local time steps per coarse step: ``ratio ** index`` for uniform ratios."""
        return self.ratio**self.index

    @property
    def workload(self) -> int:
        """Cells times local steps per coarse step."""
        return self.ncells * self.time_refinement_weight()

    def validate(self) -> None:
        """Check that the patch set is disjoint."""
        self.patches.validate_disjoint()

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        """JSON form of the level."""
        return {
            "index": self.index,
            "ratio": self.ratio,
            "boxes": self.patches.to_json(),
        }

    @staticmethod
    def from_json(data: dict) -> "PatchLevel":
        """Inverse of :meth:`to_json`."""
        return PatchLevel(
            index=data["index"],
            boxes=BoxList.from_json(data["boxes"]),
            ratio=data.get("ratio", 2),
        )
