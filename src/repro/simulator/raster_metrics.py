"""Vectorized per-distribution metrics on owner rasters.

Everything the execution simulator measures — ghost-cell exchange volume,
parent-child (inter-level) transfer volume, data migration between
consecutive distributions and per-rank loads — reduces to numpy
comparisons on owner rasters.  These functions are the exact counterparts
of the quantities the Rutgers trace-driven simulator reports (section
5.1.3: "load balance, communication, data migration, and overheads").
"""

from __future__ import annotations

import numpy as np

from ..geometry import NO_OWNER, upsample
from ..partition import PartitionResult

__all__ = [
    "ghost_exchange_cells",
    "ghost_message_pairs",
    "interlevel_transfer_cells",
    "migration_cells",
    "per_rank_comm_cells",
]


def ghost_exchange_cells(raster: np.ndarray, ghost_width: int = 1) -> int:
    """Cells exchanged per local step across rank boundaries of one level.

    Every face between two refined cells with different owners moves
    ``ghost_width`` cells in each direction per local time step (standard
    Berger--Colella ghost-region fill).
    """
    if ghost_width < 0:
        raise ValueError("ghost_width must be >= 0")
    total = 0
    for axis in range(raster.ndim):
        a = np.moveaxis(raster, axis, 0)[:-1]
        b = np.moveaxis(raster, axis, 0)[1:]
        faces = (a != NO_OWNER) & (b != NO_OWNER) & (a != b)
        total += int(faces.sum())
    return 2 * ghost_width * total


def ghost_message_pairs(raster: np.ndarray) -> int:
    """Distinct communicating (owner, owner) neighbour pairs of one level.

    Approximates the per-step message count of the ghost exchange (each
    adjacent rank pair exchanges one message per direction per step).

    Fully vectorized: the unordered (owner, owner) pairs of each cut face
    are packed into single int64 keys (``lo << 32 | hi``; ranks are int32)
    and deduplicated with one ``np.unique`` over all axes.
    """
    packed: list[np.ndarray] = []
    for axis in range(raster.ndim):
        a = np.moveaxis(raster, axis, 0)[:-1]
        b = np.moveaxis(raster, axis, 0)[1:]
        faces = (a != NO_OWNER) & (b != NO_OWNER) & (a != b)
        if faces.any():
            av = a[faces].astype(np.int64)
            bv = b[faces].astype(np.int64)
            lo = np.minimum(av, bv)
            hi = np.maximum(av, bv)
            packed.append((lo << np.int64(32)) | hi)
    if not packed:
        return 0
    return 2 * int(np.unique(np.concatenate(packed)).size)


def per_rank_comm_cells(
    raster: np.ndarray, nprocs: int, ghost_width: int = 1
) -> np.ndarray:
    """Ghost cells sent+received per rank per local step (one level)."""
    counts = np.zeros(nprocs, dtype=np.int64)
    for axis in range(raster.ndim):
        a = np.moveaxis(raster, axis, 0)[:-1]
        b = np.moveaxis(raster, axis, 0)[1:]
        faces = (a != NO_OWNER) & (b != NO_OWNER) & (a != b)
        if faces.any():
            counts += np.bincount(a[faces], minlength=nprocs)
            counts += np.bincount(b[faces], minlength=nprocs)
    return counts * ghost_width


def interlevel_transfer_cells(
    coarse: np.ndarray, fine: np.ndarray, ratio: int
) -> int:
    """Fine cells whose parent coarse cell lives on a different rank.

    Each such cell crosses ranks during prolongation (parent -> child
    ghost fill) and restriction (child -> parent update); domain-based
    partitioners drive this to zero by construction.
    """
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    expected = tuple(s * ratio for s in coarse.shape)
    if fine.shape != expected:
        raise ValueError(
            f"fine shape {fine.shape} does not equal coarse {coarse.shape} x {ratio}"
        )
    parent = upsample(coarse, ratio)
    mask = (fine != NO_OWNER) & (parent != NO_OWNER) & (fine != parent)
    return int(mask.sum())


def migration_cells(prev: PartitionResult, cur: PartitionResult) -> int:
    """Redistribution traffic between two consecutive distributions.

    Berger--Colella regridding initializes every cell of the new hierarchy
    from the old one: a cell that existed at the same level copies its own
    old data; a newly-refined cell interpolates from its nearest refined
    ancestor in the old hierarchy (its parent column; level 0 always
    exists).  The *migrated* points are those whose data source lives on a
    different rank than their new owner — exactly the cross-processor
    traffic of the redistribution phase that the paper's relative-migration
    metric (section 4.1) measures.

    Counting only persisting-cell owner changes would under-count moving
    refinement fronts (their new cells dominate) and artificially cap
    migration at the hierarchy overlap; the data-source formulation avoids
    both.
    """
    total = 0
    source: np.ndarray | None = None
    for l in range(cur.nlevels):
        b = cur.owners[l]
        if source is None:
            if prev.owners[0].shape != b.shape:
                raise ValueError(
                    f"level 0 raster shapes differ: {prev.owners[0].shape} "
                    f"vs {b.shape}"
                )
            src_l = prev.owners[0]
        else:
            ratio = b.shape[0] // source.shape[0] if source.shape[0] else 0
            if ratio < 1 or b.shape != tuple(s * ratio for s in source.shape):
                raise ValueError(
                    f"level {l} shape {b.shape} not a multiple of level "
                    f"{l - 1} shape {source.shape}"
                )
            src_l = upsample(source, ratio)
        if l < prev.nlevels:
            pl = prev.owners[l]
            if pl.shape != b.shape:
                raise ValueError(
                    f"level {l} raster shapes differ: {pl.shape} vs {b.shape}"
                )
            src_l = np.where(pl != NO_OWNER, pl, src_l)
        owned = b != NO_OWNER
        total += int((owned & (src_l != b)).sum())
        source = src_l
    return total
