"""Vectorized per-distribution metrics: sparse box calculus + dense cross-check.

Everything the execution simulator measures — ghost-cell exchange volume,
parent-child (inter-level) transfer volume, data migration between
consecutive distributions and per-rank loads — is computed on sparse
:class:`~repro.geometry.OwnerMap` corner arrays: face-adjacency sweeps
between owner boxes for the ghost metrics, broadcasted corner
intersections for inter-level transfer and migration.  Cost scales with
patch counts, not with the volume of the finest index space — and the
pair sweeps themselves run through the grid-bucket pair index
(:mod:`repro.geometry.pairindex`), so the candidate product is pruned to
near-linear in the box count: ``deep`` and ``ultra`` 3-D runs are
tractable end to end.  ``REPRO_PAIR_INDEX=bruteforce`` restores the
historical quadratic sweeps (bit-identical results, asserted by the
cross-check).

Every public function also accepts the original dense owner rasters
(int32 arrays, :data:`~repro.geometry.NO_OWNER` outside the refined
region) and then runs the original numpy reductions.  The dense path is
the cross-check: the property suite asserts sparse == dense on random
N-D hierarchies, and :class:`~repro.simulator.TraceSimulator` can be
built with ``cross_check=True`` to compare both on every step.

These quantities are the exact counterparts of what the Rutgers
trace-driven simulator reports (section 5.1.3: "load balance,
communication, data migration, and overheads").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..geometry import (
    NO_OWNER,
    OwnerMap,
    face_contacts,
    matched_volume,
    overlap_and_matched_volume,
    overlay_corners,
    upsample,
)

if TYPE_CHECKING:  # import cycle guard: repro.partition imports nothing
    # from the simulator, but keep the reference annotation-only anyway.
    from ..partition import PartitionResult

__all__ = [
    "ghost_exchange_cells",
    "ghost_face_stats",
    "ghost_message_pairs",
    "interlevel_transfer_cells",
    "migration_cells",
    "migration_cells_dense",
    "per_rank_comm_cells",
]


def ghost_face_stats(owners: OwnerMap) -> tuple[int, int]:
    """``(cut faces, distinct unordered rank pairs)`` of one level map.

    One pair sweep serves both ghost metrics; the simulator uses this to
    avoid running the O(boxes^2) face scan twice per level.  The sweep
    probes the level's persistent pair index when the reuse layer is on.
    """
    ra, rb, area = face_contacts(
        owners.corners, owners.ranks, index=owners.pair_index()
    )
    if area.size == 0:
        return 0, 0
    lo = np.minimum(ra, rb).astype(np.int64)
    hi = np.maximum(ra, rb).astype(np.int64)
    pairs = np.unique((lo << np.int64(32)) | hi).size
    return int(area.sum()), int(pairs)


def ghost_exchange_cells(
    owners: OwnerMap | np.ndarray, ghost_width: int = 1
) -> int:
    """Cells exchanged per local step across rank boundaries of one level.

    Every face between two refined cells with different owners moves
    ``ghost_width`` cells in each direction per local time step (standard
    Berger--Colella ghost-region fill).
    """
    if ghost_width < 0:
        raise ValueError("ghost_width must be >= 0")
    if isinstance(owners, OwnerMap):
        faces, _ = ghost_face_stats(owners)
        return 2 * ghost_width * faces
    raster = owners
    total = 0
    for axis in range(raster.ndim):
        a = np.moveaxis(raster, axis, 0)[:-1]
        b = np.moveaxis(raster, axis, 0)[1:]
        faces = (a != NO_OWNER) & (b != NO_OWNER) & (a != b)
        total += int(faces.sum())
    return 2 * ghost_width * total


def ghost_message_pairs(owners: OwnerMap | np.ndarray) -> int:
    """Distinct communicating (owner, owner) neighbour pairs of one level.

    Approximates the per-step message count of the ghost exchange (each
    adjacent rank pair exchanges one message per direction per step).
    """
    if isinstance(owners, OwnerMap):
        _, pairs = ghost_face_stats(owners)
        return 2 * pairs
    raster = owners
    packed: list[np.ndarray] = []
    for axis in range(raster.ndim):
        a = np.moveaxis(raster, axis, 0)[:-1]
        b = np.moveaxis(raster, axis, 0)[1:]
        faces = (a != NO_OWNER) & (b != NO_OWNER) & (a != b)
        if faces.any():
            av = a[faces].astype(np.int64)
            bv = b[faces].astype(np.int64)
            lo = np.minimum(av, bv)
            hi = np.maximum(av, bv)
            packed.append((lo << np.int64(32)) | hi)
    if not packed:
        return 0
    return 2 * int(np.unique(np.concatenate(packed)).size)


def per_rank_comm_cells(
    owners: OwnerMap | np.ndarray, nprocs: int, ghost_width: int = 1
) -> np.ndarray:
    """Ghost cells sent+received per rank per local step (one level)."""
    if isinstance(owners, OwnerMap):
        ra, rb, area = face_contacts(
            owners.corners, owners.ranks, index=owners.pair_index()
        )
        counts = np.zeros(nprocs, dtype=np.int64)
        np.add.at(counts, ra, area)
        np.add.at(counts, rb, area)
        return counts * ghost_width
    raster = owners
    counts = np.zeros(nprocs, dtype=np.int64)
    for axis in range(raster.ndim):
        a = np.moveaxis(raster, axis, 0)[:-1]
        b = np.moveaxis(raster, axis, 0)[1:]
        faces = (a != NO_OWNER) & (b != NO_OWNER) & (a != b)
        if faces.any():
            counts += np.bincount(a[faces], minlength=nprocs)
            counts += np.bincount(b[faces], minlength=nprocs)
    return counts * ghost_width


def interlevel_transfer_cells(
    coarse: OwnerMap | np.ndarray, fine: OwnerMap | np.ndarray, ratio: int
) -> int:
    """Fine cells whose parent coarse cell lives on a different rank.

    Each such cell crosses ranks during prolongation (parent -> child
    ghost fill) and restriction (child -> parent update); domain-based
    partitioners drive this to zero by construction.
    """
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    if isinstance(coarse, OwnerMap) and isinstance(fine, OwnerMap):
        expected = tuple(s * ratio for s in coarse.shape)
        if fine.shape != expected:
            raise ValueError(
                f"fine shape {fine.shape} does not equal coarse "
                f"{coarse.shape} x {ratio}"
            )
        parents = coarse.corners * ratio
        # One probe of the fine level's persistent index answers both
        # sums (falls back to the two historical kernels without one).
        both, same = overlap_and_matched_volume(
            parents,
            coarse.ranks,
            fine.corners,
            fine.ranks,
            b_index=fine.pair_index(),
        )
        return both - same
    expected = tuple(s * ratio for s in coarse.shape)
    if fine.shape != expected:
        raise ValueError(
            f"fine shape {fine.shape} does not equal coarse {coarse.shape} x {ratio}"
        )
    parent = upsample(coarse, ratio)
    mask = (fine != NO_OWNER) & (parent != NO_OWNER) & (fine != parent)
    return int(mask.sum())


def migration_cells(prev: "PartitionResult", cur: "PartitionResult") -> int:
    """Redistribution traffic between two consecutive distributions.

    Berger--Colella regridding initializes every cell of the new hierarchy
    from the old one: a cell that existed at the same level copies its own
    old data; a newly-refined cell interpolates from its nearest refined
    ancestor in the old hierarchy (its parent column; level 0 always
    exists).  The *migrated* points are those whose data source lives on a
    different rank than their new owner — exactly the cross-processor
    traffic of the redistribution phase that the paper's relative-migration
    metric (section 4.1) measures.

    Counting only persisting-cell owner changes would under-count moving
    refinement fronts (their new cells dominate) and artificially cap
    migration at the hierarchy overlap; the data-source formulation avoids
    both.

    Sparse evaluation: the per-level *source map* (previous owner where
    the level persisted, else the refined ancestor source) is built by
    overlaying owner maps, and the migrated count is the new level's
    owned cells minus the rank-matched intersection volume with its
    source map.
    """
    total = 0
    src_c: np.ndarray | None = None
    src_r: np.ndarray | None = None
    src_shape: tuple[int, ...] | None = None
    for l in range(cur.nlevels):
        b = cur.maps[l]
        if src_c is None:
            if prev.maps[0].shape != b.shape:
                raise ValueError(
                    f"level 0 raster shapes differ: {prev.maps[0].shape} "
                    f"vs {b.shape}"
                )
            src_c = prev.maps[0].corners
            src_r = prev.maps[0].ranks
            src_shape = b.shape
        else:
            ratio = b.shape[0] // src_shape[0] if src_shape[0] else 0
            if ratio < 1 or b.shape != tuple(s * ratio for s in src_shape):
                raise ValueError(
                    f"level {l} shape {b.shape} not a multiple of level "
                    f"{l - 1} shape {src_shape}"
                )
            src_c = src_c * ratio
            src_shape = b.shape
        if l < prev.nlevels:
            pl = prev.maps[l]
            if pl.shape != b.shape:
                raise ValueError(
                    f"level {l} raster shapes differ: {pl.shape} vs {b.shape}"
                )
            src_c, src_r = overlay_corners(
                pl.corners, pl.ranks, src_c, src_r, top_index=pl.pair_index()
            )
        total += b.ncells - matched_volume(
            src_c, src_r, b.corners, b.ranks, b_index=b.pair_index()
        )
    return total


def migration_cells_dense(
    prev_rasters: tuple[np.ndarray, ...], cur_rasters: tuple[np.ndarray, ...]
) -> int:
    """Dense-raster reference implementation of :func:`migration_cells`.

    Operates on the legacy per-level owner rasters; kept as the
    cross-check for the sparse path (see the module docstring).
    """
    total = 0
    source: np.ndarray | None = None
    for l in range(len(cur_rasters)):
        b = cur_rasters[l]
        if source is None:
            if prev_rasters[0].shape != b.shape:
                raise ValueError(
                    f"level 0 raster shapes differ: {prev_rasters[0].shape} "
                    f"vs {b.shape}"
                )
            src_l = prev_rasters[0]
        else:
            ratio = b.shape[0] // source.shape[0] if source.shape[0] else 0
            if ratio < 1 or b.shape != tuple(s * ratio for s in source.shape):
                raise ValueError(
                    f"level {l} shape {b.shape} not a multiple of level "
                    f"{l - 1} shape {source.shape}"
                )
            src_l = upsample(source, ratio)
        if l < len(prev_rasters):
            pl = prev_rasters[l]
            if pl.shape != b.shape:
                raise ValueError(
                    f"level {l} raster shapes differ: {pl.shape} vs {b.shape}"
                )
            src_l = np.where(pl != NO_OWNER, pl, src_l)
        owned = b != NO_OWNER
        total += int((owned & (src_l != b)).sum())
        source = src_l
    return total
