"""The trace-driven Berger--Colella execution simulator.

This is our rebuild of the Rutgers TASSL simulator the paper relies on
(section 5.1.3): it replays an application trace — the partition-
independent sequence of grid-hierarchy snapshots — under a chosen
partitioner and processor count, and reports, per regrid step, "the
performance of the partitioning configuration ... using a metric with the
components load balance, communication, data migration, and overheads".

Per coarse time-step the simulated schedule is the standard
Berger--Colella recursion with factor-2 time refinement: level ``l``
advances ``2^l`` local steps, exchanging ghost regions at every local step
and synchronizing with its parent at every parent step.  All metrics are
raster reductions (:mod:`repro.simulator.raster_metrics`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..geometry import pair_index_counters, pair_index_forced
from ..hierarchy import GridHierarchy
from ..telemetry import span, telemetry_active
from ..metrics import relative_communication, relative_migration
from ..partition import PartitionResult, Partitioner, proc_loads
from ..trace import Trace
from .machine import MachineModel
from .raster_metrics import (
    ghost_exchange_cells,
    ghost_face_stats,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
    migration_cells_dense,
)

__all__ = ["StepMetrics", "SimulationResult", "TraceSimulator"]


@contextmanager
def _kernel_span(name: str, **attrs):
    """Span around one sparse-metric kernel phase.

    Annotates the span with the pair-kernel counter *delta* it caused
    (brute product examined, candidates emitted, exact survivors), which
    is how the historical ``PairKernelCounters`` become span attributes.
    A bare ``yield`` when telemetry is off — the per-step cost must stay
    inside the <3% overhead budget.
    """
    if not telemetry_active():
        yield
        return
    counters = pair_index_counters()
    before = (
        counters.pair_product,
        counters.candidate_pairs,
        counters.exact_pairs,
        counters.index_builds,
        counters.index_reuses,
        counters.delta_updates,
    )
    with span(name, cat="kernel", **attrs) as sp:
        yield
        sp.annotate(
            pair_product=counters.pair_product - before[0],
            candidate_pairs=counters.candidate_pairs - before[1],
            exact_pairs=counters.exact_pairs - before[2],
            index_builds=counters.index_builds - before[3],
            index_reuses=counters.index_reuses - before[4],
            delta_updates=counters.delta_updates - before[5],
        )


def _seed_pair_indexes(
    previous: PartitionResult | None, result: PartitionResult
) -> None:
    """Warm the new distribution's per-level pair indexes from the last.

    Temporal coherence — the paper's core premise — means consecutive
    regrid steps share most of their boxes, so the previous step's
    persistent indexes delta-update into the new maps instead of being
    rebuilt from scratch.  A no-op when the reuse layer is off.
    """
    if previous is None:
        return
    for prev_map, cur_map in zip(previous.maps, result.maps):
        cur_map.seed_pair_index_from(prev_map)


@dataclass(frozen=True, slots=True)
class StepMetrics:
    """All per-regrid-step outputs of the simulator.

    ``relative_*`` fields follow the paper's grid-relative metrics
    (section 4.1): migration is normalized by ``|H_{t-1}|``, communication
    by the workload of the coarse step.
    """

    step: int
    time: float
    ncells: int
    workload: int
    load_imbalance: float
    comm_cells: int
    relative_comm: float
    interlevel_cells: int
    migration_cells: int
    relative_migration: float
    partition_seconds: float
    compute_seconds: float
    comm_seconds: float
    migration_seconds: float
    total_seconds: float


@dataclass(frozen=True)
class SimulationResult:
    """A full simulated run: one :class:`StepMetrics` per snapshot."""

    trace_name: str
    partitioner: dict
    nprocs: int
    steps: tuple[StepMetrics, ...]

    def series(self, attr: str) -> np.ndarray:
        """Column extraction, e.g. ``series("relative_migration")``."""
        return np.array([getattr(s, attr) for s in self.steps], dtype=np.float64)

    @property
    def total_execution_seconds(self) -> float:
        """Modeled wall time of the whole run."""
        return float(sum(s.total_seconds for s in self.steps))

    def summary(self) -> dict:
        """Aggregate statistics for experiment tables."""
        return {
            "trace": self.trace_name,
            "partitioner": self.partitioner,
            "nprocs": self.nprocs,
            "mean_imbalance": float(self.series("load_imbalance").mean()),
            "mean_relative_comm": float(self.series("relative_comm").mean()),
            "mean_relative_migration": float(
                self.series("relative_migration")[1:].mean()
            )
            if len(self.steps) > 1
            else 0.0,
            "total_seconds": self.total_execution_seconds,
        }


class TraceSimulator:
    """Replays traces under a partitioner and a machine model.

    Parameters
    ----------
    machine :
        Cost model of the parallel computer.
    ghost_width :
        Ghost-layer width of the numerical scheme (paper kernels: 1).
    steps_per_snapshot :
        Coarse time-steps executed between consecutive snapshots (the
        trace's regrid interval); scales the compute/communication phases
        of the execution-time model.
    cross_check :
        Recompute every metric on dense owner rasters as well and assert
        agreement with the sparse box-calculus path.  Debug/test aid —
        it materializes full-level rasters, so only use it at scales
        where dense rasters are affordable.
    """

    def __init__(
        self,
        machine: MachineModel | None = None,
        ghost_width: int = 1,
        steps_per_snapshot: int = 4,
        cross_check: bool = False,
    ) -> None:
        if ghost_width < 0:
            raise ValueError("ghost_width must be >= 0")
        if steps_per_snapshot < 1:
            raise ValueError("steps_per_snapshot must be >= 1")
        self.machine = machine or MachineModel()
        self.ghost_width = ghost_width
        self.steps_per_snapshot = steps_per_snapshot
        self.cross_check = cross_check

    # ------------------------------------------------------------------
    def measure_step(
        self,
        hierarchy: GridHierarchy,
        result: PartitionResult,
        previous: PartitionResult | None,
        prev_hierarchy: GridHierarchy | None,
        step: int = 0,
        time: float = 0.0,
    ) -> StepMetrics:
        """Metrics of one snapshot under one distribution."""
        loads = proc_loads(result, hierarchy)
        avg = loads.mean()
        imbalance = float(loads.max() / avg) if avg > 0 else 1.0
        # Communication: ghost exchange at every local step of every level
        # plus parent-child transfers at every fine step.  One face sweep
        # per level serves both the volume and the message count.
        comm_point_steps = 0
        messages = 0.0
        with _kernel_span("kernel.ghost_faces", step=step):
            for level in hierarchy:
                w = level.time_refinement_weight()
                faces, pairs = ghost_face_stats(result.maps[level.index])
                comm_point_steps += 2 * self.ghost_width * faces * w
                messages += 2 * pairs * w
        interlevel = 0
        with _kernel_span("kernel.interlevel", step=step):
            for level in hierarchy.levels[1:]:
                coarse = result.maps[level.index - 1]
                fine = result.maps[level.index]
                w = level.time_refinement_weight()
                interlevel += (
                    interlevel_transfer_cells(coarse, fine, level.ratio) * w
                )
        migrated = 0
        if previous is not None:
            with _kernel_span("kernel.migration", step=step):
                migrated = migration_cells(previous, result)
        if self.cross_check:
            self._cross_check(
                hierarchy, result, previous, comm_point_steps, messages,
                interlevel, migrated,
            )
        rel_comm = relative_communication(comm_point_steps + interlevel, hierarchy)
        rel_mig = (
            relative_migration(migrated, prev_hierarchy)
            if prev_hierarchy is not None
            else 0.0
        )
        # --- execution-time model for the inter-snapshot interval --------
        n = self.steps_per_snapshot
        compute = self.machine.compute_seconds(float(loads.max())) * n
        comm = (
            self.machine.transfer_seconds(
                float(comm_point_steps + interlevel), messages
            )
            * n
        )
        sync = self.machine.sync_seconds * n * hierarchy.nlevels
        mig_t = self.machine.transfer_seconds(float(migrated), result.nprocs)
        total = compute + comm + sync + mig_t + result.partition_seconds
        return StepMetrics(
            step=step,
            time=time,
            ncells=hierarchy.ncells,
            workload=hierarchy.workload,
            load_imbalance=imbalance,
            comm_cells=int(comm_point_steps),
            relative_comm=rel_comm,
            interlevel_cells=int(interlevel),
            migration_cells=int(migrated),
            relative_migration=rel_mig,
            partition_seconds=result.partition_seconds,
            compute_seconds=compute,
            comm_seconds=comm + sync,
            migration_seconds=mig_t,
            total_seconds=total,
        )

    def _cross_check(
        self,
        hierarchy: GridHierarchy,
        result: PartitionResult,
        previous: PartitionResult | None,
        comm_point_steps: int,
        messages: float,
        interlevel: int,
        migrated: int,
    ) -> None:
        """Recompute all metrics on two cross-check paths and assert.

        First the sparse box calculus is replayed with the pair index
        forced to the historical ``bruteforce`` broadcast — the indexed
        and quadratic kernels must agree *bit-identically*.  Then every
        metric is recomputed on dense owner rasters as before.
        """
        with pair_index_forced("bruteforce"):
            brute_comm = 0
            brute_messages = 0.0
            for level in hierarchy:
                w = level.time_refinement_weight()
                faces, pairs = ghost_face_stats(result.maps[level.index])
                brute_comm += 2 * self.ghost_width * faces * w
                brute_messages += 2 * pairs * w
            brute_inter = 0
            for level in hierarchy.levels[1:]:
                brute_inter += (
                    interlevel_transfer_cells(
                        result.maps[level.index - 1],
                        result.maps[level.index],
                        level.ratio,
                    )
                    * level.time_refinement_weight()
                )
            brute_migrated = 0
            if previous is not None:
                brute_migrated = migration_cells(previous, result)
        brute_checks = {
            "ghost exchange": (comm_point_steps, brute_comm),
            "message pairs": (messages, brute_messages),
            "interlevel transfer": (interlevel, brute_inter),
            "migration": (migrated, brute_migrated),
        }
        for name, (indexed, brute) in brute_checks.items():
            if indexed != brute:
                raise AssertionError(
                    f"pair-index/bruteforce {name} mismatch: "
                    f"{indexed} != {brute}"
                )
        rasters = result.rasters()
        dense_comm = 0
        dense_messages = 0.0
        for level in hierarchy:
            w = level.time_refinement_weight()
            raster = rasters[level.index]
            dense_comm += ghost_exchange_cells(raster, self.ghost_width) * w
            dense_messages += ghost_message_pairs(raster) * w
        dense_inter = 0
        for level in hierarchy.levels[1:]:
            dense_inter += (
                interlevel_transfer_cells(
                    rasters[level.index - 1],
                    rasters[level.index],
                    level.ratio,
                )
                * level.time_refinement_weight()
            )
        dense_migrated = 0
        if previous is not None:
            dense_migrated = migration_cells_dense(
                previous.rasters(), rasters
            )
        checks = {
            "ghost exchange": (comm_point_steps, dense_comm),
            "message pairs": (messages, dense_messages),
            "interlevel transfer": (interlevel, dense_inter),
            "migration": (migrated, dense_migrated),
        }
        for name, (sparse, dense) in checks.items():
            if sparse != dense:
                raise AssertionError(
                    f"sparse/dense {name} mismatch: {sparse} != {dense}"
                )

    def run(
        self,
        trace: Trace,
        partitioner: Partitioner,
        nprocs: int,
    ) -> SimulationResult:
        """Replay a full trace under one static partitioner."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        metrics: list[StepMetrics] = []
        previous: PartitionResult | None = None
        prev_hierarchy: GridHierarchy | None = None
        name = partitioner.describe().get("name", "?")
        for snap in trace:
            with span("sim.partition", cat="sim", step=snap.step,
                      partitioner=name, ncells=snap.hierarchy.ncells):
                result = partitioner.partition(
                    snap.hierarchy, nprocs, previous
                )
            _seed_pair_indexes(previous, result)
            with span("sim.measure_step", cat="sim", step=snap.step):
                metrics.append(
                    self.measure_step(
                        snap.hierarchy,
                        result,
                        previous,
                        prev_hierarchy,
                        step=snap.step,
                        time=snap.time,
                    )
                )
            previous = result
            prev_hierarchy = snap.hierarchy
        return SimulationResult(
            trace_name=trace.name,
            partitioner=partitioner.describe(),
            nprocs=nprocs,
            steps=tuple(metrics),
        )

    def run_scheduled(
        self,
        trace: Trace,
        schedule,
        nprocs: int,
    ) -> SimulationResult:
        """Replay a trace under a per-step partitioner *schedule*.

        ``schedule`` is a callable ``(index, snapshot, previous_result) ->
        Partitioner``; this is the entry point the meta-partitioner uses to
        realize a fully dynamic PAC.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        metrics: list[StepMetrics] = []
        previous: PartitionResult | None = None
        prev_hierarchy: GridHierarchy | None = None
        last_desc: dict = {}
        for i, snap in enumerate(trace):
            partitioner = schedule(i, snap, previous)
            last_desc = partitioner.describe()
            with span("sim.partition", cat="sim", step=snap.step,
                      partitioner=last_desc.get("name", "?"),
                      scheduled=True):
                result = partitioner.partition(
                    snap.hierarchy, nprocs, previous
                )
            _seed_pair_indexes(previous, result)
            with span("sim.measure_step", cat="sim", step=snap.step):
                metrics.append(
                    self.measure_step(
                        snap.hierarchy,
                        result,
                        previous,
                        prev_hierarchy,
                        step=snap.step,
                        time=snap.time,
                    )
                )
            previous = result
            prev_hierarchy = snap.hierarchy
        return SimulationResult(
            trace_name=trace.name,
            partitioner={"name": "scheduled", "last": last_desc},
            nprocs=nprocs,
            steps=tuple(metrics),
        )
