"""Parallel-machine cost model (the C of the PAC-triple).

The paper's classification model consumes "system parameters (such as CPU
speed and communication bandwidth)".  Part II's experiments are trace-
driven and partitioner-relative, so only the *ratios* of these parameters
matter; the defaults below describe a 2003-era cluster (1 GFLOP/s-class
nodes, ~250 MB/s (Myrinet-class) interconnect, ~50 us MPI latency), the kind of machine
the paper's applications ran on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel"]


@dataclass(frozen=True, slots=True)
class MachineModel:
    """Per-operation costs of the target parallel computer.

    Parameters
    ----------
    seconds_per_cell_step :
        Wall time of one cell update (one local time step of one cell).
    bytes_per_cell :
        Payload of one transferred grid point (all state variables).
    bandwidth_bytes_per_s :
        Point-to-point sustained interconnect bandwidth.
    latency_seconds :
        Per-message cost (MPI latency + software overhead).
    sync_seconds :
        Cost of one global synchronization (barrier / collective).
    """

    seconds_per_cell_step: float = 2.0e-7
    bytes_per_cell: float = 40.0
    bandwidth_bytes_per_s: float = 2.5e8
    latency_seconds: float = 5.0e-5
    sync_seconds: float = 1.0e-4

    def __post_init__(self) -> None:
        for name in (
            "seconds_per_cell_step",
            "bytes_per_cell",
            "bandwidth_bytes_per_s",
            "latency_seconds",
            "sync_seconds",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -- cost primitives -------------------------------------------------------
    def compute_seconds(self, cell_steps: float) -> float:
        """Time to update ``cell_steps`` cells-x-steps on one rank."""
        return cell_steps * self.seconds_per_cell_step

    def transfer_seconds(self, cells: float, messages: float = 0.0) -> float:
        """Time to move ``cells`` grid points in ``messages`` messages."""
        return (
            cells * self.bytes_per_cell / self.bandwidth_bytes_per_s
            + messages * self.latency_seconds
        )

    def comm_compute_ratio(self) -> float:
        """Seconds to move one grid point over seconds to update it once.

        The system-state weight the classification uses to combine
        ``beta_L`` and ``beta_C`` (octant approach step (c): "combining
        the results" of application- and system-state classification): on
        a network-starved machine (> 1) communication penalties matter
        proportionally more.
        """
        return (
            self.bytes_per_cell
            / self.bandwidth_bytes_per_s
            / self.seconds_per_cell_step
        )

    def faster_network(self, factor: float) -> "MachineModel":
        """A variant with ``factor``-times the bandwidth (system-state knob)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return MachineModel(
            seconds_per_cell_step=self.seconds_per_cell_step,
            bytes_per_cell=self.bytes_per_cell,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s * factor,
            latency_seconds=self.latency_seconds / factor,
            sync_seconds=self.sync_seconds,
        )

    def faster_cpu(self, factor: float) -> "MachineModel":
        """A variant with ``factor``-times the per-cell compute speed."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return MachineModel(
            seconds_per_cell_step=self.seconds_per_cell_step / factor,
            bytes_per_cell=self.bytes_per_cell,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            latency_seconds=self.latency_seconds,
            sync_seconds=self.sync_seconds,
        )
