"""Trace-driven Berger--Colella execution simulator (Rutgers-simulator rebuild)."""

from .machine import MachineModel
from .raster_metrics import (
    ghost_exchange_cells,
    ghost_face_stats,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
    migration_cells_dense,
    per_rank_comm_cells,
)
from .simulator import SimulationResult, StepMetrics, TraceSimulator

__all__ = [
    "MachineModel",
    "ghost_exchange_cells",
    "ghost_face_stats",
    "ghost_message_pairs",
    "interlevel_transfer_cells",
    "migration_cells",
    "migration_cells_dense",
    "per_rank_comm_cells",
    "SimulationResult",
    "StepMetrics",
    "TraceSimulator",
]
