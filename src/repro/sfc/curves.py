"""Space-filling curves over 2-D integer grids.

Domain-based SAMR partitioners (Part I's SFC partitioners, and the coarse
partitioning stage of Nature+Fable) order the cells or atomic units of the
base grid along a space-filling curve and cut the resulting 1-D sequence
into processor segments.  Locality of the curve translates directly into
low partition surface area and hence low ghost communication.

Two curves are provided:

* **Morton (Z-order)** — bit interleaving; cheap, decent locality, the
  "partially ordered" curve the paper mentions for Nature+Fable.
* **Hilbert** — the fully-ordered curve; every consecutive pair of cells is
  face-adjacent, giving the best locality.  Implemented with the classic
  rot/flip iteration (Lam & Shapiro formulation).

Both are exposed as vectorized key functions mapping arrays of ``(x, y)``
cell coordinates to scalar keys, plus inverses, so partitioners can sort
millions of cells without Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "morton_key",
    "morton_inverse",
    "hilbert_key",
    "hilbert_inverse",
    "sfc_order",
]


def _as_uint(coords: np.ndarray, order: int) -> np.ndarray:
    coords = np.asarray(coords, dtype=np.int64)
    if coords.min(initial=0) < 0:
        raise ValueError("coordinates must be non-negative")
    if coords.max(initial=0) >= (1 << order):
        raise ValueError(f"coordinates exceed 2^{order} - 1")
    return coords.astype(np.uint64)


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of v so there is a zero between each bit."""
    v = v & np.uint64(0xFFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact1by1(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    v = v & np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def morton_key(x: np.ndarray, y: np.ndarray, order: int = 16) -> np.ndarray:
    """Z-order keys for cell coordinate arrays.

    Parameters
    ----------
    x, y :
        Integer coordinate arrays (broadcastable), each in
        ``[0, 2**order)``.
    order :
        Bits per dimension (side of the implied square grid).
    """
    if not 1 <= order <= 31:
        raise ValueError("order must be in [1, 31]")
    xs = _part1by1(_as_uint(np.asarray(x), order))
    ys = _part1by1(_as_uint(np.asarray(y), order))
    return (xs | (ys << np.uint64(1))).astype(np.uint64)


def morton_inverse(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`morton_key`: keys -> ``(x, y)`` coordinate arrays."""
    keys = np.asarray(keys, dtype=np.uint64)
    x = _compact1by1(keys)
    y = _compact1by1(keys >> np.uint64(1))
    return x.astype(np.int64), y.astype(np.int64)


def hilbert_key(x: np.ndarray, y: np.ndarray, order: int = 16) -> np.ndarray:
    """Hilbert-curve keys for cell coordinate arrays.

    Vectorized Lam--Shapiro iteration: walks the bits from the top,
    accumulating the quadrant index and applying the rotation/reflection
    needed at each scale.
    """
    if not 1 <= order <= 31:
        raise ValueError("order must be in [1, 31]")
    xv = _as_uint(np.asarray(x), order).astype(np.int64)
    yv = _as_uint(np.asarray(y), order).astype(np.int64)
    xv, yv = np.broadcast_arrays(xv, yv)
    xv = xv.copy()
    yv = yv.copy()
    key = np.zeros(xv.shape, dtype=np.uint64)
    s = 1 << (order - 1)
    while s > 0:
        rx = ((xv & s) > 0).astype(np.int64)
        ry = ((yv & s) > 0).astype(np.int64)
        key += (np.uint64(s) * np.uint64(s)) * ((3 * rx) ^ ry).astype(np.uint64)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        xv_f = np.where(flip, s - 1 - xv, xv)
        yv_f = np.where(flip, s - 1 - yv, yv)
        xv_new = np.where(swap, yv_f, xv_f)
        yv_new = np.where(swap, xv_f, yv_f)
        xv, yv = xv_new, yv_new
        s >>= 1
    return key


def hilbert_inverse(keys: np.ndarray, order: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`hilbert_key`: keys -> ``(x, y)`` coordinate arrays."""
    if not 1 <= order <= 31:
        raise ValueError("order must be in [1, 31]")
    d = np.asarray(keys, dtype=np.uint64).astype(np.int64).copy()
    x = np.zeros(d.shape, dtype=np.int64)
    y = np.zeros(d.shape, dtype=np.int64)
    s = 1
    while s < (1 << order):
        rx = 1 & (d // 2)
        ry = 1 & (d ^ rx)
        # Rotate.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x = x_new + s * rx
        y = y_new + s * ry
        d //= 4
        s *= 2
    return x, y


def sfc_order(
    x: np.ndarray, y: np.ndarray, curve: str = "hilbert", order: int = 16
) -> np.ndarray:
    """Permutation ordering cells ``(x[i], y[i])`` along the chosen curve.

    Parameters
    ----------
    curve :
        ``"hilbert"`` (fully ordered) or ``"morton"`` (partially ordered).

    Returns
    -------
    ndarray of int
        ``argsort`` of the curve keys, stable.
    """
    if curve == "hilbert":
        keys = hilbert_key(x, y, order)
    elif curve == "morton":
        keys = morton_key(x, y, order)
    else:
        raise ValueError(f"unknown curve {curve!r} (use 'hilbert' or 'morton')")
    return np.argsort(keys, kind="stable")
