"""Space-filling curves over N-dimensional integer grids.

Domain-based SAMR partitioners (Part I's SFC partitioners, and the coarse
partitioning stage of Nature+Fable) order the cells or atomic units of the
base grid along a space-filling curve and cut the resulting 1-D sequence
into processor segments.  Locality of the curve translates directly into
low partition surface area and hence low ghost communication.

Two curves are provided:

* **Morton (Z-order)** — bit interleaving; cheap, decent locality, the
  "partially ordered" curve the paper mentions for Nature+Fable.
* **Hilbert** — the fully-ordered curve; every consecutive pair of cells is
  face-adjacent, giving the best locality.

Both work in any dimension.  The 2-D entry points (``morton_key``,
``hilbert_key`` and their inverses) are kept as fast paths with their
original signatures and bit-exact results; the ``*_nd`` functions accept a
sequence of per-axis coordinate arrays.  2-D Hilbert uses the classic
rot/flip iteration (Lam & Shapiro formulation); higher dimensions use the
vectorized Skilling transpose algorithm ("Programming the Hilbert curve",
AIP Conf. Proc. 707, 2004).  Everything is vectorized so partitioners can
sort millions of cells without Python loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "morton_key",
    "morton_inverse",
    "morton_key_nd",
    "morton_inverse_nd",
    "hilbert_key",
    "hilbert_inverse",
    "hilbert_key_nd",
    "hilbert_inverse_nd",
    "max_order",
    "sfc_order",
    "sfc_order_nd",
]


def max_order(ndim: int) -> int:
    """Largest supported ``order`` (bits per axis) for ``ndim`` dimensions.

    Keys are packed into unsigned 64-bit integers, so ``order * ndim`` may
    not exceed 63 (2-D keeps its historical limit of 31 bits per axis).
    """
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    return 63 // ndim


def _check_order(order: int, ndim: int) -> None:
    limit = max_order(ndim)
    if not 1 <= order <= limit:
        raise ValueError(f"order must be in [1, {limit}] for {ndim}-d keys")


def _resolve_order(order: int | None, ndim: int) -> int:
    """Default bits-per-axis: 16 where the 63-bit key budget allows, else
    the largest order that fits ``ndim`` axes."""
    if order is None:
        order = min(16, max_order(ndim))
    _check_order(order, ndim)
    return order


def _as_uint(coords: np.ndarray, order: int) -> np.ndarray:
    coords = np.asarray(coords, dtype=np.int64)
    if coords.min(initial=0) < 0:
        raise ValueError("coordinates must be non-negative")
    if coords.max(initial=0) >= (1 << order):
        raise ValueError(f"coordinates exceed 2^{order} - 1")
    return coords.astype(np.uint64)


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of v so there is a zero between each bit."""
    v = v & np.uint64(0xFFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact1by1(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    v = v & np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def _part1by2(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of v with two zeros between each bit."""
    v = v & np.uint64(0x1FFFFF)
    v = (v | (v << np.uint64(32))) & np.uint64(0x001F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x001F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def _compact1by2(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    v = v & np.uint64(0x1249249249249249)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x001F0000FF0000FF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x001F00000000FFFF)
    v = (v | (v >> np.uint64(32))) & np.uint64(0x00000000001FFFFF)
    return v


def _spread_bits(v: np.ndarray, ndim: int, order: int) -> np.ndarray:
    """Spread bits so consecutive bits land ``ndim`` positions apart."""
    if ndim == 1:
        return v
    if ndim == 2:
        return _part1by1(v)
    if ndim == 3:
        return _part1by2(v)
    out = np.zeros_like(v)
    one = np.uint64(1)
    for b in range(order):
        out |= ((v >> np.uint64(b)) & one) << np.uint64(b * ndim)
    return out


def _compact_bits(v: np.ndarray, ndim: int, order: int) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    if ndim == 1:
        return v
    if ndim == 2:
        return _compact1by1(v)
    if ndim == 3:
        return _compact1by2(v)
    out = np.zeros_like(v)
    one = np.uint64(1)
    for b in range(order):
        out |= ((v >> np.uint64(b * ndim)) & one) << np.uint64(b)
    return out


# ---------------------------------------------------------------------------
# Morton (Z-order)
# ---------------------------------------------------------------------------
def morton_key(x: np.ndarray, y: np.ndarray, order: int = 16) -> np.ndarray:
    """Z-order keys for 2-D cell coordinate arrays (fast path).

    Parameters
    ----------
    x, y :
        Integer coordinate arrays (broadcastable), each in
        ``[0, 2**order)``.
    order :
        Bits per dimension (side of the implied square grid).
    """
    _check_order(order, 2)
    xs = _part1by1(_as_uint(np.asarray(x), order))
    ys = _part1by1(_as_uint(np.asarray(y), order))
    return (xs | (ys << np.uint64(1))).astype(np.uint64)


def morton_inverse(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`morton_key`: keys -> ``(x, y)`` coordinate arrays."""
    keys = np.asarray(keys, dtype=np.uint64)
    x = _compact1by1(keys)
    y = _compact1by1(keys >> np.uint64(1))
    return x.astype(np.int64), y.astype(np.int64)


def morton_key_nd(
    coords: Sequence[np.ndarray], order: int | None = None
) -> np.ndarray:
    """Z-order keys for N-D coordinates.

    Parameters
    ----------
    coords :
        Sequence of per-axis integer coordinate arrays (one entry per
        dimension, broadcastable against each other), each in
        ``[0, 2**order)``.  Axis 0 occupies the least-significant bit of
        every interleaved group, matching the 2-D ``morton_key(x, y)``
        convention.
    order :
        Bits per dimension; ``order * ndim`` must not exceed 63.  Defaults
        to 16 capped at :func:`max_order` of the dimension.
    """
    ndim = len(coords)
    order = _resolve_order(order, ndim)
    arrays = np.broadcast_arrays(*(_as_uint(np.asarray(c), order) for c in coords))
    key = np.zeros(arrays[0].shape, dtype=np.uint64)
    for d, arr in enumerate(arrays):
        key |= _spread_bits(arr, ndim, order) << np.uint64(d)
    return key


def morton_inverse_nd(
    keys: np.ndarray, ndim: int, order: int | None = None
) -> tuple[np.ndarray, ...]:
    """Invert :func:`morton_key_nd`: keys -> per-axis coordinate arrays."""
    order = _resolve_order(order, ndim)
    keys = np.asarray(keys, dtype=np.uint64)
    return tuple(
        _compact_bits(keys >> np.uint64(d), ndim, order).astype(np.int64)
        for d in range(ndim)
    )


# ---------------------------------------------------------------------------
# Hilbert
# ---------------------------------------------------------------------------
def hilbert_key(x: np.ndarray, y: np.ndarray, order: int = 16) -> np.ndarray:
    """Hilbert-curve keys for 2-D cell coordinate arrays (fast path).

    Vectorized Lam--Shapiro iteration: walks the bits from the top,
    accumulating the quadrant index and applying the rotation/reflection
    needed at each scale.
    """
    _check_order(order, 2)
    xv = _as_uint(np.asarray(x), order).astype(np.int64)
    yv = _as_uint(np.asarray(y), order).astype(np.int64)
    xv, yv = np.broadcast_arrays(xv, yv)
    xv = xv.copy()
    yv = yv.copy()
    key = np.zeros(xv.shape, dtype=np.uint64)
    s = 1 << (order - 1)
    while s > 0:
        rx = ((xv & s) > 0).astype(np.int64)
        ry = ((yv & s) > 0).astype(np.int64)
        key += (np.uint64(s) * np.uint64(s)) * ((3 * rx) ^ ry).astype(np.uint64)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        xv_f = np.where(flip, s - 1 - xv, xv)
        yv_f = np.where(flip, s - 1 - yv, yv)
        xv_new = np.where(swap, yv_f, xv_f)
        yv_new = np.where(swap, xv_f, yv_f)
        xv, yv = xv_new, yv_new
        s >>= 1
    return key


def hilbert_inverse(keys: np.ndarray, order: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`hilbert_key`: keys -> ``(x, y)`` coordinate arrays."""
    _check_order(order, 2)
    d = np.asarray(keys, dtype=np.uint64).astype(np.int64).copy()
    x = np.zeros(d.shape, dtype=np.int64)
    y = np.zeros(d.shape, dtype=np.int64)
    s = 1
    while s < (1 << order):
        rx = 1 & (d // 2)
        ry = 1 & (d ^ rx)
        # Rotate.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x = x_new + s * rx
        y = y_new + s * ry
        d //= 4
        s *= 2
    return x, y


def _axes_to_transpose(axes: list[np.ndarray], order: int) -> list[np.ndarray]:
    """Skilling AxesToTranspose, vectorized over coordinate arrays."""
    X = [a.copy() for a in axes]
    ndim = len(X)
    q = 1 << (order - 1)
    while q > 1:
        p = np.int64(q - 1)
        for i in range(ndim):
            hasbit = (X[i] & q) != 0
            t = (X[0] ^ X[i]) & p
            x0_inv = X[0] ^ p
            x0_exch = X[0] ^ t
            xi_exch = X[i] ^ t
            # X[0] may alias X[i] when i == 0; t is then zero and the
            # exchange branch is a no-op, matching the scalar algorithm.
            X[0] = np.where(hasbit, x0_inv, x0_exch)
            if i > 0:
                X[i] = np.where(hasbit, X[i], xi_exch)
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        X[i] = X[i] ^ X[i - 1]
    t = np.zeros_like(X[0])
    q = 1 << (order - 1)
    while q > 1:
        mask = (X[ndim - 1] & q) != 0
        t = np.where(mask, t ^ np.int64(q - 1), t)
        q >>= 1
    for i in range(ndim):
        X[i] = X[i] ^ t
    return X


def _transpose_to_axes(X: list[np.ndarray], order: int) -> list[np.ndarray]:
    """Skilling TransposeToAxes, vectorized over coordinate arrays."""
    X = [a.copy() for a in X]
    ndim = len(X)
    # Gray decode by H ^ (H >> 1).
    t = X[ndim - 1] >> 1
    for i in range(ndim - 1, 0, -1):
        X[i] = X[i] ^ X[i - 1]
    X[0] = X[0] ^ t
    q = 2
    top = 1 << order
    while q != top:
        p = np.int64(q - 1)
        for i in range(ndim - 1, -1, -1):
            hasbit = (X[i] & q) != 0
            t2 = (X[0] ^ X[i]) & p
            x0_inv = X[0] ^ p
            x0_exch = X[0] ^ t2
            xi_exch = X[i] ^ t2
            if i > 0:
                X[i] = np.where(hasbit, X[i], xi_exch)
            X[0] = np.where(hasbit, x0_inv, x0_exch)
        q <<= 1
    return X


def hilbert_key_nd(
    coords: Sequence[np.ndarray], order: int | None = None
) -> np.ndarray:
    """Hilbert-curve keys for N-D coordinates.

    Parameters
    ----------
    coords :
        Sequence of per-axis integer coordinate arrays, as in
        :func:`morton_key_nd`.
    order :
        Bits per dimension; ``order * ndim`` must not exceed 63.  Defaults
        to 16 capped at :func:`max_order` of the dimension.

    Notes
    -----
    2-D delegates to the Lam--Shapiro fast path (bit-identical with the
    historical :func:`hilbert_key`); other dimensions use the Skilling
    transpose algorithm.  The two conventions differ in curve orientation
    but both are bijections onto ``[0, (2**order)**ndim)`` with unit-step
    face adjacency.
    """
    ndim = len(coords)
    order = _resolve_order(order, ndim)
    if ndim == 2:
        return hilbert_key(coords[0], coords[1], order)
    arrays = np.broadcast_arrays(
        *(_as_uint(np.asarray(c), order).astype(np.int64) for c in coords)
    )
    if ndim == 1:
        return arrays[0].astype(np.uint64)
    X = _axes_to_transpose(list(arrays), order)
    # The transposed form holds bit b of axis i at significance
    # (b * ndim + ndim - 1 - i): axis 0 carries the top bit of each group.
    key = np.zeros(X[0].shape, dtype=np.uint64)
    for i, xi in enumerate(X):
        key |= _spread_bits(xi.astype(np.uint64), ndim, order) << np.uint64(
            ndim - 1 - i
        )
    return key


def hilbert_inverse_nd(
    keys: np.ndarray, ndim: int, order: int | None = None
) -> tuple[np.ndarray, ...]:
    """Invert :func:`hilbert_key_nd`: keys -> per-axis coordinate arrays."""
    order = _resolve_order(order, ndim)
    if ndim == 2:
        return hilbert_inverse(keys, order)
    keys = np.asarray(keys, dtype=np.uint64)
    if ndim == 1:
        return (keys.astype(np.int64),)
    X = [
        _compact_bits(keys >> np.uint64(ndim - 1 - i), ndim, order).astype(np.int64)
        for i in range(ndim)
    ]
    axes = _transpose_to_axes(X, order)
    return tuple(a.astype(np.int64) for a in axes)


# ---------------------------------------------------------------------------
# Ordering helpers
# ---------------------------------------------------------------------------
def sfc_order_nd(
    coords: Sequence[np.ndarray], curve: str = "hilbert", order: int | None = None
) -> np.ndarray:
    """Permutation ordering N-D cells along the chosen curve.

    Parameters
    ----------
    coords :
        Sequence of per-axis coordinate arrays (one per dimension).
    curve :
        ``"hilbert"`` (fully ordered) or ``"morton"`` (partially ordered).

    Returns
    -------
    ndarray of int
        ``argsort`` of the curve keys, stable.
    """
    if curve == "hilbert":
        keys = hilbert_key_nd(coords, order)
    elif curve == "morton":
        keys = morton_key_nd(coords, order)
    else:
        raise ValueError(f"unknown curve {curve!r} (use 'hilbert' or 'morton')")
    return np.argsort(keys, kind="stable")


def sfc_order(
    x: np.ndarray, y: np.ndarray, curve: str = "hilbert", order: int = 16
) -> np.ndarray:
    """2-D convenience wrapper around :func:`sfc_order_nd`."""
    return sfc_order_nd((x, y), curve=curve, order=order)
