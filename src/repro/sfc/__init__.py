"""Space-filling curves (Morton / Hilbert) for domain-based partitioning."""

from .curves import (
    hilbert_inverse,
    hilbert_inverse_nd,
    hilbert_key,
    hilbert_key_nd,
    max_order,
    morton_inverse,
    morton_inverse_nd,
    morton_key,
    morton_key_nd,
    sfc_order,
    sfc_order_nd,
)

__all__ = [
    "hilbert_inverse",
    "hilbert_inverse_nd",
    "hilbert_key",
    "hilbert_key_nd",
    "max_order",
    "morton_inverse",
    "morton_inverse_nd",
    "morton_key",
    "morton_key_nd",
    "sfc_order",
    "sfc_order_nd",
]
