"""Space-filling curves (Morton / Hilbert) for domain-based partitioning."""

from .curves import (
    hilbert_inverse,
    hilbert_key,
    morton_inverse,
    morton_key,
    sfc_order,
)

__all__ = [
    "hilbert_inverse",
    "hilbert_key",
    "morton_inverse",
    "morton_key",
    "sfc_order",
]
