"""Flag-based regridding: error indicators and Berger--Rigoutsos clustering."""

from .berger_rigoutsos import ClusterParams, cluster_flags
from .flagging import (
    buffer_flags,
    downsample_mask,
    flags_from_indicator,
    gradient_indicator,
    restrict_flags_to_mask,
)

__all__ = [
    "ClusterParams",
    "cluster_flags",
    "buffer_flags",
    "downsample_mask",
    "flags_from_indicator",
    "gradient_indicator",
    "restrict_flags_to_mask",
]
