"""Berger--Rigoutsos point clustering: flagged cells -> patch boxes.

The applications flag cells with large solution error at each regrid step;
this module turns the boolean flag raster into the disjoint patch set of a
refinement level, using the classic signature/Laplacian algorithm of
Berger & Rigoutsos (IEEE Trans. SMC 21(5), 1991) — the same clustering the
GrACE/Cactus kernels behind the paper's traces use.

Algorithm sketch (per recursive call):

1. Shrink to the bounding box of the flags.
2. Accept the box if its *efficiency* (flagged / total cells) meets the
   threshold, or it cannot be split further (granularity).
3. Otherwise split: prefer a *hole* (zero in a signature), then the largest
   zero crossing of the signature Laplacian, then the midpoint; recurse on
   the two halves.

The paper's experimental setup uses a minimum block dimension
("granularity") of 2; that is the default here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Box
from ..telemetry import span

__all__ = ["ClusterParams", "cluster_flags"]


@dataclass(frozen=True, slots=True)
class ClusterParams:
    """Tuning knobs of the clustering algorithm.

    Parameters
    ----------
    efficiency :
        Minimum fraction of flagged cells a patch must contain before the
        recursion accepts it (typical SAMR values: 0.7--0.9).
    granularity :
        Minimum patch extent per dimension.  The paper's setup uses 2.
    max_cells :
        Optional hard cap on accepted patch size; oversized efficient
        patches are bisected anyway, keeping patch counts realistic.
    ndim :
        Spatial dimensionality of the flag rasters this parameter set is
        meant for.  Sizes the smallest admissible patch
        (``granularity**ndim`` cells) for the ``max_cells`` validation;
        :func:`cluster_flags` rejects rasters of a different rank.
    """

    efficiency: float = 0.8
    granularity: int = 2
    max_cells: int | None = None
    ndim: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.granularity < 1:
            raise ValueError("granularity must be >= 1")
        if self.ndim < 1:
            raise ValueError("ndim must be >= 1")
        if self.max_cells is not None and self.max_cells < self.granularity**self.ndim:
            raise ValueError("max_cells too small for the granularity")


def _bounding_slices(flags: np.ndarray) -> tuple[slice, ...] | None:
    """Tight bounding slices of True cells, or None if all-False."""
    if not flags.any():
        return None
    out = []
    for d in range(flags.ndim):
        axes = tuple(e for e in range(flags.ndim) if e != d)
        profile = flags.any(axis=axes)
        idx = np.flatnonzero(profile)
        out.append(slice(int(idx[0]), int(idx[-1]) + 1))
    return tuple(out)


def _signatures(flags: np.ndarray) -> list[np.ndarray]:
    """Per-dimension signatures: flagged-cell counts of each slab."""
    sigs = []
    for d in range(flags.ndim):
        axes = tuple(e for e in range(flags.ndim) if e != d)
        sigs.append(flags.sum(axis=axes, dtype=np.int64))
    return sigs


def _best_hole(sig: np.ndarray, min_extent: int) -> tuple[int, int] | None:
    """Most central zero of a signature respecting the granularity.

    Returns ``(cut, centrality)`` where smaller centrality is better, or
    ``None`` when no admissible hole exists.  The cut is placed *after*
    index ``cut - 1``.
    """
    n = sig.size
    zeros = np.flatnonzero(sig == 0)
    zeros = zeros[(zeros >= min_extent) & (zeros <= n - min_extent - 1)]
    if zeros.size == 0:
        return None
    centre = (n - 1) / 2.0
    best = int(zeros[np.argmin(np.abs(zeros - centre))])
    return best, int(abs(best - centre))

def _best_inflection(sig: np.ndarray, min_extent: int) -> tuple[int, int] | None:
    """Strongest admissible zero crossing of the signature Laplacian.

    Returns ``(cut, strength)``; larger strength is better.
    """
    n = sig.size
    if n < 4:
        return None
    lap = np.zeros(n, dtype=np.int64)
    lap[1:-1] = sig[:-2] - 2 * sig[1:-1] + sig[2:]
    # Zero crossings between i and i+1; cut after i+1 cells.
    prod = lap[:-1] * lap[1:]
    crossings = np.flatnonzero(prod < 0)
    strengths = np.abs(lap[crossings + 1] - lap[crossings])
    cuts = crossings + 1
    ok = (cuts >= min_extent) & (cuts <= n - min_extent)
    cuts, strengths = cuts[ok], strengths[ok]
    if cuts.size == 0:
        return None
    order = np.argsort(strengths, kind="stable")
    best = int(cuts[order[-1]])
    return best, int(strengths[order[-1]])


def _split_point(flags: np.ndarray, params: ClusterParams) -> tuple[int, int] | None:
    """Choose ``(dim, cut)`` for bisection, or None if unsplittable."""
    g = params.granularity
    sigs = _signatures(flags)
    # 1. Holes, most central across all dimensions.
    hole_candidates: list[tuple[int, int, int]] = []  # (centrality, dim, cut)
    for d, sig in enumerate(sigs):
        if sig.size < 2 * g:
            continue
        found = _best_hole(sig, g)
        if found is not None:
            cut, centrality = found
            hole_candidates.append((centrality, d, cut))
    if hole_candidates:
        _, d, cut = min(hole_candidates)
        return d, cut
    # 2. Laplacian inflection, strongest across dimensions.
    infl_candidates: list[tuple[int, int, int]] = []  # (-strength, dim, cut)
    for d, sig in enumerate(sigs):
        if sig.size < 2 * g:
            continue
        found = _best_inflection(sig, g)
        if found is not None:
            cut, strength = found
            infl_candidates.append((-strength, d, cut))
    if infl_candidates:
        _, d, cut = min(infl_candidates)
        return d, cut
    # 3. Midpoint of the longest splittable dimension.
    dims = [d for d in range(flags.ndim) if flags.shape[d] >= 2 * g]
    if not dims:
        return None
    d = max(dims, key=lambda d: flags.shape[d])
    return d, flags.shape[d] // 2


def _cluster_rec(
    flags: np.ndarray,
    origin: tuple[int, ...],
    params: ClusterParams,
    out: list[Box],
) -> None:
    bounds = _bounding_slices(flags)
    if bounds is None:
        return
    sub = flags[bounds]
    origin = tuple(o + s.start for o, s in zip(origin, bounds))
    nflag = int(sub.sum())
    efficiency = nflag / sub.size
    too_big = params.max_cells is not None and sub.size > params.max_cells
    if efficiency >= params.efficiency and not too_big:
        out.append(Box(origin, tuple(o + s for o, s in zip(origin, sub.shape))))
        return
    split = _split_point(sub, params)
    if split is None:
        out.append(Box(origin, tuple(o + s for o, s in zip(origin, sub.shape))))
        return
    d, cut = split
    lo_idx = tuple(
        slice(0, cut) if e == d else slice(None) for e in range(sub.ndim)
    )
    hi_idx = tuple(
        slice(cut, None) if e == d else slice(None) for e in range(sub.ndim)
    )
    hi_origin = tuple(o + (cut if e == d else 0) for e, o in enumerate(origin))
    _cluster_rec(sub[lo_idx], origin, params, out)
    _cluster_rec(sub[hi_idx], hi_origin, params, out)


def cluster_flags(
    flags: np.ndarray, params: ClusterParams | None = None
) -> list[Box]:
    """Cluster a boolean flag raster into disjoint covering boxes.

    Parameters
    ----------
    flags :
        Boolean array over a level's index space; True marks cells that
        must be refined.
    params :
        Clustering knobs (defaults: efficiency 0.8, granularity 2).

    Returns
    -------
    list of Box
        Disjoint boxes that cover every flagged cell.  Empty when nothing
        is flagged.
    """
    if params is None:
        params = ClusterParams(ndim=flags.ndim)
    if flags.ndim != params.ndim:
        raise ValueError(
            f"{flags.ndim}-d flags with {params.ndim}-d ClusterParams"
        )
    if flags.dtype != bool:
        flags = flags.astype(bool)
    out: list[Box] = []
    with span("cluster.flags", cat="cluster", ndim=flags.ndim) as sp:
        _cluster_rec(flags, (0,) * flags.ndim, params, out)
        sp.annotate(nboxes=len(out))
    return out
