"""Error-estimation utilities: solution fields -> refinement flag rasters.

The GrACE/Cactus-style kernels behind the paper's traces flag cells whose
local truncation-error estimate exceeds a tolerance.  We use the standard
scaled-gradient indicator (the workhorse of production SAMR codes such as
AMReX and SAMRAI) plus helpers for buffering flags and enforcing proper
nesting between consecutive levels.
"""

from __future__ import annotations

import numpy as np

from scipy import ndimage

__all__ = [
    "gradient_indicator",
    "flags_from_indicator",
    "buffer_flags",
    "restrict_flags_to_mask",
    "downsample_mask",
]


def gradient_indicator(field: np.ndarray) -> np.ndarray:
    """Undivided-gradient error indicator, normalized to ``[0, 1]``.

    Computes ``max_d |field[i+e_d] - field[i-e_d]| / 2`` with edge
    replication and scales by the global maximum (0 everywhere for a
    constant field).  Cheap, robust and partitioning-independent — exactly
    the kind of estimator a single-processor trace run uses.
    """
    if field.ndim < 1:
        raise ValueError("field must have at least one dimension")
    indicator = np.zeros_like(field, dtype=np.float64)
    for d in range(field.ndim):
        forward = np.roll(field, -1, axis=d)
        backward = np.roll(field, 1, axis=d)
        # Replicate edges instead of wrapping.
        sl_first = [slice(None)] * field.ndim
        sl_last = [slice(None)] * field.ndim
        sl_first[d] = slice(0, 1)
        sl_last[d] = slice(-1, None)
        forward[tuple(sl_last)] = field[tuple(sl_last)]
        backward[tuple(sl_first)] = field[tuple(sl_first)]
        np.maximum(indicator, np.abs(forward - backward) * 0.5, out=indicator)
    peak = indicator.max()
    if peak > 0:
        indicator /= peak
    return indicator


def flags_from_indicator(indicator: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean flags: cells whose indicator exceeds ``threshold``."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    return indicator > threshold


def buffer_flags(flags: np.ndarray, width: int) -> np.ndarray:
    """Dilate flags by ``width`` cells (Chebyshev ball).

    SAMR codes buffer flagged regions so features do not escape the
    refined patches between regrids.  Implemented with a separable
    maximum filter: O(n) independent of ``width``.
    """
    if width < 0:
        raise ValueError("buffer width must be >= 0")
    if width == 0 or not flags.any():
        return flags.astype(bool)
    return (
        ndimage.maximum_filter(flags.astype(np.uint8), size=2 * width + 1) > 0
    )


def restrict_flags_to_mask(flags: np.ndarray, parent_mask: np.ndarray) -> np.ndarray:
    """Zero out flags outside the allowed parent region (proper nesting)."""
    if flags.shape != parent_mask.shape:
        raise ValueError(
            f"shape mismatch: flags {flags.shape} vs mask {parent_mask.shape}"
        )
    return flags & parent_mask


def downsample_mask(mask: np.ndarray, ratio: int) -> np.ndarray:
    """Coarsen a boolean raster by ``ratio``: True if any fine cell is True."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    if ratio == 1:
        return mask.astype(bool)
    if any(s % ratio for s in mask.shape):
        raise ValueError(f"shape {mask.shape} not divisible by ratio {ratio}")
    view_shape: list[int] = []
    for s in mask.shape:
        view_shape.extend((s // ratio, ratio))
    reshaped = mask.reshape(view_shape)
    axes = tuple(range(1, 2 * mask.ndim, 2))
    return reshaped.any(axis=axes)
