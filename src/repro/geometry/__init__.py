"""Integer box calculus, patch sets and rasterization for SAMR index spaces."""

from .box import Box, bounding_box
from .boxlist import (
    BoxList,
    coalesce_boxes,
    intersection_volume,
    subtract_boxes,
    union_ncells,
)
from .raster import (
    NO_OWNER,
    block_sum,
    boxes_from_mask,
    paint_box,
    rasterize_mask,
    rasterize_owners,
    upsample,
)

__all__ = [
    "Box",
    "BoxList",
    "bounding_box",
    "coalesce_boxes",
    "intersection_volume",
    "subtract_boxes",
    "union_ncells",
    "NO_OWNER",
    "block_sum",
    "boxes_from_mask",
    "paint_box",
    "rasterize_mask",
    "rasterize_owners",
    "upsample",
]
