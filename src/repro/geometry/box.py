"""Integer box calculus for structured AMR index spaces.

A :class:`Box` is an axis-aligned, half-open rectangular region
``[lo, hi)`` of an n-dimensional integer index space.  Boxes are the
fundamental geometric object of Berger--Colella SAMR: every grid patch at
every refinement level is a box in the index space of that level, and the
paper's data-migration penalty ``beta_m`` (Part II, section 4.4) is defined
entirely in terms of pairwise box intersections between two
time-consecutive hierarchies.

Boxes are immutable and hashable so they can be used as dictionary keys
(e.g. owner maps in the partitioners) and stored in sets.  All operations
return new boxes.

Conventions
-----------
* ``lo`` and ``hi`` are tuples of Python ints; ``lo[d] <= hi[d]``.
* A box with ``lo[d] == hi[d]`` in any dimension is *empty* (zero cells).
* Refinement by an integer ratio ``r`` maps cell ``i`` at the coarse level
  to cells ``[i*r, (i+1)*r)`` at the fine level; coarsening uses floor
  division and is the left inverse of refinement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Box", "bounding_box"]


@dataclass(frozen=True, slots=True)
class Box:
    """A half-open integer box ``[lo, hi)`` in n-dimensional index space.

    Parameters
    ----------
    lo :
        Inclusive lower corner, one int per dimension.
    hi :
        Exclusive upper corner, one int per dimension.

    Raises
    ------
    ValueError
        If ``lo`` and ``hi`` have different lengths, are empty, or if any
        ``hi[d] < lo[d]``.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        lo = tuple(int(v) for v in self.lo)
        hi = tuple(int(v) for v in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != len(hi):
            raise ValueError(f"lo and hi must have equal length, got {lo} / {hi}")
        if len(lo) == 0:
            raise ValueError("boxes must have at least one dimension")
        if any(h < l for l, h in zip(lo, hi)):
            raise ValueError(f"inverted box: lo={lo} hi={hi}")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent (number of cells) along each dimension."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def ncells(self) -> int:
        """Total number of cells; 0 for an empty box."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def empty(self) -> bool:
        """True if the box contains no cells."""
        return any(h == l for l, h in zip(self.lo, self.hi))

    @property
    def surface_cells(self) -> int:
        """Number of boundary *faces* of the box (cell faces on the hull).

        For a non-empty box this is ``sum_d 2 * prod_{e != d} shape[e]``; it
        is the natural worst-case ghost-communication volume for a patch
        with a one-cell-wide ghost layer and is used by the Part-I
        communication-penalty reconstruction.
        """
        if self.empty:
            return 0
        shape = self.shape
        total = 0
        for d in range(self.ndim):
            face = 1
            for e, s in enumerate(shape):
                if e != d:
                    face *= s
            total += 2 * face
        return total

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if the integer cell ``point`` lies inside the box."""
        if len(point) != self.ndim:
            raise ValueError("dimension mismatch")
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    def contains_box(self, other: "Box") -> bool:
        """True if ``other`` is entirely inside (or equal to) this box.

        An empty ``other`` is contained in everything.
        """
        self._check_ndim(other)
        if other.empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def _check_ndim(self, other: "Box") -> None:
        if self.ndim != other.ndim:
            raise ValueError(
                f"dimension mismatch: {self.ndim}-d box vs {other.ndim}-d box"
            )

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Box") -> "Box | None":
        """Intersection with another box, or ``None`` if disjoint/empty.

        This is the primitive underlying the paper's ``beta_m`` penalty:
        ``|G^{l,i}_{t-1} ∩ G^{l,j}_t|`` is
        ``a.intersect(b).ncells`` (0 when ``None``).
        """
        self._check_ndim(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def intersects(self, other: "Box") -> bool:
        """True if the two boxes share at least one cell."""
        return self.intersect(other) is not None

    def intersection_ncells(self, other: "Box") -> int:
        """Number of cells in the intersection (0 if disjoint)."""
        self._check_ndim(other)
        n = 1
        for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            w = min(sh, oh) - max(sl, ol)
            if w <= 0:
                return 0
            n *= w
        return n

    def subtract(self, other: "Box") -> list["Box"]:
        """Set difference ``self \\ other`` as a list of disjoint boxes.

        Uses the standard dimension-sweep decomposition: at most ``2*ndim``
        result boxes, all disjoint, whose union is exactly the difference.
        """
        inter = self.intersect(other)
        if inter is None:
            return [] if self.empty else [self]
        if inter == self:
            return []
        pieces: list[Box] = []
        lo = list(self.lo)
        hi = list(self.hi)
        for d in range(self.ndim):
            if lo[d] < inter.lo[d]:
                plo, phi = list(lo), list(hi)
                phi[d] = inter.lo[d]
                pieces.append(Box(tuple(plo), tuple(phi)))
            if inter.hi[d] < hi[d]:
                plo, phi = list(lo), list(hi)
                plo[d] = inter.hi[d]
                pieces.append(Box(tuple(plo), tuple(phi)))
            # Narrow the remaining slab to the intersection range in dim d.
            lo[d] = inter.lo[d]
            hi[d] = inter.hi[d]
        return pieces

    def merge_bounding(self, other: "Box") -> "Box":
        """Smallest box containing both operands (bounding-box union)."""
        self._check_ndim(other)
        if self.empty:
            return other
        if other.empty:
            return self
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def can_coalesce(self, other: "Box") -> bool:
        """True if the union of the boxes is itself a box.

        Two boxes coalesce when they agree in all dimensions except one, in
        which they abut or overlap.
        """
        self._check_ndim(other)
        if self.empty or other.empty:
            return True
        diff_dim = -1
        for d in range(self.ndim):
            if self.lo[d] != other.lo[d] or self.hi[d] != other.hi[d]:
                if diff_dim >= 0:
                    return False
                diff_dim = d
        if diff_dim < 0:
            return True  # identical boxes
        d = diff_dim
        return self.lo[d] <= other.hi[d] and other.lo[d] <= self.hi[d]

    # ------------------------------------------------------------------
    # Index-space maps
    # ------------------------------------------------------------------
    def refine(self, ratio: int) -> "Box":
        """Map to the index space of a level refined by ``ratio``."""
        if ratio < 1:
            raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
        return Box(
            tuple(l * ratio for l in self.lo), tuple(h * ratio for h in self.hi)
        )

    def coarsen(self, ratio: int) -> "Box":
        """Map to the index space of a level coarsened by ``ratio``.

        The result covers every coarse cell touched by this box (outward
        rounding), so ``b.coarsen(r).refine(r).contains_box(b)`` always
        holds.
        """
        if ratio < 1:
            raise ValueError(f"coarsening ratio must be >= 1, got {ratio}")
        return Box(
            tuple(l // ratio for l in self.lo),
            tuple(-((-h) // ratio) for h in self.hi),
        )

    def grow(self, width: int | Sequence[int]) -> "Box":
        """Grow (``width > 0``) or shrink (``width < 0``) by cells per side."""
        if isinstance(width, int):
            widths: tuple[int, ...] = (width,) * self.ndim
        else:
            widths = tuple(int(w) for w in width)
            if len(widths) != self.ndim:
                raise ValueError("width length must match ndim")
        lo = tuple(l - w for l, w in zip(self.lo, widths))
        hi = tuple(h + w for h, w in zip(self.hi, widths))
        if any(h < l for l, h in zip(lo, hi)):
            raise ValueError("shrink produced an inverted box")
        return Box(lo, hi)

    def shift(self, offset: Sequence[int]) -> "Box":
        """Translate by an integer offset per dimension."""
        if len(offset) != self.ndim:
            raise ValueError("offset length must match ndim")
        return Box(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    # ------------------------------------------------------------------
    # Decomposition helpers
    # ------------------------------------------------------------------
    def split(self, dim: int, cut: int) -> tuple["Box", "Box"]:
        """Split along ``dim`` at index ``cut`` into lower and upper halves.

        ``cut`` must satisfy ``lo[dim] <= cut <= hi[dim]``; either half may
        be empty when the cut sits at an edge.
        """
        if not 0 <= dim < self.ndim:
            raise ValueError(f"dim {dim} out of range for {self.ndim}-d box")
        if not self.lo[dim] <= cut <= self.hi[dim]:
            raise ValueError(
                f"cut {cut} outside [{self.lo[dim]}, {self.hi[dim]}] in dim {dim}"
            )
        lo_hi = list(self.hi)
        lo_hi[dim] = cut
        hi_lo = list(self.lo)
        hi_lo[dim] = cut
        return Box(self.lo, tuple(lo_hi)), Box(tuple(hi_lo), self.hi)

    def chop(self, dim: int, max_extent: int) -> list["Box"]:
        """Chop into pieces of at most ``max_extent`` cells along ``dim``."""
        if max_extent < 1:
            raise ValueError("max_extent must be >= 1")
        pieces: list[Box] = []
        lo, hi = self.lo[dim], self.hi[dim]
        if lo == hi:
            return [self]
        for start in range(lo, hi, max_extent):
            end = min(start + max_extent, hi)
            plo = list(self.lo)
            phi = list(self.hi)
            plo[dim] = start
            phi[dim] = end
            pieces.append(Box(tuple(plo), tuple(phi)))
        return pieces

    def tile(self, tile_shape: Sequence[int]) -> list["Box"]:
        """Tile into sub-boxes of at most ``tile_shape`` cells per dim.

        Tiles are aligned to the box's own lower corner, ordered
        lexicographically.  The boundary tiles may be smaller.
        """
        if len(tile_shape) != self.ndim:
            raise ValueError("tile_shape length must match ndim")
        if any(t < 1 for t in tile_shape):
            raise ValueError("tile extents must be >= 1")
        if self.empty:
            return []
        ranges = [
            range(self.lo[d], self.hi[d], tile_shape[d]) for d in range(self.ndim)
        ]
        tiles: list[Box] = []
        for corner in itertools.product(*ranges):
            hi = tuple(
                min(corner[d] + tile_shape[d], self.hi[d]) for d in range(self.ndim)
            )
            tiles.append(Box(corner, hi))
        return tiles

    def cells(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all integer cells (row-major).  For small boxes only."""
        return itertools.product(*(range(l, h) for l, h in zip(self.lo, self.hi)))

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({list(self.lo)}..{list(self.hi)})"

    def to_json(self) -> list[list[int]]:
        """JSON-serializable form ``[[lo...], [hi...]]``."""
        return [list(self.lo), list(self.hi)]

    @staticmethod
    def from_json(data: Sequence[Sequence[int]]) -> "Box":
        """Inverse of :meth:`to_json`."""
        lo, hi = data
        return Box(tuple(int(v) for v in lo), tuple(int(v) for v in hi))


def bounding_box(boxes: Iterable[Box]) -> Box | None:
    """Smallest box containing every box in ``boxes`` (``None`` if empty)."""
    result: Box | None = None
    for b in boxes:
        if b.empty:
            continue
        result = b if result is None else result.merge_bounding(b)
    return result
