"""Rasterization of boxes onto dense numpy grids.

The execution simulator computes load, ghost communication and migration on
*owner rasters*: dense integer arrays over a level's index space in which
each refined cell carries the rank that owns it (and ``NO_OWNER`` outside
the refined region).  Rasters keep every per-cell metric a vectorized numpy
reduction, per the HPC guides — no Python-level loops over cells anywhere
in the hot path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .box import Box

__all__ = [
    "NO_OWNER",
    "rasterize_mask",
    "rasterize_owners",
    "paint_box",
    "boxes_from_mask",
]

NO_OWNER: int = -1
"""Sentinel rank for cells outside the refined region of a level."""


def _check_domain(domain: Box) -> None:
    if domain.empty:
        raise ValueError("cannot rasterize onto an empty domain")
    if any(l != 0 for l in domain.lo):
        raise ValueError("raster domains must be anchored at the origin")


def paint_box(array: np.ndarray, box: Box, value: int) -> None:
    """Assign ``value`` to the cells of ``box`` inside ``array`` (clipped).

    ``array`` indexes the domain ``[0, shape)``; parts of ``box`` outside
    the array are silently ignored.
    """
    if box.ndim != array.ndim:
        raise ValueError("box/array dimension mismatch")
    slices = []
    for d in range(box.ndim):
        lo = max(box.lo[d], 0)
        hi = min(box.hi[d], array.shape[d])
        if hi <= lo:
            return
        slices.append(slice(lo, hi))
    array[tuple(slices)] = value


def rasterize_mask(boxes: Iterable[Box], domain: Box) -> np.ndarray:
    """Boolean raster of the union of ``boxes`` over ``domain``.

    ``domain`` must be anchored at the origin (SAMR level index spaces
    are); cells of ``boxes`` outside the domain are clipped away.
    """
    _check_domain(domain)
    mask = np.zeros(domain.shape, dtype=bool)
    for b in boxes:
        paint_box(mask, b, True)  # type: ignore[arg-type]
    return mask


def rasterize_owners(
    assignments: Sequence[tuple[Box, int]], domain: Box
) -> np.ndarray:
    """Dense int32 owner raster from ``(box, rank)`` assignments.

    Later assignments overwrite earlier ones (assignments from a valid
    partition are disjoint, so order never matters there).  Cells not
    covered by any box hold :data:`NO_OWNER`.
    """
    _check_domain(domain)
    owners = np.full(domain.shape, NO_OWNER, dtype=np.int32)
    for box, rank in assignments:
        if rank < 0:
            raise ValueError(f"owner ranks must be >= 0, got {rank}")
        paint_box(owners, box, rank)
    return owners


def boxes_from_mask(mask: np.ndarray) -> list[Box]:
    """Decompose a boolean raster into disjoint boxes (greedy row merge).

    Scans rows of the first axis, emits maximal runs along the last axis,
    then greedily merges vertically-adjacent identical runs.  Exact (the
    union of the result equals the mask) but not minimal; used to recover
    patch sets from masks in tests and in the clustering fallback path.
    """
    if mask.ndim != 2:
        raise ValueError("boxes_from_mask supports 2-d masks")
    nrows, _ = mask.shape
    # Active runs: (col_lo, col_hi) -> row_start, carried while identical.
    active: dict[tuple[int, int], int] = {}
    out: list[Box] = []

    def runs_of(row: np.ndarray) -> list[tuple[int, int]]:
        idx = np.flatnonzero(row)
        if idx.size == 0:
            return []
        breaks = np.flatnonzero(np.diff(idx) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [idx.size - 1]))
        return [(int(idx[s]), int(idx[e]) + 1) for s, e in zip(starts, ends)]

    for r in range(nrows):
        current = set(runs_of(mask[r]))
        # Close runs that do not continue into this row.
        for run in list(active):
            if run not in current:
                row_start = active.pop(run)
                out.append(Box((row_start, run[0]), (r, run[1])))
        # Open new runs.
        for run in current:
            if run not in active:
                active[run] = r
    for run, row_start in active.items():
        out.append(Box((row_start, run[0]), (nrows, run[1])))
    return out
