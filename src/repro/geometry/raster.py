"""Rasterization of boxes onto dense numpy grids.

The execution simulator computes load, ghost communication and migration on
*owner rasters*: dense integer arrays over a level's index space in which
each refined cell carries the rank that owns it (and ``NO_OWNER`` outside
the refined region).  Rasters keep every per-cell metric a vectorized numpy
reduction, per the HPC guides — no Python-level loops over cells anywhere
in the hot path.

All helpers are dimension-general: :func:`upsample` and :func:`block_sum`
are the N-D replacements for the per-axis ``np.repeat`` /
``reshape(...).sum(axis=(1, 3))`` idioms, and :func:`boxes_from_mask`
decomposes masks of any rank.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .box import Box

__all__ = [
    "NO_OWNER",
    "rasterize_mask",
    "rasterize_owners",
    "paint_box",
    "boxes_from_mask",
    "boxes_from_labels",
    "add_box_overlap",
    "upsample",
    "block_sum",
]

NO_OWNER: int = -1
"""Sentinel rank for cells outside the refined region of a level."""


def _check_domain(domain: Box) -> None:
    if domain.empty:
        raise ValueError("cannot rasterize onto an empty domain")
    if any(l != 0 for l in domain.lo):
        raise ValueError("raster domains must be anchored at the origin")


def upsample(array: np.ndarray, ratio: int) -> np.ndarray:
    """Repeat every cell ``ratio`` times along every axis.

    ``out[i0*r + a0, i1*r + a1, ...] == array[i0, i1, ...]`` — the raster
    form of refining an index space by ``ratio``.  Implemented as a single
    broadcast + reshape (one copy) rather than ``ndim`` chained
    ``np.repeat`` calls.
    """
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    if ratio == 1:
        return array
    shape = array.shape
    view_shape: list[int] = []
    expand_shape: list[int] = []
    for s in shape:
        view_shape.extend((s, 1))
        expand_shape.extend((s, ratio))
    expanded = np.broadcast_to(array.reshape(view_shape), expand_shape)
    return expanded.reshape(tuple(s * ratio for s in shape))


def block_sum(array: np.ndarray, factor: int, dtype=None) -> np.ndarray:
    """Sum ``factor``-sized blocks along every axis (N-D block reduction).

    The inverse-resolution counterpart of :func:`upsample`: the result has
    shape ``array.shape // factor`` and each cell holds the sum of its
    ``factor**ndim`` source block.  Every extent must be divisible by
    ``factor``.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return array.astype(dtype) if dtype is not None else array
    if any(s % factor for s in array.shape):
        raise ValueError(f"shape {array.shape} not divisible by factor {factor}")
    view_shape: list[int] = []
    for s in array.shape:
        view_shape.extend((s // factor, factor))
    axes = tuple(range(1, 2 * array.ndim, 2))
    return array.reshape(view_shape).sum(axis=axes, dtype=dtype)


def paint_box(array: np.ndarray, box: Box, value: int) -> None:
    """Assign ``value`` to the cells of ``box`` inside ``array`` (clipped).

    ``array`` indexes the domain ``[0, shape)``; parts of ``box`` outside
    the array are silently ignored.
    """
    if box.ndim != array.ndim:
        raise ValueError("box/array dimension mismatch")
    slices = []
    for d in range(box.ndim):
        lo = max(box.lo[d], 0)
        hi = min(box.hi[d], array.shape[d])
        if hi <= lo:
            return
        slices.append(slice(lo, hi))
    array[tuple(slices)] = value


def rasterize_mask(boxes: Iterable[Box], domain: Box) -> np.ndarray:
    """Boolean raster of the union of ``boxes`` over ``domain``.

    ``domain`` must be anchored at the origin (SAMR level index spaces
    are); cells of ``boxes`` outside the domain are clipped away.
    """
    _check_domain(domain)
    mask = np.zeros(domain.shape, dtype=bool)
    for b in boxes:
        paint_box(mask, b, True)  # type: ignore[arg-type]
    return mask


def rasterize_owners(
    assignments: Sequence[tuple[Box, int]], domain: Box
) -> np.ndarray:
    """Dense int32 owner raster from ``(box, rank)`` assignments.

    Later assignments overwrite earlier ones (assignments from a valid
    partition are disjoint, so order never matters there).  Cells not
    covered by any box hold :data:`NO_OWNER`.
    """
    _check_domain(domain)
    owners = np.full(domain.shape, NO_OWNER, dtype=np.int32)
    for box, rank in assignments:
        if rank < 0:
            raise ValueError(f"owner ranks must be >= 0, got {rank}")
        paint_box(owners, box, rank)
    return owners


def _runs_of(row: np.ndarray) -> list[Box]:
    """Maximal 1-D runs of True cells, in ascending order."""
    idx = np.flatnonzero(row)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    return [Box((int(idx[s]),), (int(idx[e]) + 1,)) for s, e in zip(starts, ends)]


def boxes_from_mask(mask: np.ndarray) -> list[Box]:
    """Decompose a boolean raster into disjoint boxes (greedy slab merge).

    Works in any dimension: each slab along the first axis is decomposed
    recursively, and identical sub-boxes of consecutive slabs are merged
    greedily along the first axis (the N-D generalization of the classic
    row-run merge).  Exact (the union of the result equals the mask) but
    not minimal; used to recover patch sets from masks in tests and in the
    clustering fallback path.

    The output order is deterministic: boxes are emitted as their extent
    along the first axis closes, sub-boxes in recursive scan order.
    """
    mask = np.asarray(mask)
    if mask.ndim < 1:
        raise ValueError("boxes_from_mask needs at least a 1-d mask")
    if mask.dtype != bool:
        mask = mask.astype(bool)
    if mask.ndim == 1:
        return _runs_of(mask)
    nslabs = mask.shape[0]
    # Active sub-boxes: sub-box -> start slab, carried while identical.
    # Insertion order is deterministic, so iteration (and hence output
    # order) is too.
    active: dict[Box, int] = {}
    out: list[Box] = []

    def close(sub: Box, start: int, stop: int) -> None:
        out.append(Box((start, *sub.lo), (stop, *sub.hi)))

    for r in range(nslabs):
        current = boxes_from_mask(mask[r])
        current_set = set(current)
        for sub in [s for s in active if s not in current_set]:
            close(sub, active.pop(sub), r)
        for sub in current:
            if sub not in active:
                active[sub] = r
    for sub, start in active.items():
        close(sub, start, nslabs)
    return out


def _label_runs_of(row: np.ndarray, background: int) -> list[tuple[Box, int]]:
    """Maximal 1-D runs of equal non-background values, ascending."""
    fg = row != background
    idx = np.flatnonzero(fg)
    if idx.size == 0:
        return []
    vals = row[idx]
    breaks = np.flatnonzero((np.diff(idx) > 1) | (np.diff(vals) != 0))
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    return [
        (Box((int(idx[s]),), (int(idx[e]) + 1,)), int(vals[s]))
        for s, e in zip(starts, ends)
    ]


def boxes_from_labels(
    array: np.ndarray, background: int = NO_OWNER
) -> tuple[list[Box], list[int]]:
    """Decompose an integer label raster into disjoint single-value boxes.

    The labeled generalization of :func:`boxes_from_mask` (same greedy
    slab merge, same deterministic output order): every returned box
    covers cells of exactly one value, and their union is exactly the
    non-``background`` region.  This is how dense owner rasters are lifted
    into sparse :class:`~repro.geometry.ownermap.OwnerMap` form.
    """
    array = np.asarray(array)
    if array.ndim < 1:
        raise ValueError("boxes_from_labels needs at least a 1-d array")
    if not np.issubdtype(array.dtype, np.integer):
        raise ValueError(f"label rasters must be integer, got {array.dtype}")
    if array.ndim == 1:
        pairs = _label_runs_of(array, background)
        return [b for b, _ in pairs], [v for _, v in pairs]
    nslabs = array.shape[0]
    active: dict[tuple[Box, int], int] = {}
    boxes: list[Box] = []
    values: list[int] = []

    def close(sub: Box, value: int, start: int, stop: int) -> None:
        boxes.append(Box((start, *sub.lo), (stop, *sub.hi)))
        values.append(value)

    for r in range(nslabs):
        sub_boxes, sub_values = boxes_from_labels(array[r], background)
        current = list(zip(sub_boxes, sub_values))
        current_set = set(current)
        for key in [k for k in active if k not in current_set]:
            close(*key, active.pop(key), r)
        for key in current:
            if key not in active:
                active[key] = r
    for key, start in active.items():
        close(*key, start, nslabs)
    return boxes, values


def add_box_overlap(
    array: np.ndarray, box: Box, factor: int, weight: float = 1.0
) -> None:
    """Accumulate a box's per-block overlap volumes into a coarse array.

    ``array`` covers blocks of ``factor`` cells per axis: block ``c`` spans
    ``[c*factor, (c+1)*factor)`` in the box's index space.  For every
    block, ``weight * |box ∩ block|`` is added in place.  Summed over a
    disjoint patch set this equals ``block_sum(rasterize_mask(...),
    factor) * weight`` — without ever materializing the fine raster, which
    is what keeps column/atomic-unit workloads computable at paper-scale
    3-D resolutions.  All quantities are integer-valued, so float
    accumulation is exact and order-independent.
    """
    if box.ndim != array.ndim:
        raise ValueError("box/array dimension mismatch")
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if box.empty:
        return
    index: list[slice] = []
    axis_weights: list[np.ndarray] = []
    for d in range(box.ndim):
        c0 = max(box.lo[d] // factor, 0)
        c1 = min(-(-box.hi[d] // factor), array.shape[d])
        if c1 <= c0:
            return
        edges = np.arange(c0, c1 + 1, dtype=np.int64) * factor
        cover = np.minimum(edges[1:], box.hi[d]) - np.maximum(
            edges[:-1], box.lo[d]
        )
        index.append(slice(c0, c1))
        axis_weights.append(cover)
    contrib = axis_weights[0].astype(np.float64) * weight
    for w in axis_weights[1:]:
        contrib = contrib[..., None] * w
    array[tuple(index)] += contrib
