"""Grid-bucket pair pruning: sub-quadratic candidates for the pair kernels.

The owner-map kernels (:func:`~repro.geometry.ownermap.pair_intersections`,
:func:`~repro.geometry.ownermap.face_contacts`,
:func:`~repro.geometry.ownermap.overlap_volume`) are exact sweeps over
*candidate* box pairs.  Historically the candidate set was the full
O(n_a * n_b) cross product; at ``deep`` scale and beyond almost all of
those pairs are disjoint, and the broadcast dominates simulator
wall-clock.  This module prunes the candidate set to near-linear before
the exact arithmetic runs:

* **grid** — boxes are bucketed into a coarse integer grid whose cell
  size is the *median box extent* per axis (so a typical box touches
  O(2^ndim) cells).  Cell incidences are packed into int64 keys
  (mixed-radix over the grid extents) and the two inputs are joined on
  sorted unique keys: only pairs sharing at least one bucket are
  emitted.  Two boxes that intersect (or abut, for the *closed* face
  query) always share a cell, so the candidate set is a superset of the
  exact answer — pruning never changes results.
* **sweep** — the fallback for degenerate aspect ratios (long skinny
  boxes spanning many buckets blow up the incidence lists): a sorted
  1-D interval sweep along the most selective axis.  Automatically
  selected when the grid's cell incidences exceed
  ``_GRID_INCIDENCE_FACTOR`` times the box count.
* **bruteforce** — the original quadratic kernels, kept verbatim as the
  cross-check path (``None`` from :func:`candidate_pairs` tells the
  kernel to run its historical broadcast).

Candidates are always deduplicated and returned in brute-force emission
order (``ai``-major, ``bj``-minor via ``np.unique`` on packed pair
keys), so every downstream kernel produces **bit-identical** outputs on
every path — asserted by the property suite and by
``TraceSimulator(cross_check=True)``.

The active path is selected by the ``REPRO_PAIR_INDEX`` environment
variable (``auto`` | ``grid`` | ``sweep`` | ``bruteforce``; default
``auto`` = grid with a small-product brute-force cutoff) or forced
in-process with :func:`pair_index_forced`.  :func:`pair_index_counters`
exposes pruning effectiveness (candidate pairs generated vs. exact
pairs surviving vs. the brute-force product) for the benchmark tables
and ``repro describe --kind pair-index``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..registry import declare_kind, register

__all__ = [
    "PAIR_INDEX_MODES",
    "PairKernelCounters",
    "candidate_pairs",
    "pair_counters_scope",
    "pair_index_counters",
    "pair_index_forced",
    "pair_index_mode",
    "reset_pair_index_counters",
]

#: Recognized values of ``REPRO_PAIR_INDEX``.
PAIR_INDEX_MODES = ("auto", "grid", "sweep", "bruteforce")

#: ``auto`` runs the historical broadcast below this pair product — for
#: tiny inputs the quadratic kernel beats the index's setup cost.
_AUTO_BRUTE_CUTOFF = 16_384

#: The grid path falls back to the sorted sweep when its cell-incidence
#: lists exceed this factor times the box count (degenerate aspect
#: ratios: boxes spanning many buckets each).
_GRID_INCIDENCE_FACTOR = 32

#: Row budget of the sweep's chunked prefix enumeration (mirrors
#: ``ownermap._PAIR_CHUNK_CELLS``).
_SWEEP_CHUNK_PAIRS = 16_000_000

#: In-process override installed by :func:`pair_index_forced`.
_FORCED_MODE: str | None = None


def pair_index_mode() -> str:
    """The active candidate-generation mode.

    :func:`pair_index_forced` overrides take precedence over the
    ``REPRO_PAIR_INDEX`` environment variable (read per call, so tests
    and CI steps can flip it without re-importing).
    """
    mode = _FORCED_MODE or os.environ.get("REPRO_PAIR_INDEX", "auto")
    if mode not in PAIR_INDEX_MODES:
        raise ValueError(
            f"REPRO_PAIR_INDEX must be one of {PAIR_INDEX_MODES}, got {mode!r}"
        )
    return mode


@contextmanager
def pair_index_forced(mode: str):
    """Force one candidate mode for the dynamic extent of the block.

    The simulator's ``cross_check`` and the property suite use this to
    replay the same query on two paths and assert bit-identical output.
    """
    global _FORCED_MODE
    if mode not in PAIR_INDEX_MODES:
        raise ValueError(
            f"pair-index mode must be one of {PAIR_INDEX_MODES}, got {mode!r}"
        )
    previous = _FORCED_MODE
    _FORCED_MODE = mode
    try:
        yield
    finally:
        _FORCED_MODE = previous


@dataclass
class PairKernelCounters:
    """Pruning-effectiveness accounting of the pair kernels.

    ``pair_product`` is what a pure brute-force run would examine;
    ``candidate_pairs`` is what the index actually emitted to the exact
    arithmetic; ``exact_pairs`` is what survived it.  The gap between
    the first two is the pruning win, the gap between the last two the
    remaining slack of the index.
    """

    queries: int = 0
    grid_queries: int = 0
    sweep_queries: int = 0
    brute_queries: int = 0
    pair_product: int = 0
    bruteforce_pairs: int = 0
    candidate_pairs: int = 0
    exact_pairs: int = 0

    def as_dict(self) -> dict:
        """JSON-able snapshot (benchmark tables, ``describe`` output)."""
        return {
            "queries": self.queries,
            "grid_queries": self.grid_queries,
            "sweep_queries": self.sweep_queries,
            "brute_queries": self.brute_queries,
            "pair_product": self.pair_product,
            "bruteforce_pairs": self.bruteforce_pairs,
            "candidate_pairs": self.candidate_pairs,
            "exact_pairs": self.exact_pairs,
        }

    def pruning_ratio(self) -> float:
        """Brute-force pairs avoided per emitted candidate (>= 1)."""
        examined = self.candidate_pairs + self.bruteforce_pairs
        if examined == 0:
            return 1.0
        return self.pair_product / examined


# Counter frames: every kernel event is charged to *all* live frames.
# Frame 0 is the historical process-global accumulator (kept for the
# benchmark tables and ``repro describe``); :func:`pair_counters_scope`
# pushes scoped frames on top so the executor can attribute kernel work
# to a single run — the fix for counters silently accumulating across
# runs in one process (pool workers, daemons), which skewed per-run
# pruning ratios.
_COUNTER_STACK: list[PairKernelCounters] = [PairKernelCounters()]


def pair_index_counters() -> PairKernelCounters:
    """The process-global counter frame (mutated by every pair kernel).

    Accumulates since import (or the last explicit reset).  For per-run
    accounting use :func:`pair_counters_scope` instead.
    """
    return _COUNTER_STACK[0]


def reset_pair_index_counters() -> PairKernelCounters:
    """Zero the process-global frame; returns the struct for chaining.

    Scoped frames pushed by :func:`pair_counters_scope` are unaffected
    — a benchmark resetting the global cannot corrupt a concurrent
    run's attribution.
    """
    _COUNTER_STACK[0] = PairKernelCounters()
    return _COUNTER_STACK[0]


@contextmanager
def pair_counters_scope():
    """A fresh counter frame covering only this dynamic extent.

    Yields a :class:`PairKernelCounters` that sees exactly the kernel
    work performed inside the block (the global frame keeps
    accumulating in parallel).  Scopes nest: an inner scope's events
    are charged to every enclosing frame too.
    """
    frame = PairKernelCounters()
    _COUNTER_STACK.append(frame)
    try:
        yield frame
    finally:
        try:
            _COUNTER_STACK.remove(frame)
        except ValueError:  # pragma: no cover - double-exit guard
            pass


def _record(**deltas: int) -> None:
    """Charge counter deltas to every live frame."""
    for frame in _COUNTER_STACK:
        for field, n in deltas.items():
            setattr(frame, field, getattr(frame, field) + n)


def _record_exact(n: int) -> None:
    """Called by the kernels with the surviving pair count."""
    _record(exact_pairs=int(n))


def _record_brute(n_pairs: int) -> None:
    """Called by the kernels when the historical broadcast runs."""
    _record(brute_queries=1, bruteforce_pairs=int(n_pairs))


# ---------------------------------------------------------------------------
# candidate generation
# ---------------------------------------------------------------------------

def candidate_pairs(
    a: np.ndarray, b: np.ndarray, closed: bool = False
) -> tuple[np.ndarray, np.ndarray] | None:
    """Candidate ``(ai, bj)`` index pairs of two corner arrays.

    Returns ``None`` when the caller should run its brute-force
    broadcast (``bruteforce`` mode, or ``auto`` below the small-product
    cutoff); otherwise two int64 index arrays in canonical brute-force
    emission order (``ai``-major, ``bj``-minor, no duplicates) that are
    a superset of all intersecting pairs.

    ``closed`` treats boxes as closed intervals ``[lo, hi]`` so *abutting*
    boxes also cohabit a bucket — the face-contact query needs touching
    pairs, not just overlapping ones.
    """
    n_a, n_b = a.shape[0], b.shape[0]
    _record(queries=1, pair_product=n_a * n_b)
    mode = pair_index_mode()
    if mode == "bruteforce":
        return None
    if mode == "auto" and n_a * n_b <= _AUTO_BRUTE_CUTOFF:
        return None
    if n_a == 0 or n_b == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if n_a == 1 or n_b == 1:
        # One-row operand: the interval test along every axis *is* the
        # candidate filter — O(n), no index to build.  This keeps the
        # thousands of per-box subtraction queries the overlay kernels
        # issue cheap even when an indexed mode is forced.
        return _single_candidates(a, b, closed)
    if mode == "sweep":
        return _sweep_candidates(a, b, closed)
    return _grid_candidates(a, b, closed)


def _single_candidates(
    a: np.ndarray, b: np.ndarray, closed: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Exact candidates when either operand is a single box."""
    ndim = a.shape[1] // 2
    if closed:
        hit = (a[:, None, :ndim] <= b[None, :, ndim:]).all(axis=2)
        hit &= (a[:, None, ndim:] >= b[None, :, :ndim]).all(axis=2)
    else:
        hit = (a[:, None, :ndim] < b[None, :, ndim:]).all(axis=2)
        hit &= (a[:, None, ndim:] > b[None, :, :ndim]).all(axis=2)
    ai, bj = np.nonzero(hit)  # row-major: already ai-major, bj-minor
    _record(candidate_pairs=ai.size)
    return ai.astype(np.int64), bj.astype(np.int64)


def _canonical(ai: np.ndarray, bj: np.ndarray, n_b: int) -> tuple[np.ndarray, np.ndarray]:
    """Dedup + sort into brute-force emission order (ai-major, bj-minor)."""
    if ai.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    packed = np.unique(ai.astype(np.int64) * np.int64(n_b) + bj)
    _record(candidate_pairs=packed.size)
    return packed // n_b, packed % n_b


def _grid_candidates(
    a: np.ndarray, b: np.ndarray, closed: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket-join candidates (see module docstring for the scheme)."""
    ndim = a.shape[1] // 2
    lo = np.concatenate((a[:, :ndim], b[:, :ndim]))
    hi = np.concatenate((a[:, ndim:], b[:, ndim:]))
    extents = hi - lo
    # Cell size: the median box extent per axis — a typical box then
    # touches at most 2 cells per axis.  max(1, ...) guards thin boxes.
    cell = np.maximum(1, np.median(extents, axis=0).astype(np.int64))
    inclusive_hi = hi if closed else hi - 1
    while True:
        base = lo.min(axis=0) // cell
        dims = inclusive_hi.max(axis=0) // cell - base + 1
        # int64 key packing must not overflow: grow cells until the grid
        # extent product fits (2 bits of headroom).
        if int(np.prod([int(d) for d in dims])) < 2**62:
            break
        cell = cell * 2
    lo_cell = lo // cell - base
    hi_cell = inclusive_hi // cell - base
    spans = hi_cell - lo_cell + 1
    incidences = int(np.prod(spans, axis=1, dtype=np.int64).sum())
    if incidences > _GRID_INCIDENCE_FACTOR * (a.shape[0] + b.shape[0]) + 1024:
        # Degenerate aspect ratios: enumerating the buckets would cost
        # more than it prunes — fall back to the sorted sweep.
        return _sweep_candidates(a, b, closed)
    _record(grid_queries=1)
    strides = np.ones(ndim, dtype=np.int64)
    for d in range(ndim - 2, -1, -1):
        strides[d] = strides[d + 1] * dims[d + 1]
    ka, ia = _cell_keys(lo_cell[: a.shape[0]], spans[: a.shape[0]], strides)
    kb, ib = _cell_keys(lo_cell[a.shape[0]:], spans[a.shape[0]:], strides)
    order_a = np.argsort(ka, kind="stable")
    order_b = np.argsort(kb, kind="stable")
    ka, ia = ka[order_a], ia[order_a]
    kb, ib = kb[order_b], ib[order_b]
    ua, start_a, count_a = np.unique(ka, return_index=True, return_counts=True)
    ub, start_b, count_b = np.unique(kb, return_index=True, return_counts=True)
    _, pa, pb = np.intersect1d(ua, ub, assume_unique=True, return_indices=True)
    if pa.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ca, cb = count_a[pa], count_b[pb]
    sa, sb = start_a[pa], start_b[pb]
    block = ca * cb  # pairs per shared bucket
    starts = np.concatenate(([0], np.cumsum(block)[:-1]))
    total = int(block.sum())
    gid = np.repeat(np.arange(block.size), block)
    t = np.arange(total, dtype=np.int64) - np.repeat(starts, block)
    ai = ia[sa[gid] + t // cb[gid]]
    bj = ib[sb[gid] + t % cb[gid]]
    return _canonical(ai, bj, b.shape[0])


def _cell_keys(
    lo_cell: np.ndarray, spans: np.ndarray, strides: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(packed cell key, box id)`` per (cell, box) incidence.

    Vectorized mixed-radix enumeration: every box emits one row per grid
    cell it touches, keys packed with the global grid strides.
    """
    n, ndim = lo_cell.shape
    counts = np.prod(spans, axis=1, dtype=np.int64)
    total = int(counts.sum())
    box_ids = np.repeat(np.arange(n, dtype=np.int64), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rem = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    keys = np.zeros(total, dtype=np.int64)
    for d in range(ndim - 1, -1, -1):
        radix = spans[box_ids, d]
        keys += (lo_cell[box_ids, d] + rem % radix) * strides[d]
        rem //= radix
    return keys, box_ids


def _sweep_candidates(
    a: np.ndarray, b: np.ndarray, closed: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted 1-D interval sweep along the most selective axis.

    Exact along the sweep axis (candidates = pairs whose extents overlap
    there); the remaining axes are filtered by the exact arithmetic
    downstream, like any other candidate.
    """
    _record(sweep_queries=1)
    ndim = a.shape[1] // 2
    n_a, n_b = a.shape[0], b.shape[0]
    # Most selective axis: largest corner spread relative to the median
    # extent — the axis along which intervals separate best.
    lo_all = np.concatenate((a[:, :ndim], b[:, :ndim]))
    hi_all = np.concatenate((a[:, ndim:], b[:, ndim:]))
    spread = lo_all.max(axis=0) - lo_all.min(axis=0)
    med = np.maximum(1, np.median(hi_all - lo_all, axis=0))
    axis = int(np.argmax(spread / med))
    a_lo, a_hi = a[:, axis], a[:, ndim + axis]
    b_lo, b_hi = b[:, axis], b[:, ndim + axis]
    order = np.argsort(b_lo, kind="stable")
    b_lo_s = b_lo[order]
    b_hi_s = b_hi[order]
    # Candidates of row i: sorted-prefix j with b_lo_j < a_hi_i (<= when
    # closed), filtered by b_hi_j > a_lo_i (>= when closed).
    side = "right" if closed else "left"
    upper = np.searchsorted(b_lo_s, a_hi, side=side)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    csum = np.concatenate(([0], np.cumsum(upper)))
    start = 0
    while start < n_a:
        end = int(
            np.searchsorted(csum, csum[start] + _SWEEP_CHUNK_PAIRS, side="left")
        )
        end = max(start + 1, min(end, n_a))
        counts = upper[start:end]
        total = int(counts.sum())
        if total:
            ii = np.repeat(np.arange(start, end, dtype=np.int64), counts)
            offs = np.concatenate(([0], np.cumsum(counts)[:-1]))
            jj = np.arange(total, dtype=np.int64) - np.repeat(offs, counts)
            keep = b_hi_s[jj] >= a_lo[ii] if closed else b_hi_s[jj] > a_lo[ii]
            out_i.append(ii[keep])
            out_j.append(order[jj[keep]])
        start = end
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return _canonical(np.concatenate(out_i), np.concatenate(out_j), n_b)


# ---------------------------------------------------------------------------
# registry exposure: `repro describe --kind pair-index`
# ---------------------------------------------------------------------------

declare_kind("pair-index", "pair-index mode")


def _register_modes() -> None:
    docs = {
        "auto": (
            "grid-bucket pruning with a brute-force cutoff below "
            f"{_AUTO_BRUTE_CUTOFF} candidate products (the default)"
        ),
        "grid": (
            "force grid buckets (cell size = median box extent per axis; "
            "falls back to the sorted sweep when cell incidences exceed "
            f"{_GRID_INCIDENCE_FACTOR}x the box count)"
        ),
        "sweep": "force the sorted interval sweep along the most selective axis",
        "bruteforce": "force the historical O(n^2) broadcast (cross-check path)",
    }
    for name, description in docs.items():
        register(
            "pair-index",
            name,
            (lambda mode: lambda: pair_index_forced(mode))(name),
            description=description,
        )


_register_modes()
