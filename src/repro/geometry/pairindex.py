"""Grid-bucket pair pruning: sub-quadratic candidates for the pair kernels.

The owner-map kernels (:func:`~repro.geometry.ownermap.pair_intersections`,
:func:`~repro.geometry.ownermap.face_contacts`,
:func:`~repro.geometry.ownermap.overlap_volume`) are exact sweeps over
*candidate* box pairs.  Historically the candidate set was the full
O(n_a * n_b) cross product; at ``deep`` scale and beyond almost all of
those pairs are disjoint, and the broadcast dominates simulator
wall-clock.  This module prunes the candidate set to near-linear before
the exact arithmetic runs:

* **grid** — boxes are bucketed into a coarse integer grid whose cell
  size is the *median box extent* per axis (so a typical box touches
  O(2^ndim) cells).  Cell incidences are packed into int64 keys
  (mixed-radix over the grid extents) and the two inputs are joined on
  sorted unique keys: only pairs sharing at least one bucket are
  emitted.  Two boxes that intersect (or abut, for the *closed* face
  query) always share a cell, so the candidate set is a superset of the
  exact answer — pruning never changes results.
* **sweep** — the fallback for degenerate aspect ratios (long skinny
  boxes spanning many buckets blow up the incidence lists): a sorted
  1-D interval sweep along the most selective axis.  Automatically
  selected when the grid's cell incidences exceed
  ``_GRID_INCIDENCE_FACTOR`` times the box count.
* **bruteforce** — the original quadratic kernels, kept verbatim as the
  cross-check path (``None`` from :func:`candidate_pairs` tells the
  kernel to run its historical broadcast).

Candidates are always deduplicated and returned in brute-force emission
order (``ai``-major, ``bj``-minor via a sort + dedup on packed pair
keys), so every downstream kernel produces **bit-identical** outputs on
every path — asserted by the property suite and by
``TraceSimulator(cross_check=True)``.

The active path is selected by the ``REPRO_PAIR_INDEX`` environment
variable (``auto`` | ``grid`` | ``sweep`` | ``bruteforce``; default
``auto`` = grid with a small-product brute-force cutoff) or forced
in-process with :func:`pair_index_forced`.  :func:`pair_index_counters`
exposes pruning effectiveness (candidate pairs generated vs. exact
pairs surviving vs. the brute-force product) for the benchmark tables
and ``repro describe --kind pair-index``.

**Persistent indexes** (:class:`PairIndex`) exploit the temporal
coherence the paper's whole premise rests on: consecutive regrid steps
share most of their boxes, so the bucket structure of one step's
distribution is almost the next step's too.  A :class:`PairIndex` is
built *once* per corner array (grid buckets over the level's fixed
domain, or the sorted-sweep fallback for degenerate aspect ratios),
answers every kernel query against that array within a simulator step,
and is *delta-updated* to the next step's array from the box
add/remove diff — falling back to a full rebuild when churn exceeds
:data:`_DELTA_CHURN_FRACTION` of the boxes.  Candidates from a
persistent index are a superset of the two-sided candidates and are
canonicalised through the same :func:`_canonical` packing, so every
downstream kernel stays **bit-identical** on every path.  The reuse
layer is switched by ``REPRO_PAIR_REUSE`` (``auto`` | ``off``; default
``auto``) or :func:`pair_reuse_forced`; ``off`` restores the exact
per-query index builds of the PR-6 path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..registry import declare_kind, register

__all__ = [
    "PAIR_INDEX_MODES",
    "PAIR_REUSE_MODES",
    "PairIndex",
    "PairKernelCounters",
    "candidate_pairs",
    "pair_counters_scope",
    "pair_index_counters",
    "pair_index_forced",
    "pair_index_mode",
    "pair_reuse_forced",
    "pair_reuse_mode",
    "reset_pair_index_counters",
]

#: Recognized values of ``REPRO_PAIR_INDEX``.
PAIR_INDEX_MODES = ("auto", "grid", "sweep", "bruteforce")

#: Recognized values of ``REPRO_PAIR_REUSE``.
PAIR_REUSE_MODES = ("auto", "off")

#: ``auto`` runs the historical broadcast below this pair product — for
#: tiny inputs the quadratic kernel beats the index's setup cost.
_AUTO_BRUTE_CUTOFF = 16_384

#: The grid path falls back to the sorted sweep when its cell-incidence
#: lists exceed this factor times the box count (degenerate aspect
#: ratios: boxes spanning many buckets each).
_GRID_INCIDENCE_FACTOR = 32

#: Row budget of the sweep's chunked prefix enumeration (mirrors
#: ``ownermap._PAIR_CHUNK_CELLS``).
_SWEEP_CHUNK_PAIRS = 16_000_000

#: A delta update is abandoned for a full rebuild when
#: ``removed + added`` exceeds this fraction of the new box count —
#: past that point re-bucketing everything is cheaper than merging.
_DELTA_CHURN_FRACTION = 0.5

#: In-process override installed by :func:`pair_index_forced`.
_FORCED_MODE: str | None = None

#: In-process override installed by :func:`pair_reuse_forced`.
_FORCED_REUSE: str | None = None


def pair_index_mode() -> str:
    """The active candidate-generation mode.

    :func:`pair_index_forced` overrides take precedence over the
    ``REPRO_PAIR_INDEX`` environment variable (read per call, so tests
    and CI steps can flip it without re-importing).
    """
    mode = _FORCED_MODE or os.environ.get("REPRO_PAIR_INDEX", "auto")
    if mode not in PAIR_INDEX_MODES:
        raise ValueError(
            f"REPRO_PAIR_INDEX must be one of {PAIR_INDEX_MODES}, got {mode!r}"
        )
    return mode


@contextmanager
def pair_index_forced(mode: str):
    """Force one candidate mode for the dynamic extent of the block.

    The simulator's ``cross_check`` and the property suite use this to
    replay the same query on two paths and assert bit-identical output.
    """
    global _FORCED_MODE
    if mode not in PAIR_INDEX_MODES:
        raise ValueError(
            f"pair-index mode must be one of {PAIR_INDEX_MODES}, got {mode!r}"
        )
    previous = _FORCED_MODE
    _FORCED_MODE = mode
    try:
        yield
    finally:
        _FORCED_MODE = previous


def pair_reuse_mode() -> str:
    """The active index-reuse mode (``auto`` | ``off``).

    ``auto`` lets kernels serve candidates from a persistent
    :class:`PairIndex` when the caller threads one through; ``off``
    restores the per-query index builds of the PR-6 path exactly.
    :func:`pair_reuse_forced` overrides take precedence over the
    ``REPRO_PAIR_REUSE`` environment variable (read per call).
    """
    mode = _FORCED_REUSE or os.environ.get("REPRO_PAIR_REUSE", "auto")
    if mode not in PAIR_REUSE_MODES:
        raise ValueError(
            f"REPRO_PAIR_REUSE must be one of {PAIR_REUSE_MODES}, got {mode!r}"
        )
    return mode


@contextmanager
def pair_reuse_forced(mode: str):
    """Force one reuse mode for the dynamic extent of the block.

    CI and the property suite replay the same sweep with reuse on and
    off and diff the store hashes — bit-identity is the invariant.
    """
    global _FORCED_REUSE
    if mode not in PAIR_REUSE_MODES:
        raise ValueError(
            f"pair-reuse mode must be one of {PAIR_REUSE_MODES}, got {mode!r}"
        )
    previous = _FORCED_REUSE
    _FORCED_REUSE = mode
    try:
        yield
    finally:
        _FORCED_REUSE = previous


@dataclass
class PairKernelCounters:
    """Pruning-effectiveness accounting of the pair kernels.

    ``pair_product`` is what a pure brute-force run would examine;
    ``candidate_pairs`` is what the index actually emitted to the exact
    arithmetic; ``exact_pairs`` is what survived it.  The gap between
    the first two is the pruning win, the gap between the last two the
    remaining slack of the index.
    """

    queries: int = 0
    grid_queries: int = 0
    sweep_queries: int = 0
    brute_queries: int = 0
    pair_product: int = 0
    bruteforce_pairs: int = 0
    candidate_pairs: int = 0
    exact_pairs: int = 0
    index_builds: int = 0
    index_reuses: int = 0
    delta_updates: int = 0

    def as_dict(self) -> dict:
        """JSON-able snapshot (benchmark tables, ``describe`` output)."""
        return {
            "queries": self.queries,
            "grid_queries": self.grid_queries,
            "sweep_queries": self.sweep_queries,
            "brute_queries": self.brute_queries,
            "pair_product": self.pair_product,
            "bruteforce_pairs": self.bruteforce_pairs,
            "candidate_pairs": self.candidate_pairs,
            "exact_pairs": self.exact_pairs,
            "index_builds": self.index_builds,
            "index_reuses": self.index_reuses,
            "delta_updates": self.delta_updates,
        }

    def pruning_ratio(self) -> float:
        """Brute-force pairs avoided per emitted candidate (>= 1)."""
        examined = self.candidate_pairs + self.bruteforce_pairs
        if examined == 0:
            return 1.0
        return self.pair_product / examined


# Counter frames: every kernel event is charged to *all* live frames.
# Frame 0 is the historical process-global accumulator (kept for the
# benchmark tables and ``repro describe``); :func:`pair_counters_scope`
# pushes scoped frames on top so the executor can attribute kernel work
# to a single run — the fix for counters silently accumulating across
# runs in one process (pool workers, daemons), which skewed per-run
# pruning ratios.
_COUNTER_STACK: list[PairKernelCounters] = [PairKernelCounters()]


def pair_index_counters() -> PairKernelCounters:
    """The process-global counter frame (mutated by every pair kernel).

    Accumulates since import (or the last explicit reset).  For per-run
    accounting use :func:`pair_counters_scope` instead.
    """
    return _COUNTER_STACK[0]


def reset_pair_index_counters() -> PairKernelCounters:
    """Zero the process-global frame; returns the struct for chaining.

    Scoped frames pushed by :func:`pair_counters_scope` are unaffected
    — a benchmark resetting the global cannot corrupt a concurrent
    run's attribution.
    """
    _COUNTER_STACK[0] = PairKernelCounters()
    return _COUNTER_STACK[0]


@contextmanager
def pair_counters_scope():
    """A fresh counter frame covering only this dynamic extent.

    Yields a :class:`PairKernelCounters` that sees exactly the kernel
    work performed inside the block (the global frame keeps
    accumulating in parallel).  Scopes nest: an inner scope's events
    are charged to every enclosing frame too.
    """
    frame = PairKernelCounters()
    _COUNTER_STACK.append(frame)
    try:
        yield frame
    finally:
        try:
            _COUNTER_STACK.remove(frame)
        except ValueError:  # pragma: no cover - double-exit guard
            pass


def _record(**deltas: int) -> None:
    """Charge counter deltas to every live frame."""
    for frame in _COUNTER_STACK:
        for field, n in deltas.items():
            setattr(frame, field, getattr(frame, field) + n)


def _record_exact(n: int) -> None:
    """Called by the kernels with the surviving pair count."""
    _record(exact_pairs=int(n))


def _record_brute(n_pairs: int) -> None:
    """Called by the kernels when the historical broadcast runs."""
    _record(brute_queries=1, bruteforce_pairs=int(n_pairs))


# ---------------------------------------------------------------------------
# candidate generation
# ---------------------------------------------------------------------------

def candidate_pairs(
    a: np.ndarray,
    b: np.ndarray,
    closed: bool = False,
    *,
    a_index: "PairIndex | None" = None,
    b_index: "PairIndex | None" = None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Candidate ``(ai, bj)`` index pairs of two corner arrays.

    Returns ``None`` when the caller should run its brute-force
    broadcast (``bruteforce`` mode, or ``auto`` below the small-product
    cutoff); otherwise two int64 index arrays in canonical brute-force
    emission order (``ai``-major, ``bj``-minor, no duplicates) that are
    a superset of all intersecting pairs.

    ``closed`` treats boxes as closed intervals ``[lo, hi]`` so *abutting*
    boxes also cohabit a bucket — the face-contact query needs touching
    pairs, not just overlapping ones.

    ``a_index`` / ``b_index`` are optional persistent :class:`PairIndex`
    objects over ``a`` / ``b``.  When the reuse layer is on and an index
    actually covers its operand (identity-checked), candidates come from
    one one-sided probe instead of a fresh two-sided build; the result
    goes through the same canonicalisation, so outputs are bit-identical
    either way.
    """
    n_a, n_b = a.shape[0], b.shape[0]
    _record(queries=1, pair_product=n_a * n_b)
    mode = pair_index_mode()
    if mode == "bruteforce":
        return None
    if mode == "auto" and n_a * n_b <= _AUTO_BRUTE_CUTOFF:
        return None
    if n_a == 0 or n_b == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if n_a == 1 or n_b == 1:
        # One-row operand: the interval test along every axis *is* the
        # candidate filter — O(n), no index to build.  This keeps the
        # thousands of per-box subtraction queries the overlay kernels
        # issue cheap even when an indexed mode is forced.
        return _single_candidates(a, b, closed)
    if pair_reuse_mode() == "auto":
        if b_index is not None and b_index.indexes(b):
            hit = b_index.query(a, closed)
            if hit is not None:
                qi, xj = hit
                return _canonical(qi, xj, n_b)
        if a_index is not None and a_index.indexes(a):
            hit = a_index.query(b, closed)
            if hit is not None:
                qj, xi = hit
                return _canonical(xi, qj, n_b)
    if mode == "sweep":
        return _sweep_candidates(a, b, closed)
    return _grid_candidates(a, b, closed)


def _single_candidates(
    a: np.ndarray, b: np.ndarray, closed: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Exact candidates when either operand is a single box."""
    ndim = a.shape[1] // 2
    if closed:
        hit = (a[:, None, :ndim] <= b[None, :, ndim:]).all(axis=2)
        hit &= (a[:, None, ndim:] >= b[None, :, :ndim]).all(axis=2)
    else:
        hit = (a[:, None, :ndim] < b[None, :, ndim:]).all(axis=2)
        hit &= (a[:, None, ndim:] > b[None, :, :ndim]).all(axis=2)
    ai, bj = np.nonzero(hit)  # row-major: already ai-major, bj-minor
    _record(candidate_pairs=ai.size)
    return ai.astype(np.int64), bj.astype(np.int64)


def _canonical(ai: np.ndarray, bj: np.ndarray, n_b: int) -> tuple[np.ndarray, np.ndarray]:
    """Dedup + sort into brute-force emission order (ai-major, bj-minor).

    Explicit sort + neighbour mask instead of :func:`np.unique`: the
    duplicated candidate streams here are an order of magnitude cheaper
    to sort than to hash, and the result is identical.
    """
    if ai.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    packed = ai.astype(np.int64) * np.int64(n_b) + bj
    packed.sort()
    keep = np.empty(packed.size, dtype=bool)
    keep[0] = True
    np.not_equal(packed[1:], packed[:-1], out=keep[1:])
    packed = packed[keep]
    _record(candidate_pairs=packed.size)
    return packed // n_b, packed % n_b


def _sorted_groups(
    keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(unique keys, group start, group count)`` of a pre-sorted array.

    Equivalent to ``np.unique(keys, return_index=True,
    return_counts=True)`` but skips the redundant hash/sort pass — the
    callers sorted ``keys`` already.
    """
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return keys[:0], empty, empty
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, keys.size))
    return keys[starts], starts, counts


def _grid_candidates(
    a: np.ndarray, b: np.ndarray, closed: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket-join candidates (see module docstring for the scheme)."""
    ndim = a.shape[1] // 2
    lo = np.concatenate((a[:, :ndim], b[:, :ndim]))
    hi = np.concatenate((a[:, ndim:], b[:, ndim:]))
    extents = hi - lo
    # Cell size: the median box extent per axis — a typical box then
    # touches at most 2 cells per axis.  max(1, ...) guards thin boxes.
    cell = np.maximum(1, np.median(extents, axis=0).astype(np.int64))
    inclusive_hi = hi if closed else hi - 1
    while True:
        base = lo.min(axis=0) // cell
        dims = inclusive_hi.max(axis=0) // cell - base + 1
        # int64 key packing must not overflow: grow cells until the grid
        # extent product fits (2 bits of headroom).
        if int(np.prod([int(d) for d in dims])) < 2**62:
            break
        cell = cell * 2
    lo_cell = lo // cell - base
    hi_cell = inclusive_hi // cell - base
    spans = hi_cell - lo_cell + 1
    incidences = int(np.prod(spans, axis=1, dtype=np.int64).sum())
    if incidences > _GRID_INCIDENCE_FACTOR * (a.shape[0] + b.shape[0]) + 1024:
        # Degenerate aspect ratios: enumerating the buckets would cost
        # more than it prunes — fall back to the sorted sweep.
        return _sweep_candidates(a, b, closed)
    _record(grid_queries=1)
    strides = np.ones(ndim, dtype=np.int64)
    for d in range(ndim - 2, -1, -1):
        strides[d] = strides[d + 1] * dims[d + 1]
    ka, ia = _cell_keys(lo_cell[: a.shape[0]], spans[: a.shape[0]], strides)
    kb, ib = _cell_keys(lo_cell[a.shape[0]:], spans[a.shape[0]:], strides)
    order_a = np.argsort(ka, kind="stable")
    order_b = np.argsort(kb, kind="stable")
    ka, ia = ka[order_a], ia[order_a]
    kb, ib = kb[order_b], ib[order_b]
    ua, start_a, count_a = _sorted_groups(ka)
    ub, start_b, count_b = _sorted_groups(kb)
    _, pa, pb = np.intersect1d(ua, ub, assume_unique=True, return_indices=True)
    if pa.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ca, cb = count_a[pa], count_b[pb]
    sa, sb = start_a[pa], start_b[pb]
    block = ca * cb  # pairs per shared bucket
    starts = np.concatenate(([0], np.cumsum(block)[:-1]))
    total = int(block.sum())
    gid = np.repeat(np.arange(block.size), block)
    t = np.arange(total, dtype=np.int64) - np.repeat(starts, block)
    ai = ia[sa[gid] + t // cb[gid]]
    bj = ib[sb[gid] + t % cb[gid]]
    return _canonical(ai, bj, b.shape[0])


def _cell_keys(
    lo_cell: np.ndarray, spans: np.ndarray, strides: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(packed cell key, box id)`` per (cell, box) incidence.

    Vectorized mixed-radix enumeration: every box emits one row per grid
    cell it touches, keys packed with the global grid strides.
    """
    n, ndim = lo_cell.shape
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    counts = np.prod(spans, axis=1, dtype=np.int64)
    total = int(counts.sum())
    box_ids = np.repeat(np.arange(n, dtype=np.int64), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rem = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    keys = np.zeros(total, dtype=np.int64)
    for d in range(ndim - 1, -1, -1):
        radix = spans[box_ids, d]
        keys += (lo_cell[box_ids, d] + rem % radix) * strides[d]
        rem //= radix
    return keys, box_ids


def _sweep_candidates(
    a: np.ndarray, b: np.ndarray, closed: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted 1-D interval sweep along the most selective axis.

    Exact along the sweep axis (candidates = pairs whose extents overlap
    there); the remaining axes are filtered by the exact arithmetic
    downstream, like any other candidate.
    """
    _record(sweep_queries=1)
    ndim = a.shape[1] // 2
    n_a, n_b = a.shape[0], b.shape[0]
    # Most selective axis: largest corner spread relative to the median
    # extent — the axis along which intervals separate best.
    lo_all = np.concatenate((a[:, :ndim], b[:, :ndim]))
    hi_all = np.concatenate((a[:, ndim:], b[:, ndim:]))
    spread = lo_all.max(axis=0) - lo_all.min(axis=0)
    med = np.maximum(1, np.median(hi_all - lo_all, axis=0))
    axis = int(np.argmax(spread / med))
    a_lo, a_hi = a[:, axis], a[:, ndim + axis]
    b_lo, b_hi = b[:, axis], b[:, ndim + axis]
    order = np.argsort(b_lo, kind="stable")
    ii, jj = _sweep_join(a_lo, a_hi, b_lo[order], b_hi[order], order, closed)
    return _canonical(ii, jj, n_b)


def _sweep_join(
    a_lo: np.ndarray,
    a_hi: np.ndarray,
    b_lo_s: np.ndarray,
    b_hi_s: np.ndarray,
    order: np.ndarray,
    closed: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Chunked interval join against pre-sorted ``b`` intervals.

    Returns raw ``(ai, bj)`` pairs (``bj`` in original ``b`` row
    numbers, possibly unsorted) — callers canonicalise.  Shared by the
    one-shot sweep path and :class:`PairIndex`'s persistent sweep kind.
    """
    n_a = a_lo.shape[0]
    # Candidates of row i: sorted-prefix j with b_lo_j < a_hi_i (<= when
    # closed), filtered by b_hi_j > a_lo_i (>= when closed).
    side = "right" if closed else "left"
    upper = np.searchsorted(b_lo_s, a_hi, side=side)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    csum = np.concatenate(([0], np.cumsum(upper)))
    start = 0
    while start < n_a:
        end = int(
            np.searchsorted(csum, csum[start] + _SWEEP_CHUNK_PAIRS, side="left")
        )
        end = max(start + 1, min(end, n_a))
        counts = upper[start:end]
        total = int(counts.sum())
        if total:
            ii = np.repeat(np.arange(start, end, dtype=np.int64), counts)
            offs = np.concatenate(([0], np.cumsum(counts)[:-1]))
            jj = np.arange(total, dtype=np.int64) - np.repeat(offs, counts)
            keep = b_hi_s[jj] >= a_lo[ii] if closed else b_hi_s[jj] > a_lo[ii]
            out_i.append(ii[keep])
            out_j.append(order[jj[keep]])
        start = end
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(out_i), np.concatenate(out_j)


# ---------------------------------------------------------------------------
# persistent indexes
# ---------------------------------------------------------------------------

def _row_keys(corners: np.ndarray) -> np.ndarray:
    """One opaque sortable key per corner row (for the add/remove diff).

    Box rows within an owner map are unique (patches are disjoint), so
    the raw row bytes identify a box across steps.
    """
    c = np.ascontiguousarray(corners, dtype=np.int64)
    if c.shape[0] == 0:
        return np.empty(0, dtype=np.dtype((np.void, 8)))
    return c.view(np.dtype((np.void, c.dtype.itemsize * c.shape[1]))).ravel()


class PairIndex:
    """A persistent one-sided candidate index over one corner array.

    Built once per box distribution (grid buckets anchored to the
    level's fixed ``shape`` domain, or the sorted-sweep fallback when
    bucket incidences explode), then probed by every kernel query that
    touches the array within a step, and carried to the *next* step via
    :meth:`updated_to` — a delta update from the box add/remove diff
    that reuses the surviving incidences instead of re-bucketing
    everything.

    A probe returns a candidate **superset** in raw order; callers run
    it through :func:`_canonical`, so results are bit-identical to the
    two-sided per-query path (the candidate sets may differ — the exact
    arithmetic downstream erases the difference).
    """

    __slots__ = (
        "shape",
        "_ext",
        "_n",
        "_kind",
        "_cell",
        "_dims",
        "_strides",
        "_keys",
        "_rows",
        "_ukeys",
        "_ustart",
        "_ucount",
        "_axis",
        "_order",
        "_lo_s",
        "_hi_s",
    )

    def __init__(self, shape, corners: np.ndarray):
        self.shape = tuple(int(s) for s in shape)
        self._ext = corners
        self._n = int(corners.shape[0])
        self._cell = self._dims = self._strides = None
        self._keys = self._rows = None
        self._ukeys = self._ustart = self._ucount = None
        self._axis = None
        self._order = self._lo_s = self._hi_s = None
        if self._n == 0:
            self._kind = "empty"
            return
        _record(index_builds=1)
        if pair_index_mode() == "sweep" or not self._build_grid():
            self._build_sweep()

    # -- introspection ----------------------------------------------------

    @property
    def kind(self) -> str:
        """``grid`` | ``sweep`` | ``empty``."""
        return self._kind

    @property
    def nboxes(self) -> int:
        return self._n

    def indexes(self, corners: np.ndarray) -> bool:
        """Whether this index covers exactly that corner array (identity)."""
        return corners is self._ext

    # -- construction -----------------------------------------------------

    def _build_grid(self) -> bool:
        """Bucket the boxes over the domain grid; False on explosion."""
        corners = self._ext
        ndim = corners.shape[1] // 2
        lo = corners[:, :ndim]
        hi = corners[:, ndim:]
        cell = np.maximum(1, np.median(hi - lo, axis=0).astype(np.int64))
        shape_arr = np.asarray(self.shape, dtype=np.int64)
        while True:
            # Anchored to the level's fixed domain (base 0) so any
            # future in-domain box fits the same grid — delta updates
            # never force a rebuild for bounds reasons.
            dims = shape_arr // cell + 1
            if int(np.prod([int(d) for d in dims])) < 2**62:
                break
            cell = cell * 2
        lo_cell, spans = self._incidence_cells(lo, hi, cell, dims)
        if int(np.prod(spans, axis=1, dtype=np.int64).sum()) > (
            _GRID_INCIDENCE_FACTOR * self._n + 1024
        ):
            return False
        strides = np.ones(ndim, dtype=np.int64)
        for d in range(ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * dims[d + 1]
        keys, rows = _cell_keys(lo_cell, spans, strides)
        self._kind = "grid"
        self._cell, self._dims, self._strides = cell, dims, strides
        self._set_incidences(keys, rows.astype(np.int64))
        return True

    @staticmethod
    def _incidence_cells(
        lo: np.ndarray, hi: np.ndarray, cell: np.ndarray, dims: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Clipped (lo_cell, spans) of the *closed* cell ranges.

        Closed incidence (``hi // cell``) covers a superset of both the
        open and closed query semantics, so one stored index serves
        intersection *and* face-contact probes.
        """
        lo_cell = np.clip(lo // cell, 0, dims - 1)
        hi_cell = np.clip(hi // cell, 0, dims - 1)
        return lo_cell, hi_cell - lo_cell + 1

    def _set_incidences(self, keys: np.ndarray, rows: np.ndarray) -> None:
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._rows = rows[order]
        self._ukeys, self._ustart, self._ucount = _sorted_groups(self._keys)

    def _build_sweep(self) -> None:
        corners = self._ext
        ndim = corners.shape[1] // 2
        lo = corners[:, :ndim]
        hi = corners[:, ndim:]
        spread = lo.max(axis=0) - lo.min(axis=0)
        med = np.maximum(1, np.median(hi - lo, axis=0))
        self._kind = "sweep"
        self._axis = int(np.argmax(spread / med))
        self._resort_sweep()

    def _resort_sweep(self) -> None:
        ndim = self._ext.shape[1] // 2
        lo = self._ext[:, self._axis]
        hi = self._ext[:, ndim + self._axis]
        order = np.argsort(lo, kind="stable")
        self._order = order.astype(np.int64)
        self._lo_s = lo[order]
        self._hi_s = hi[order]

    # -- probing ----------------------------------------------------------

    def query(
        self, q: np.ndarray, closed: bool
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Raw candidate ``(query_row, indexed_row)`` pairs, or ``None``.

        ``None`` means the probe declined (query-side bucket incidences
        would explode) and the caller should fall back to the two-sided
        per-query path.  Pairs are a superset of all intersecting
        (``closed``: touching) pairs, unordered and possibly duplicated
        — callers canonicalise.
        """
        if self._kind == "empty":
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if self._kind == "sweep":
            return self._sweep_query(q, closed)
        return self._grid_query(q, closed)

    def _grid_query(
        self, q: np.ndarray, closed: bool
    ) -> tuple[np.ndarray, np.ndarray] | None:
        ndim = self._dims.size
        lo = q[:, :ndim]
        inclusive_hi = q[:, ndim:] if closed else q[:, ndim:] - 1
        lo_cell = np.clip(lo // self._cell, 0, self._dims - 1)
        hi_cell = np.clip(inclusive_hi // self._cell, 0, self._dims - 1)
        spans = hi_cell - lo_cell + 1
        good = (spans > 0).all(axis=1)
        row_map = None
        if not good.all():
            # Zero-extent open boxes can't overlap anything — drop them,
            # remembering original row numbers for the emitted pairs.
            row_map = np.flatnonzero(good)
            lo_cell, spans = lo_cell[good], spans[good]
        incidences = int(np.prod(spans, axis=1, dtype=np.int64).sum())
        if incidences > _GRID_INCIDENCE_FACTOR * q.shape[0] + 1024:
            return None
        _record(grid_queries=1, index_reuses=1)
        qkeys, qrows = _cell_keys(lo_cell, spans, self._strides)
        order = np.argsort(qkeys, kind="stable")
        qkeys, qrows = qkeys[order], qrows[order]
        uq, qstart, qcount = _sorted_groups(qkeys)
        _, pq, px = np.intersect1d(
            uq, self._ukeys, assume_unique=True, return_indices=True
        )
        if pq.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        cq, cx = qcount[pq], self._ucount[px]
        sq, sx = qstart[pq], self._ustart[px]
        block = cq * cx
        starts = np.concatenate(([0], np.cumsum(block)[:-1]))
        total = int(block.sum())
        gid = np.repeat(np.arange(block.size), block)
        t = np.arange(total, dtype=np.int64) - np.repeat(starts, block)
        qi = qrows[sq[gid] + t // cx[gid]]
        xj = self._rows[sx[gid] + t % cx[gid]]
        if row_map is not None:
            qi = row_map[qi]
        return qi, xj

    def _sweep_query(
        self, q: np.ndarray, closed: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        _record(sweep_queries=1, index_reuses=1)
        ndim = q.shape[1] // 2
        a_lo = q[:, self._axis]
        a_hi = q[:, ndim + self._axis]
        return _sweep_join(a_lo, a_hi, self._lo_s, self._hi_s, self._order, closed)

    # -- delta updates ----------------------------------------------------

    def updated_to(self, new_corners: np.ndarray) -> "PairIndex":
        """A fresh :class:`PairIndex` over ``new_corners``, reusing work.

        Diffs the two box sets by row identity; when churn stays under
        :data:`_DELTA_CHURN_FRACTION`, surviving grid incidences are
        renumbered and merged with the added boxes' incidences (grid
        kind) or the sweep order is simply re-sorted (sweep kind) — far
        cheaper than re-bucketing.  Above the threshold, builds from
        scratch.  ``self`` is left untouched and stays valid.
        """
        n_new = int(new_corners.shape[0])
        if self._kind == "empty" or n_new == 0:
            return PairIndex(self.shape, new_corners)
        common, old_idx, new_idx = np.intersect1d(
            _row_keys(self._ext), _row_keys(new_corners), return_indices=True
        )
        removed = self._n - common.size
        added = n_new - common.size
        if removed + added > _DELTA_CHURN_FRACTION * max(1, n_new):
            return PairIndex(self.shape, new_corners)
        new = object.__new__(PairIndex)
        new.shape = self.shape
        new._ext = new_corners
        new._n = n_new
        new._kind = self._kind
        new._cell = new._dims = new._strides = None
        new._keys = new._rows = None
        new._ukeys = new._ustart = new._ucount = None
        new._axis = None
        new._order = new._lo_s = new._hi_s = None
        if self._kind == "sweep":
            new._kind = "sweep"
            new._axis = self._axis
            new._resort_sweep()
            _record(delta_updates=1)
            return new
        # Grid kind: renumber surviving incidences, bucket only the
        # added boxes on the same domain-anchored grid.
        remap = np.full(self._n, -1, dtype=np.int64)
        remap[old_idx] = new_idx
        mapped = remap[self._rows]
        keep = mapped >= 0
        kept_keys = self._keys[keep]
        kept_rows = mapped[keep]
        added_rows = np.setdiff1d(
            np.arange(n_new, dtype=np.int64), new_idx, assume_unique=True
        )
        ndim = self._dims.size
        lo = new_corners[added_rows, :ndim]
        hi = new_corners[added_rows, ndim:]
        lo_cell, spans = self._incidence_cells(lo, hi, self._cell, self._dims)
        add_keys, add_local = _cell_keys(lo_cell, spans, self._strides)
        total = kept_keys.size + add_keys.size
        if total > _GRID_INCIDENCE_FACTOR * n_new + 1024:
            # Added boxes degenerate enough to blow the incidence budget
            # — rebuild from scratch (which may pick the sweep kind).
            return PairIndex(self.shape, new_corners)
        new._cell, new._dims, new._strides = self._cell, self._dims, self._strides
        new._set_incidences(
            np.concatenate((kept_keys, add_keys)),
            np.concatenate((kept_rows, added_rows[add_local])),
        )
        _record(delta_updates=1)
        return new


# ---------------------------------------------------------------------------
# registry exposure: `repro describe --kind pair-index`
# ---------------------------------------------------------------------------

declare_kind("pair-index", "pair-index mode")


def _register_modes() -> None:
    docs = {
        "auto": (
            "grid-bucket pruning with a brute-force cutoff below "
            f"{_AUTO_BRUTE_CUTOFF} candidate products (the default)"
        ),
        "grid": (
            "force grid buckets (cell size = median box extent per axis; "
            "falls back to the sorted sweep when cell incidences exceed "
            f"{_GRID_INCIDENCE_FACTOR}x the box count)"
        ),
        "sweep": "force the sorted interval sweep along the most selective axis",
        "bruteforce": "force the historical O(n^2) broadcast (cross-check path)",
    }
    for name, description in docs.items():
        register(
            "pair-index",
            name,
            (lambda mode: lambda: pair_index_forced(mode))(name),
            description=description,
        )


_register_modes()


declare_kind("pair-reuse", "pair-index reuse mode")


def _register_reuse_modes() -> None:
    docs = {
        "auto": (
            "persistent per-level PairIndex shared by all kernel queries in "
            "a step and delta-updated between steps (the default; falls back "
            f"to a full rebuild above {_DELTA_CHURN_FRACTION:.0%} box churn)"
        ),
        "off": (
            "rebuild indexes per query — the exact PR-6 hot path, kept as "
            "the bit-identity reference"
        ),
    }
    for name, description in docs.items():
        register(
            "pair-reuse",
            name,
            (lambda mode: lambda: pair_reuse_forced(mode))(name),
            description=description,
        )


_register_reuse_modes()
