"""Operations on collections of boxes (patch sets).

A Berger--Colella refinement level is a set of *pairwise-disjoint* boxes.
:class:`BoxList` wraps such a set and provides the union-area, subtraction
and intersection-sum operations that the partitioners, the execution
simulator and the paper's penalties are built from.

The key numerical routine is :func:`intersection_volume`, the
``sum_i sum_j |A_i ∩ B_j|`` appearing (per level) in the data-migration
penalty ``beta_m`` of section 4.4.  For disjoint patch sets this equals the
volume of the intersection of the two unions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .box import Box, bounding_box

__all__ = [
    "BoxList",
    "intersection_volume",
    "union_ncells",
    "subtract_boxes",
    "coalesce_boxes",
]


def intersection_volume(a: Sequence[Box], b: Sequence[Box]) -> int:
    """Total cell count of pairwise intersections ``sum_ij |a_i ∩ b_j|``.

    For internally-disjoint ``a`` and ``b`` this is exactly
    ``|union(a) ∩ union(b)|``.  Delegates to the pair-index-accelerated
    :func:`~repro.geometry.ownermap.overlap_volume`, so the candidate
    product is pruned to near-linear at scale (``REPRO_PAIR_INDEX``
    selects the path; brute force remains the cross-check).
    """
    from .ownermap import overlap_volume

    a = [x for x in a if not x.empty]
    b = [x for x in b if not x.empty]
    if not a or not b:
        return 0
    corners_a = np.array(
        [tuple(x.lo) + tuple(x.hi) for x in a], dtype=np.int64
    )
    corners_b = np.array(
        [tuple(x.lo) + tuple(x.hi) for x in b], dtype=np.int64
    )
    return overlap_volume(corners_a, corners_b)


def union_ncells(boxes: Sequence[Box]) -> int:
    """Number of cells in the union of possibly-overlapping boxes.

    Inclusion-exclusion via recursive subtraction: each box contributes the
    part of it not covered by earlier boxes.  For disjoint inputs this is
    simply the sum of ``ncells``.
    """
    total = 0
    seen: list[Box] = []
    for box in boxes:
        if box.empty:
            continue
        fragments = [box]
        for prior in seen:
            nxt: list[Box] = []
            for frag in fragments:
                nxt.extend(frag.subtract(prior))
            fragments = nxt
            if not fragments:
                break
        total += sum(f.ncells for f in fragments)
        seen.append(box)
    return total


def subtract_boxes(base: Sequence[Box], holes: Sequence[Box]) -> list[Box]:
    """Set difference ``union(base) \\ union(holes)`` as disjoint boxes.

    ``base`` must be internally disjoint; the result is then disjoint too.
    """
    fragments = [b for b in base if not b.empty]
    for hole in holes:
        if hole.empty:
            continue
        nxt: list[Box] = []
        for frag in fragments:
            nxt.extend(frag.subtract(hole))
        fragments = nxt
        if not fragments:
            break
    return fragments


def coalesce_boxes(boxes: Sequence[Box]) -> list[Box]:
    """Greedily merge abutting boxes whose union is a box.

    Reduces patch counts after subtraction; result covers exactly the same
    cells (inputs must be disjoint).
    """
    work = [b for b in boxes if not b.empty]
    merged = True
    while merged:
        merged = False
        out: list[Box] = []
        used = [False] * len(work)
        for i, bi in enumerate(work):
            if used[i]:
                continue
            acc = bi
            for j in range(i + 1, len(work)):
                if used[j]:
                    continue
                bj = work[j]
                if acc.can_coalesce(bj):
                    acc = acc.merge_bounding(bj)
                    used[j] = True
                    merged = True
            out.append(acc)
        work = out
    return work


class BoxList:
    """An ordered collection of pairwise-disjoint boxes (one AMR level).

    Disjointness is the caller's responsibility on construction (it is what
    Berger--Colella clustering guarantees); :meth:`validate_disjoint` checks
    it explicitly and is used by the test suite and the hierarchy
    constructors.
    """

    __slots__ = ("_boxes",)

    def __init__(self, boxes: Iterable[Box] = ()) -> None:
        self._boxes: tuple[Box, ...] = tuple(b for b in boxes if not b.empty)

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __len__(self) -> int:
        return len(self._boxes)

    def __getitem__(self, i: int) -> Box:
        return self._boxes[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxList):
            return NotImplemented
        return self._boxes == other._boxes

    def __hash__(self) -> int:
        return hash(self._boxes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxList({len(self._boxes)} boxes, {self.ncells} cells)"

    # -- queries -------------------------------------------------------------
    @property
    def boxes(self) -> tuple[Box, ...]:
        """The underlying boxes."""
        return self._boxes

    @property
    def ncells(self) -> int:
        """Total cells (sum over disjoint boxes)."""
        return sum(b.ncells for b in self._boxes)

    @property
    def surface_cells(self) -> int:
        """Sum of per-box hull faces (upper bound on exposed surface)."""
        return sum(b.surface_cells for b in self._boxes)

    def bounding_box(self) -> Box | None:
        """Smallest single box covering every member."""
        return bounding_box(self._boxes)

    def validate_disjoint(self) -> None:
        """Raise ``ValueError`` if any two member boxes overlap."""
        for i, a in enumerate(self._boxes):
            for b in self._boxes[i + 1 :]:
                if a.intersects(b):
                    raise ValueError(f"overlapping boxes: {a} and {b}")

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if any member box contains ``point``."""
        return any(b.contains_point(point) for b in self._boxes)

    # -- algebra ---------------------------------------------------------
    def intersect_volume(self, other: "BoxList | Sequence[Box]") -> int:
        """``sum_ij |a_i ∩ b_j|`` against another box collection."""
        other_boxes = other.boxes if isinstance(other, BoxList) else tuple(other)
        return intersection_volume(self._boxes, other_boxes)

    def intersect_box(self, box: Box) -> "BoxList":
        """Clip every member to ``box``."""
        out = []
        for b in self._boxes:
            c = b.intersect(box)
            if c is not None:
                out.append(c)
        return BoxList(out)

    def subtract(self, holes: "BoxList | Sequence[Box]") -> "BoxList":
        """Remove ``holes`` from the union, returning disjoint fragments."""
        hole_boxes = holes.boxes if isinstance(holes, BoxList) else tuple(holes)
        return BoxList(subtract_boxes(self._boxes, hole_boxes))

    def coalesced(self) -> "BoxList":
        """Greedy merge of abutting boxes (same cells, fewer boxes)."""
        return BoxList(coalesce_boxes(self._boxes))

    def refine(self, ratio: int) -> "BoxList":
        """Refine every member by ``ratio``."""
        return BoxList(b.refine(ratio) for b in self._boxes)

    def coarsen(self, ratio: int) -> "BoxList":
        """Coarsen every member by ``ratio`` (outward rounding).

        Note: coarsened boxes of a disjoint set may overlap; callers that
        need disjointness should re-normalize via :meth:`disjointified`.
        """
        return BoxList(b.coarsen(ratio) for b in self._boxes)

    def disjointified(self) -> "BoxList":
        """Rebuild as a disjoint set covering the same union."""
        out: list[Box] = []
        for b in self._boxes:
            fragments = [b]
            for prior in out:
                nxt: list[Box] = []
                for frag in fragments:
                    nxt.extend(frag.subtract(prior))
                fragments = nxt
                if not fragments:
                    break
            out.extend(fragments)
        return BoxList(out)

    # -- serialization -----------------------------------------------------
    def to_json(self) -> list[list[list[int]]]:
        """JSON form: list of ``[[lo...], [hi...]]`` entries."""
        return [b.to_json() for b in self._boxes]

    @staticmethod
    def from_json(data: Sequence[Sequence[Sequence[int]]]) -> "BoxList":
        """Inverse of :meth:`to_json`."""
        return BoxList(Box.from_json(entry) for entry in data)
