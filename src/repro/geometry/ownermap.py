"""Sparse, patch-aligned owner maps: the rasterless distribution calculus.

An :class:`OwnerMap` represents one level of a distribution as an
``(nboxes, 2*ndim)`` int64 corner array (``[lo..., hi...]`` per row, boxes
pairwise disjoint) plus an int32 owning rank per box.  It replaces the
dense per-level owner rasters of the original simulator core: every
quantity the execution simulator reports — per-rank loads, ghost-exchange
faces, message pairs, inter-level transfers, migration — is computable
from corner arithmetic alone, so simulator cost scales with the number of
patches (O(boxes^2) pair sweeps) instead of the volume of the finest index
space (O(cells) reductions).  That is what makes true paper-scale 3-D
hierarchies (32^3 base, 5 levels of factor-2 refinement — a 512^3 finest
index space) tractable: the densest level raster alone would be half a
gigabyte per distribution, while its owner map is a few thousand corner
rows.

The dense raster representation remains available through
:meth:`OwnerMap.rasterize` / :meth:`OwnerMap.from_raster` and is used as a
cross-check (property tests assert sparse == dense on random N-D
hierarchies); equality of owner maps is *semantic* — two maps are equal
when they assign the same rank to the same cells, regardless of how the
region is cut into boxes — so ``from_raster(rasterize(m)) == m`` always
holds.

The pair kernels themselves (:func:`pair_intersections`,
:func:`overlap_volume`, :func:`face_contacts`) dispatch through the
grid-bucket pair-pruning index (:mod:`repro.geometry.pairindex`): at
scale the O(n_a * n_b) candidate product is pruned to near-linear before
the exact arithmetic runs, with output ordering guaranteed bit-identical
to the historical broadcast (which survives as the ``bruteforce``
cross-check path, selected via ``REPRO_PAIR_INDEX``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .box import Box
from .pairindex import (
    PairIndex,
    _record_brute,
    _record_exact,
    candidate_pairs,
    pair_index_mode,
    pair_reuse_mode,
)
from .raster import NO_OWNER, boxes_from_labels, paint_box

__all__ = [
    "OwnerMap",
    "box_corners",
    "corner_volumes",
    "pair_intersections",
    "intersect_corners",
    "face_contacts",
    "matched_volume",
    "overlap_volume",
    "overlap_and_matched_volume",
    "overlay_corners",
    "subtract_corners",
    "prefix_corners",
    "first_cells_in_scan_order",
]

#: Row budget of one broadcasted (chunk, nboxes) pair sweep (~128 MB of
#: int64 per spatial dimension).  Keeps worst-case pair kernels bounded in
#: memory no matter how fragmented a distribution gets.
_PAIR_CHUNK_CELLS = 16_000_000


def box_corners(boxes: Iterable[Box], ndim: int | None = None) -> np.ndarray:
    """Stack boxes into an ``(n, 2*ndim)`` int64 corner array."""
    rows = [tuple(b.lo) + tuple(b.hi) for b in boxes]
    if not rows:
        if ndim is None:
            raise ValueError("cannot infer ndim from an empty box sequence")
        return np.empty((0, 2 * ndim), dtype=np.int64)
    out = np.asarray(rows, dtype=np.int64)
    if ndim is not None and out.shape[1] != 2 * ndim:
        raise ValueError(
            f"expected {ndim}-d boxes, got corner rows of width {out.shape[1]}"
        )
    return out


def corner_volumes(corners: np.ndarray) -> np.ndarray:
    """Cell count of every corner row (int64, shape ``(n,)``)."""
    ndim = corners.shape[1] // 2
    widths = corners[:, ndim:] - corners[:, :ndim]
    return np.prod(widths, axis=1, dtype=np.int64)


def _chunks(n_a: int, n_b: int) -> Iterator[slice]:
    """Slices over the first operand keeping each broadcast bounded."""
    if n_a == 0 or n_b == 0:
        return
    step = max(1, _PAIR_CHUNK_CELLS // max(1, n_b))
    for start in range(0, n_a, step):
        yield slice(start, min(start + step, n_a))


def pair_intersections(
    a: np.ndarray,
    b: np.ndarray,
    *,
    a_index: PairIndex | None = None,
    b_index: PairIndex | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All non-empty pairwise intersections of two corner arrays.

    Returns ``(corners, ai, bj)``: the intersection corner rows plus the
    source row index into ``a`` and ``b`` for each (so callers can carry
    ranks or other per-box payloads through the intersection).

    Pairs are emitted in ``ai``-major, ``bj``-minor order on every
    candidate path (persistent index, per-query index, or brute force),
    so downstream consumers are bit-identical across ``REPRO_PAIR_INDEX``
    and ``REPRO_PAIR_REUSE`` modes.
    """
    ndim = a.shape[1] // 2
    cand = candidate_pairs(a, b, a_index=a_index, b_index=b_index)
    if cand is not None:
        ai, bj = cand
        lo = np.maximum(a[ai, :ndim], b[bj, :ndim])
        hi = np.minimum(a[ai, ndim:], b[bj, ndim:])
        keep = (hi > lo).all(axis=1)
        _record_exact(int(keep.sum()))
        return (
            np.concatenate((lo[keep], hi[keep]), axis=1),
            ai[keep],
            bj[keep],
        )
    _record_brute(a.shape[0] * b.shape[0])
    out_c: list[np.ndarray] = []
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    for sl in _chunks(a.shape[0], b.shape[0]):
        lo = np.maximum(a[sl, None, :ndim], b[None, :, :ndim])
        hi = np.minimum(a[sl, None, ndim:], b[None, :, ndim:])
        nonempty = (hi > lo).all(axis=2)
        if not nonempty.any():
            continue
        ii, jj = np.nonzero(nonempty)
        out_c.append(np.concatenate((lo[ii, jj], hi[ii, jj]), axis=1))
        out_i.append(ii + sl.start)
        out_j.append(jj)
    if not out_c:
        empty = np.empty(0, dtype=np.int64)
        return np.empty((0, 2 * ndim), dtype=np.int64), empty, empty
    _record_exact(sum(c.shape[0] for c in out_c))
    return (
        np.concatenate(out_c),
        np.concatenate(out_i),
        np.concatenate(out_j),
    )


def overlap_volume(
    a: np.ndarray,
    b: np.ndarray,
    *,
    a_index: PairIndex | None = None,
    b_index: PairIndex | None = None,
) -> int:
    """``sum_ij |a_i ∩ b_j|`` over two corner arrays (rank-agnostic)."""
    ndim = a.shape[1] // 2
    cand = candidate_pairs(a, b, a_index=a_index, b_index=b_index)
    if cand is not None:
        ai, bj = cand
        lo = np.maximum(a[ai, :ndim], b[bj, :ndim])
        hi = np.minimum(a[ai, ndim:], b[bj, ndim:])
        width = np.clip(hi - lo, 0, None)
        vol = np.prod(width, axis=1, dtype=np.int64)
        _record_exact(int((vol > 0).sum()))
        return int(vol.sum())
    _record_brute(a.shape[0] * b.shape[0])
    total = 0
    for sl in _chunks(a.shape[0], b.shape[0]):
        lo = np.maximum(a[sl, None, :ndim], b[None, :, :ndim])
        hi = np.minimum(a[sl, None, ndim:], b[None, :, ndim:])
        width = np.clip(hi - lo, 0, None)
        vol = width[..., 0]
        for d in range(1, ndim):
            vol = vol * width[..., d]
        total += int(vol.sum())
    return total


def intersect_corners(corners: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Clip one corner array against a single corner row; drop empties."""
    ndim = corners.shape[1] // 2
    lo = np.maximum(corners[:, :ndim], clip[:ndim])
    hi = np.minimum(corners[:, ndim:], clip[ndim:])
    keep = (hi > lo).all(axis=1)
    return np.concatenate((lo[keep], hi[keep]), axis=1)


def _index_usable(
    a: np.ndarray,
    b: np.ndarray,
    a_index: PairIndex | None,
    b_index: PairIndex | None,
) -> bool:
    """Whether a persistent index actually covers one operand here."""
    if pair_reuse_mode() != "auto":
        return False
    if b_index is not None and b_index.indexes(b):
        return True
    return a_index is not None and a_index.indexes(a)


def matched_volume(
    a: np.ndarray,
    a_ranks: np.ndarray,
    b: np.ndarray,
    b_ranks: np.ndarray,
    *,
    a_index: PairIndex | None = None,
    b_index: PairIndex | None = None,
) -> int:
    """``sum |a_i ∩ b_j|`` over pairs with *equal* ranks.

    Without a persistent index the operands are grouped by rank before
    the pair sweep, so the broadcast never touches cross-rank pairs —
    the common case (P rank groups of similar size) costs ~1/P of the
    full pair product.  With one, a single index probe replaces the ~P
    per-group index builds: candidates are filtered by rank equality
    before the exact arithmetic, and the integer sum is identical either
    way.
    """
    if a.shape[0] == 0 or b.shape[0] == 0:
        return 0
    if _index_usable(a, b, a_index, b_index):
        cand = candidate_pairs(a, b, a_index=a_index, b_index=b_index)
        if cand is not None:
            ndim = a.shape[1] // 2
            ai, bj = cand
            same = a_ranks[ai] == b_ranks[bj]
            ai, bj = ai[same], bj[same]
            lo = np.maximum(a[ai, :ndim], b[bj, :ndim])
            hi = np.minimum(a[ai, ndim:], b[bj, ndim:])
            vol = np.prod(np.clip(hi - lo, 0, None), axis=1, dtype=np.int64)
            _record_exact(int((vol > 0).sum()))
            return int(vol.sum())
    total = 0
    common = np.intersect1d(np.unique(a_ranks), np.unique(b_ranks))
    for rank in common:
        total += overlap_volume(a[a_ranks == rank], b[b_ranks == rank])
    return total


def overlap_and_matched_volume(
    a: np.ndarray,
    a_ranks: np.ndarray,
    b: np.ndarray,
    b_ranks: np.ndarray,
    *,
    a_index: PairIndex | None = None,
    b_index: PairIndex | None = None,
) -> tuple[int, int]:
    """``(overlap_volume, matched_volume)`` from one candidate pass.

    The inter-level transfer metric needs both sums over the same two
    corner arrays; with a persistent index this answers them from a
    single probe instead of ``1 + nranks`` separate queries.  Falls back
    to the two historical kernels (bit-identical sums) when no index
    covers an operand or brute force is forced.
    """
    if a.shape[0] and b.shape[0] and _index_usable(a, b, a_index, b_index):
        cand = candidate_pairs(a, b, a_index=a_index, b_index=b_index)
        if cand is not None:
            ndim = a.shape[1] // 2
            ai, bj = cand
            lo = np.maximum(a[ai, :ndim], b[bj, :ndim])
            hi = np.minimum(a[ai, ndim:], b[bj, ndim:])
            vol = np.prod(np.clip(hi - lo, 0, None), axis=1, dtype=np.int64)
            _record_exact(int((vol > 0).sum()))
            both = int(vol.sum())
            same = int(vol[a_ranks[ai] == b_ranks[bj]].sum())
            return both, same
    return (
        overlap_volume(a, b, a_index=a_index, b_index=b_index),
        matched_volume(a, a_ranks, b, b_ranks, a_index=a_index, b_index=b_index),
    )


def face_contacts(
    corners: np.ndarray,
    ranks: np.ndarray,
    *,
    index: PairIndex | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Abutting-face areas between boxes owned by *different* ranks.

    For every ordered pair ``(i, j)`` with ``hi_i[d] == lo_j[d]`` along
    some axis ``d`` and overlapping extents in every other axis, emits one
    entry ``(ranks[i], ranks[j], shared face area)``.  Each geometric face
    between two boxes appears exactly once (two disjoint boxes can abut
    along at most one axis with positive cross-section).  This is the
    sparse counterpart of counting unequal-owner cell faces on a raster.
    """
    n = corners.shape[0]
    ndim = corners.shape[1] // 2
    lo = corners[:, :ndim]
    hi = corners[:, ndim:]
    out_a: list[np.ndarray] = []
    out_b: list[np.ndarray] = []
    out_area: list[np.ndarray] = []
    # Touching boxes do not *intersect*, so the face query needs the
    # closed-interval candidate set: abutting pairs cohabit a bucket too.
    # One candidate pass serves all ndim axis filters; per-axis emission
    # order (ai-major, bj-minor) matches the brute-force sweeps below.
    cand = candidate_pairs(corners, corners, closed=True, b_index=index)
    if cand is not None:
        ai, bj = cand
        rank_differs = ranks[ai] != ranks[bj]
        for d in range(ndim):
            sel = (hi[ai, d] == lo[bj, d]) & rank_differs
            if not sel.any():
                continue
            ii, jj = ai[sel], bj[sel]
            area = np.ones(ii.size, dtype=np.int64)
            for e in range(ndim):
                if e == d:
                    continue
                width = np.minimum(hi[ii, e], hi[jj, e]) - np.maximum(
                    lo[ii, e], lo[jj, e]
                )
                area *= np.clip(width, 0, None)
            keep = area > 0
            if keep.any():
                out_a.append(ranks[ii[keep]])
                out_b.append(ranks[jj[keep]])
                out_area.append(area[keep])
        _record_exact(sum(x.size for x in out_a))
        if not out_a:
            empty32 = np.empty(0, dtype=np.int32)
            return empty32, empty32, np.empty(0, dtype=np.int64)
        return (
            np.concatenate(out_a),
            np.concatenate(out_b),
            np.concatenate(out_area),
        )
    _record_brute(n * n)
    for d in range(ndim):
        for sl in _chunks(n, n):
            contact = hi[sl, None, d] == lo[None, :, d]
            contact &= ranks[sl, None] != ranks[None, :]
            if not contact.any():
                continue
            ii, jj = np.nonzero(contact)
            ii += sl.start
            area = np.ones(ii.size, dtype=np.int64)
            for e in range(ndim):
                if e == d:
                    continue
                width = np.minimum(hi[ii, e], hi[jj, e]) - np.maximum(
                    lo[ii, e], lo[jj, e]
                )
                area *= np.clip(width, 0, None)
            keep = area > 0
            if keep.any():
                out_a.append(ranks[ii[keep]])
                out_b.append(ranks[jj[keep]])
                out_area.append(area[keep])
    if not out_a:
        empty32 = np.empty(0, dtype=np.int32)
        return empty32, empty32, np.empty(0, dtype=np.int64)
    _record_exact(sum(x.size for x in out_a))
    return (
        np.concatenate(out_a),
        np.concatenate(out_b),
        np.concatenate(out_area),
    )


def _subtract_groups(
    rows: np.ndarray, holes: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``rows[g] \\ holes[offsets[g]:offsets[g+1]]`` for all groups.

    The per-step overlay/subtract kernels historically looped over every
    touched base box with Python :class:`Box` objects; this runs the same
    dimension-sweep decomposition for *all* groups at once, one vectorized
    pass per hole position.  Bit-identical by construction: fragments are
    emitted in exactly the sequential sweep's order (below/above per axis,
    parent-major), so callers see the same corner rows in the same order.

    Returns ``(fragment_rows, group_ids)`` with groups in ascending order.
    """
    g, width = rows.shape
    ndim = width // 2
    counts = np.diff(offsets)
    frag_lo = rows[:, :ndim].copy()
    frag_hi = rows[:, ndim:].copy()
    gid = np.arange(g, dtype=np.int64)
    done_lo: list[np.ndarray] = []
    done_hi: list[np.ndarray] = []
    done_gid: list[np.ndarray] = []
    k = 0
    while gid.size:
        alive = counts[gid] > k
        if not alive.all():
            fin = ~alive
            done_lo.append(frag_lo[fin])
            done_hi.append(frag_hi[fin])
            done_gid.append(gid[fin])
            frag_lo, frag_hi, gid = frag_lo[alive], frag_hi[alive], gid[alive]
            if gid.size == 0:
                break
        h = holes[offsets[gid] + k]
        h_lo, h_hi = h[:, :ndim], h[:, ndim:]
        inter_lo = np.maximum(frag_lo, h_lo)
        inter_hi = np.minimum(frag_hi, h_hi)
        hit = (inter_lo < inter_hi).all(axis=1)
        m = frag_lo.shape[0]
        nslots = 2 * ndim + 1
        # Slot 0 carries a missed fragment through unchanged; slots
        # 2d+1 / 2d+2 are the below / above pieces of the axis-d sweep.
        # C-order flattening (fragment-major, slot-minor) reproduces the
        # sequential emission order exactly.
        piece_lo = np.empty((m, nslots, ndim), dtype=np.int64)
        piece_hi = np.empty((m, nslots, ndim), dtype=np.int64)
        valid = np.zeros((m, nslots), dtype=bool)
        piece_lo[:, 0], piece_hi[:, 0] = frag_lo, frag_hi
        valid[:, 0] = ~hit
        cur_lo = frag_lo.copy()
        cur_hi = frag_hi.copy()
        for d in range(ndim):
            below = hit & (cur_lo[:, d] < inter_lo[:, d])
            s = 2 * d + 1
            piece_lo[:, s], piece_hi[:, s] = cur_lo, cur_hi
            piece_hi[below, s, d] = inter_lo[below, d]
            valid[:, s] = below
            above = hit & (inter_hi[:, d] < cur_hi[:, d])
            s = 2 * d + 2
            piece_lo[:, s], piece_hi[:, s] = cur_lo, cur_hi
            piece_lo[above, s, d] = inter_hi[above, d]
            valid[:, s] = above
            cur_lo[hit, d] = inter_lo[hit, d]
            cur_hi[hit, d] = inter_hi[hit, d]
        per_frag = valid.sum(axis=1)
        flat = valid.ravel()
        frag_lo = piece_lo.reshape(-1, ndim)[flat]
        frag_hi = piece_hi.reshape(-1, ndim)[flat]
        gid = np.repeat(gid, per_frag)
        k += 1
    if not done_gid:
        return (
            np.empty((0, width), dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    lo = np.concatenate(done_lo)
    hi = np.concatenate(done_hi)
    gids = np.concatenate(done_gid)
    order = np.argsort(gids, kind="stable")
    return np.concatenate([lo, hi], axis=1)[order], gids[order]


def subtract_corners(base: np.ndarray, holes: np.ndarray) -> np.ndarray:
    """Corner rows of ``union(base) \\ union(holes)`` (``base`` disjoint).

    The hole sweep touches only holes that actually intersect a base row
    (one vectorized candidate pass), so sparse overlap stays cheap even
    for large operands.
    """
    ndim = base.shape[1] // 2
    if base.shape[0] == 0 or holes.shape[0] == 0:
        return base.copy()
    _, bi, hj = pair_intersections(base, holes)
    if bi.size == 0:
        return base.copy()
    untouched = np.setdiff1d(np.arange(base.shape[0]), np.unique(bi))
    out: list[np.ndarray] = [base[untouched]]
    order = np.argsort(bi, kind="stable")
    bi, hj = bi[order], hj[order]
    starts = np.flatnonzero(np.diff(bi, prepend=-1))
    if pair_reuse_mode() == "auto":
        frags, _ = _subtract_groups(
            base[bi[starts]], holes[hj], np.append(starts, bi.size)
        )
        if frags.shape[0]:
            out.append(frags)
        return (
            np.concatenate(out) if out else np.empty((0, 2 * ndim), np.int64)
        )
    for s, e in zip(starts, np.append(starts[1:], bi.size)):
        row = base[bi[s]]
        frags = [Box(tuple(row[:ndim]), tuple(row[ndim:]))]
        for hole_row in holes[hj[s:e]]:
            hole = Box(tuple(hole_row[:ndim]), tuple(hole_row[ndim:]))
            nxt: list[Box] = []
            for frag in frags:
                nxt.extend(frag.subtract(hole))
            frags = nxt
            if not frags:
                break
        if frags:
            out.append(box_corners(frags, ndim))
    return np.concatenate(out) if out else np.empty((0, 2 * ndim), np.int64)


def overlay_corners(
    top: np.ndarray,
    top_ranks: np.ndarray,
    bottom: np.ndarray,
    bottom_ranks: np.ndarray,
    *,
    top_index: PairIndex | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compose two disjoint-box layers; ``top`` wins where both cover.

    Returns corner rows and ranks of the union region: every ``top`` box
    verbatim plus the fragments of ``bottom`` boxes outside ``top``.
    """
    ndim = top.shape[1] // 2
    if bottom.shape[0] == 0:
        return top.copy(), top_ranks.copy()
    if top.shape[0] == 0:
        return bottom.copy(), bottom_ranks.copy()
    out_c: list[np.ndarray] = [top]
    out_r: list[np.ndarray] = [top_ranks]
    _, bi, tj = pair_intersections(bottom, top, b_index=top_index)
    covered = np.unique(bi) if bi.size else np.empty(0, dtype=np.int64)
    clear = np.setdiff1d(np.arange(bottom.shape[0]), covered)
    out_c.append(bottom[clear])
    out_r.append(bottom_ranks[clear])
    if bi.size:
        order = np.argsort(bi, kind="stable")
        bi, tj = bi[order], tj[order]
        starts = np.flatnonzero(np.diff(bi, prepend=-1))
        if pair_reuse_mode() == "auto":
            # Batched path: one vectorized sweep fragments every covered
            # bottom box at once (bit-identical to the per-box loop).
            frags, fgid = _subtract_groups(
                bottom[bi[starts]], top[tj], np.append(starts, bi.size)
            )
            if frags.shape[0]:
                out_c.append(frags)
                out_r.append(bottom_ranks[bi[starts]][fgid])
            return np.concatenate(out_c), np.concatenate(out_r)
        for s, e in zip(starts, np.append(starts[1:], bi.size)):
            frags = subtract_corners(bottom[bi[s]][None, :], top[tj[s:e]])
            if frags.shape[0]:
                out_c.append(frags)
                out_r.append(
                    np.full(frags.shape[0], bottom_ranks[bi[s]], np.int32)
                )
    return np.concatenate(out_c), np.concatenate(out_r)


def prefix_corners(shape: Sequence[int], count: int) -> np.ndarray:
    """The first ``count`` cells of a row-major grid as <= ndim boxes.

    The region ``{cells with flat C-order index < count}`` decomposes into
    at most one box per dimension (full slabs, then partial rows of the
    boundary cell's mixed-radix digits).
    """
    shape = tuple(int(s) for s in shape)
    ndim = len(shape)
    total = int(np.prod(shape, dtype=np.int64))
    count = max(0, min(int(count), total))
    if count == 0:
        return np.empty((0, 2 * ndim), dtype=np.int64)
    if count == total:
        row = [0] * ndim + list(shape)
        return np.asarray([row], dtype=np.int64)
    digits = []
    rem = count
    for s in reversed(shape):
        digits.append(rem % s)
        rem //= s
    digits.reverse()  # mixed-radix representation of `count`
    rows: list[list[int]] = []
    for d in range(ndim):
        if digits[d] == 0:
            continue
        lo = [digits[e] for e in range(d)] + [0] * (ndim - d)
        hi = [digits[e] + 1 for e in range(d)]
        hi.append(digits[d])
        hi.extend(shape[d + 1 :])
        rows.append(lo + hi)
    return np.asarray(rows, dtype=np.int64)


def first_cells_in_scan_order(
    corners: np.ndarray, shape: Sequence[int], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """The first ``k`` cells (row-major) of a region, as corner rows.

    ``corners`` must be internally disjoint.  Binary-searches the flat
    scan index whose prefix contains exactly ``k`` region cells, then
    clips the region against that prefix — the sparse equivalent of
    ``np.flatnonzero(mask)[:k]`` on a raster, without the raster.

    Returns ``(chosen, source)``: the covering corner rows plus, for
    each, the row index of the input box it was cut from (so callers can
    carry per-box payloads such as destination ranks).
    """
    if k <= 0 or corners.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.empty((0, corners.shape[1]), dtype=np.int64), empty
    total = int(corner_volumes(corners).sum())
    if k >= total:
        return corners.copy(), np.arange(corners.shape[0], dtype=np.int64)
    lo_t, hi_t = 0, int(np.prod(tuple(shape), dtype=np.int64))
    while lo_t < hi_t:  # smallest t with |region ∩ prefix(t)| >= k
        mid = (lo_t + hi_t) // 2
        if overlap_volume(corners, prefix_corners(shape, mid)) >= k:
            hi_t = mid
        else:
            lo_t = mid + 1
    chosen, src, _ = pair_intersections(corners, prefix_corners(shape, lo_t))
    return chosen, src


class OwnerMap:
    """One level's distribution as disjoint owned boxes with ranks.

    Parameters
    ----------
    shape :
        Extents of the level's index space (the domain ``[0, shape)``).
    corners :
        ``(nboxes, 2*ndim)`` int64 rows ``[lo..., hi...]``; boxes must be
        non-empty, inside the domain and pairwise disjoint (the latter is
        the caller's responsibility, as with :class:`~repro.geometry.BoxList`;
        :meth:`validate_disjoint` checks it explicitly).
    ranks :
        Owning rank per box (coerced to int32, must be ``>= 0``).
    """

    __slots__ = ("shape", "corners", "ranks", "_pair_index")

    def __init__(
        self,
        shape: Sequence[int],
        corners: np.ndarray,
        ranks: np.ndarray | Sequence[int],
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        ndim = len(self.shape)
        if ndim < 1 or any(s < 1 for s in self.shape):
            raise ValueError(f"owner-map shape must be positive, got {shape}")
        corners = np.ascontiguousarray(corners, dtype=np.int64)
        if corners.ndim != 2 or corners.shape[1] != 2 * ndim:
            raise ValueError(
                f"corners must be (nboxes, {2 * ndim}) for a {ndim}-d map, "
                f"got {corners.shape}"
            )
        ranks = np.ascontiguousarray(ranks, dtype=np.int32)
        if ranks.shape != (corners.shape[0],):
            raise ValueError(
                f"ranks shape {ranks.shape} does not match "
                f"{corners.shape[0]} boxes"
            )
        if corners.shape[0]:
            lo = corners[:, :ndim]
            hi = corners[:, ndim:]
            if (hi <= lo).any():
                raise ValueError("owner-map boxes must be non-empty")
            if (lo < 0).any() or (hi > np.asarray(self.shape)).any():
                raise ValueError("owner-map boxes must lie inside the domain")
            if (ranks < 0).any():
                raise ValueError("owner ranks must be >= 0")
        self.corners = corners
        self.ranks = ranks
        self._pair_index: PairIndex | None = None

    # -- construction ------------------------------------------------------
    @staticmethod
    def empty(shape: Sequence[int]) -> "OwnerMap":
        """A map owning no cells."""
        ndim = len(tuple(shape))
        return OwnerMap(
            shape,
            np.empty((0, 2 * ndim), dtype=np.int64),
            np.empty(0, dtype=np.int32),
        )

    @staticmethod
    def from_assignments(
        assignments: Iterable[tuple[Box, int]], domain: Box
    ) -> "OwnerMap":
        """Build from ``(box, rank)`` pairs over an origin-anchored domain."""
        if any(l != 0 for l in domain.lo):
            raise ValueError("owner-map domains must be anchored at the origin")
        rows: list[tuple[int, ...]] = []
        ranks: list[int] = []
        for box, rank in assignments:
            if rank < 0:
                raise ValueError(f"owner ranks must be >= 0, got {rank}")
            clipped = box.intersect(domain)
            if clipped is None:
                continue
            rows.append(tuple(clipped.lo) + tuple(clipped.hi))
            ranks.append(int(rank))
        return OwnerMap(
            domain.shape,
            np.asarray(rows, dtype=np.int64).reshape(len(rows), 2 * domain.ndim),
            np.asarray(ranks, dtype=np.int32),
        )

    @staticmethod
    def from_raster(raster: np.ndarray) -> "OwnerMap":
        """Decompose a dense owner raster (``NO_OWNER`` background)."""
        boxes, values = boxes_from_labels(raster, background=NO_OWNER)
        return OwnerMap(
            raster.shape,
            box_corners(boxes, raster.ndim),
            np.asarray(values, dtype=np.int32),
        )

    # -- queries -----------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Spatial dimensionality."""
        return len(self.shape)

    @property
    def nboxes(self) -> int:
        """Number of owned boxes."""
        return self.corners.shape[0]

    @property
    def ncells(self) -> int:
        """Total owned cells."""
        return int(corner_volumes(self.corners).sum())

    def boxes(self) -> Iterator[tuple[Box, int]]:
        """Iterate ``(box, rank)`` pairs."""
        ndim = self.ndim
        for row, rank in zip(self.corners, self.ranks):
            yield Box(tuple(row[:ndim]), tuple(row[ndim:])), int(rank)

    def rank_cell_counts(self, nprocs: int) -> np.ndarray:
        """Owned cells per rank (int64, length ``nprocs``)."""
        counts = np.zeros(nprocs, dtype=np.int64)
        if self.nboxes:
            np.add.at(counts, self.ranks, corner_volumes(self.corners))
        return counts

    def pair_index(self) -> PairIndex | None:
        """The persistent candidate index over this map's boxes (lazy).

        Built on first request and cached for the life of the map, so
        every kernel query within a ``measure_step`` shares one index
        per level instead of rebuilding per query.  Returns ``None``
        when the reuse layer is off (``REPRO_PAIR_REUSE=off``), brute
        force is forced, or the map is too small to benefit — callers
        just thread the result through; ``None`` falls back to the
        per-query candidate path.
        """
        if (
            self.nboxes < 2
            or pair_reuse_mode() != "auto"
            or pair_index_mode() == "bruteforce"
        ):
            return None
        if self._pair_index is None or not self._pair_index.indexes(self.corners):
            self._pair_index = PairIndex(self.shape, self.corners)
        return self._pair_index

    def seed_pair_index_from(self, prev: "OwnerMap") -> None:
        """Carry ``prev``'s index to this map via a delta update.

        The simulator calls this on consecutive steps' maps: with the
        paper's incremental regrids most boxes survive, so the new index
        is a cheap renumber-and-merge instead of a full rebuild.  A
        no-op when either side has nothing to offer (no cached index,
        shape mismatch, reuse off).
        """
        if (
            self._pair_index is not None
            or self.nboxes < 2
            or self.shape != prev.shape
            or pair_reuse_mode() != "auto"
            or pair_index_mode() == "bruteforce"
            or prev._pair_index is None
        ):
            return
        self._pair_index = prev._pair_index.updated_to(self.corners)

    def validate_disjoint(self) -> None:
        """Raise ``ValueError`` if any two owned boxes overlap."""
        if self.nboxes < 2:
            return
        _, ii, jj = pair_intersections(self.corners, self.corners)
        if (ii != jj).any():
            a, b = ii[ii != jj][0], jj[ii != jj][0]
            raise ValueError(
                f"overlapping owner boxes: rows {int(a)} and {int(b)}"
            )

    # -- transforms --------------------------------------------------------
    def refine(self, ratio: int) -> "OwnerMap":
        """Map to the index space refined by ``ratio``."""
        if ratio < 1:
            raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
        return OwnerMap(
            tuple(s * ratio for s in self.shape),
            self.corners * ratio,
            self.ranks,
        )

    def rasterize(self) -> np.ndarray:
        """Dense int32 owner raster (``NO_OWNER`` outside owned boxes)."""
        out = np.full(self.shape, NO_OWNER, dtype=np.int32)
        for box, rank in self.boxes():
            paint_box(out, box, rank)
        return out

    # -- comparison --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OwnerMap):
            return NotImplemented
        if self.shape != other.shape:
            return False
        mine = self.ncells
        if mine != other.ncells:
            return False
        # Same cells, same ranks: every owned cell must land in an
        # equal-rank box of the other map (both internally disjoint).
        return (
            matched_volume(self.corners, self.ranks, other.corners, other.ranks)
            == mine
        )

    def __hash__(self) -> int:  # semantic equality forbids structural hash
        return hash((self.shape, self.ncells))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OwnerMap(shape={self.shape}, {self.nboxes} boxes, "
            f"{self.ncells} cells)"
        )
