"""State sampling: traces -> penalty series -> classification trajectories.

This ties the model together: "a model for sampling and translating these
samples of the given application parameters (such as the grid hierarchy)
and system parameters (such as CPU speed and communication bandwidth) into
dimension III of the partitioner-centric classification space"
(contribution 1).  The sampler walks a trace, evaluates the three
penalties ab initio on each (pair of) hierarchy snapshot(s), runs the
dimension-II comparator with the measured invocation intervals, and emits
the continuous classification trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.machine import MachineModel
from ..trace import Trace
from .penalties import (
    communication_penalty,
    dimension1,
    load_imbalance_penalty,
    migration_penalty,
)
from .space import ClassificationPoint, StateTrajectory
from .tradeoff2 import GridSizeTracker, Tradeoff2Model, Tradeoff2Sample

__all__ = ["StateSample", "StateSampler", "PenaltySeries"]


@dataclass(frozen=True, slots=True)
class StateSample:
    """All model outputs for one regrid step."""

    step: int
    beta_l: float
    beta_c: float
    beta_m: float
    tradeoff2: Tradeoff2Sample
    point: ClassificationPoint


@dataclass(frozen=True)
class PenaltySeries:
    """Penalty and coordinate series over a whole trace."""

    steps: np.ndarray
    beta_l: np.ndarray
    beta_c: np.ndarray
    beta_m: np.ndarray
    dim1: np.ndarray
    dim2: np.ndarray
    dim3: np.ndarray


class StateSampler:
    """Evaluates the full model along a trace.

    Parameters
    ----------
    machine :
        System-state component (used to estimate per-step compute time,
        which is what the invocation timer of section 4.3 would measure).
    ghost_width :
        Ghost width used by ``beta_C``.
    tradeoff2 :
        The dimension-II comparator; defaults to the documented completion
        of the paper's open design.
    migration_denominator :
        Denominator convention of ``beta_m`` (ablation knob).
    steps_per_snapshot :
        Coarse steps between regrids (scales the invocation interval).
    """

    def __init__(
        self,
        machine: MachineModel | None = None,
        ghost_width: int = 1,
        tradeoff2: Tradeoff2Model | None = None,
        migration_denominator: str = "current",
        steps_per_snapshot: int = 4,
        nprocs: int = 16,
    ) -> None:
        if steps_per_snapshot < 1:
            raise ValueError("steps_per_snapshot must be >= 1")
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.machine = machine or MachineModel()
        self.ghost_width = ghost_width
        self.tradeoff2 = tradeoff2 or Tradeoff2Model()
        self.migration_denominator = migration_denominator
        self.steps_per_snapshot = steps_per_snapshot
        self.nprocs = nprocs

    def invocation_interval(self, ncells_workload: int) -> float:
        """Modeled time between partitioner invocations.

        The paper proposes measuring this with coarse-grained timer calls
        at each invocation; in a trace replay the interval is the modeled
        compute time of ``steps_per_snapshot`` coarse steps on ``nprocs``
        ranks.
        """
        per_rank = ncells_workload / self.nprocs
        return (
            self.machine.compute_seconds(per_rank) * self.steps_per_snapshot
        )

    def effective_beta_c(self, beta_c: float) -> float:
        """System-weighted communication penalty for the dimension-I mix.

        Dimension I classifies the PAC-triple, not just the application:
        the same grid on a network-starved machine needs communication
        optimization more.  The raw ``beta_C`` (what the figures plot) is
        scaled by the machine's point-transfer-to-point-update cost ratio
        before it is compared against ``beta_L``.
        """
        return min(1.0, beta_c * self.machine.comm_compute_ratio())

    def sample_trace(self, trace: Trace) -> list[StateSample]:
        """Evaluate every snapshot; ``beta_m`` of the first step is 0."""
        tracker = GridSizeTracker()
        samples: list[StateSample] = []
        prev_hierarchy = None
        for snap in trace:
            h = snap.hierarchy
            beta_l = load_imbalance_penalty(h)
            beta_c = communication_penalty(
                h, nprocs=self.nprocs, ghost_width=self.ghost_width
            )
            beta_m = (
                migration_penalty(
                    prev_hierarchy, h, denominator=self.migration_denominator
                )
                if prev_hierarchy is not None
                else 0.0
            )
            norm_size = tracker.observe(h.ncells)
            interval = self.invocation_interval(h.workload)
            t2 = self.tradeoff2.evaluate(
                (beta_l, beta_c, beta_m), h.ncells, norm_size, interval
            )
            point = ClassificationPoint(
                dim1=dimension1(beta_l, self.effective_beta_c(beta_c)),
                dim2=t2.dimension2,
                dim3=beta_m,
            )
            samples.append(
                StateSample(
                    step=snap.step,
                    beta_l=beta_l,
                    beta_c=beta_c,
                    beta_m=beta_m,
                    tradeoff2=t2,
                    point=point,
                )
            )
            prev_hierarchy = h
        return samples

    def trajectory(self, trace: Trace) -> StateTrajectory:
        """The classification curve of a trace."""
        return StateTrajectory([s.point for s in self.sample_trace(trace)])

    def penalty_series(self, trace: Trace) -> PenaltySeries:
        """Array view of the sampled model outputs (for plotting/benches)."""
        samples = self.sample_trace(trace)
        return PenaltySeries(
            steps=np.array([s.step for s in samples], dtype=np.int64),
            beta_l=np.array([s.beta_l for s in samples]),
            beta_c=np.array([s.beta_c for s in samples]),
            beta_m=np.array([s.beta_m for s in samples]),
            dim1=np.array([s.point.dim1 for s in samples]),
            dim2=np.array([s.point.dim2 for s in samples]),
            dim3=np.array([s.point.dim3 for s in samples]),
        )
