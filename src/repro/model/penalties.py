"""The partitioner-centric penalties: ``beta_m``, ``beta_C`` and ``beta_L``.

This module is the paper's primary contribution.

**Dimension III — data-migration penalty** ``beta_m`` (section 4.4)::

    beta_m(H_{t-1}, H_t) = 1 - (1/|H_t|) sum_l sum_i sum_j |G^{l,i}_{t-1} x G^{l,j}_t|

where ``x`` denotes grid intersection, ``G^l_t`` is the patch set of level
``l`` at time ``t`` and ``|H_t|`` the total number of grid points.  Each
pair of time-consecutive hierarchies maps onto a value in ``[0, 1]``,
*independently of any previous mapping* (absolute, not relative) and
*ab initio* — from the unpartitioned hierarchy alone.  A large
intersection means little change (low migration potential); the optimal
amount of data migration is zero.

The denominator choice (``|H_t|``, not ``|H_{t-1}|``) follows the paper's
argument: growing grids migrate much of the small old grid (suggesting the
larger ``|H_t|`` to damp the value), and shrinking grids mostly *delete*
rather than move (again suggesting ``|H_t|``).  The alternative
denominators are provided for the ablation experiment.

**Dimension I inputs** ``beta_C`` and ``beta_L`` are reconstructions of
Part I (LACSI 2003), which is not part of the provided text; Part II
constrains them as follows and the reconstructions below honour every
constraint (see DESIGN.md, substitution table):

* both are ab-initio functions of the unpartitioned hierarchy in [0, 1];
* ``beta_C`` is a *worst-case* communication estimate — "generally a bit
  aggressive, it jumps at potentially communication-heavy grids" and
  upper-bounds what a hybrid partitioner actually produces (section 5.2);
* ``beta_L`` captures the inherent load-imbalance risk that strictly
  domain-based decompositions face on localized, deep refinement
  (section 3.1);
* dimension I compares them scale-invariantly: "beta_L = beta_C = 0.1
  would yield the same result as beta_L = beta_C = 0.4" (section 4.3).

All penalty kernels (``beta_m``'s patch-set intersections, ``beta_C``'s
region surfaces via :func:`~repro.geometry.face_contacts`) run through
the grid-bucket pair index, so evaluating the dynamic state stays
near-linear in the patch count at every scale (``REPRO_PAIR_INDEX``
selects the path).
"""

from __future__ import annotations

import numpy as np

from ..geometry import (
    add_box_overlap,
    box_corners,
    face_contacts,
    intersection_volume,
)
from ..hierarchy import GridHierarchy

__all__ = [
    "migration_penalty",
    "communication_penalty",
    "load_imbalance_penalty",
    "dimension1",
]


def migration_penalty(
    prev: GridHierarchy,
    cur: GridHierarchy,
    denominator: str = "current",
) -> float:
    """``beta_m`` of section 4.4 — the dimension-III coordinate.

    Parameters
    ----------
    prev, cur :
        The hierarchies at time-steps ``t-1`` and ``t``.
    denominator :
        ``"current"`` (``|H_t|``, the paper's choice), ``"previous"``
        (``|H_{t-1}|``) or ``"max"`` — the latter two exist for the
        ablation benchmark.

    Returns
    -------
    float in [0, 1]
        0 for identical hierarchies; 1 when nothing overlaps.
    """
    overlap = 0
    for l in range(min(prev.nlevels, cur.nlevels)):
        overlap += intersection_volume(
            prev.levels[l].patches.boxes, cur.levels[l].patches.boxes
        )
    if denominator == "current":
        denom = cur.ncells
    elif denominator == "previous":
        denom = prev.ncells
    elif denominator == "max":
        denom = max(cur.ncells, prev.ncells)
    else:
        raise ValueError(
            f"denominator must be 'current', 'previous' or 'max', got "
            f"{denominator!r}"
        )
    if denom == 0:
        return 0.0
    value = 1.0 - overlap / denom
    # Float guard only; the set inequality overlap <= denom holds exactly.
    return float(min(1.0, max(0.0, value)))


def communication_penalty(
    hierarchy: GridHierarchy,
    nprocs: int = 16,
    ghost_width: int = 1,
    surface: str = "patch",
    fragmentation: float = 6.0,
) -> float:
    """``beta_C``: worst-case relative communication of the hierarchy.

    The worst-case communication of a coarse step has two sources, both
    computable ab initio from the hierarchy plus the system parameter
    ``nprocs`` (the model samples "application parameters (such as the
    grid hierarchy) and system parameters", contribution 1):

    * every *patch boundary* face may cross ranks (patch-to-patch copies
      are potential communication) — the surface term;
    * a ``P``-way decomposition of a level with ``A_l`` cells must cut it
      somewhere; the isoperimetric bound for compact parts gives an
      internal cut surface of about ``fragmentation * sqrt(P * A_l)``
      faces — the fragmentation term.

    Each potential face communicates ``ghost_width`` cells in both
    directions at every local step; normalizing by the workload (the
    paper's 100 %-communication reference, section 4.1) yields a
    grid-relative value that is superimposed on the measured relative
    communication "without any scaling" (section 5.1.4).  By construction
    the estimate is aggressive — "``beta_C`` reflects a worst-case
    scenario" that a locality-aware hybrid partitioner undercuts
    (section 5.2).

    Parameters
    ----------
    nprocs :
        Processor count of the system state being classified.
    surface :
        ``"patch"`` counts every patch-hull face; ``"region"`` counts only
        the exposed surface of the level's union (ablation knob).
    fragmentation :
        Prefactor of the isoperimetric cut term (0 disables it).
    """
    if ghost_width < 0:
        raise ValueError("ghost_width must be >= 0")
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if fragmentation < 0:
        raise ValueError("fragmentation must be >= 0")
    potential = 0.0
    for level in hierarchy:
        w = level.time_refinement_weight()
        if surface == "patch":
            area = level.patches.surface_cells
        elif surface == "region":
            area = _region_surface(hierarchy, level.index)
        else:
            raise ValueError("surface must be 'patch' or 'region'")
        cut = fragmentation * np.sqrt(nprocs * level.ncells)
        potential += (area + cut) * ghost_width * w
    workload = hierarchy.workload
    if workload == 0:
        return 0.0
    return float(min(1.0, potential / workload))


def _region_surface(hierarchy: GridHierarchy, level_index: int) -> int:
    """Exposed boundary faces of a level's refined-region union.

    Box calculus on the (disjoint) patch set: the sum of per-patch hull
    faces minus twice the abutting contact area between patches — no
    level raster is ever materialized.  Domain-boundary faces count as
    exposed, exactly as in the original mask reduction.
    """
    patches = hierarchy.levels[level_index].patches.boxes
    total = sum(b.surface_cells for b in patches)
    if len(patches) > 1:
        # Abutting contact areas between the (disjoint) patches: give
        # every box a distinct "rank" so the face-contact kernel reports
        # each geometric contact exactly once, vectorized.
        corners = box_corners(patches, hierarchy.ndim)
        _, _, area = face_contacts(
            corners, np.arange(len(patches), dtype=np.int32)
        )
        total -= 2 * int(area.sum())
    return total


def load_imbalance_penalty(hierarchy: GridHierarchy) -> float:
    """``beta_L``: inherent load-imbalance risk of the refinement pattern.

    Strictly domain-based partitioners assign whole base-grid columns, so
    the best achievable balance is bounded by how *localized* the column
    workload is (section 3.1: "a small base-grid, many processors, and
    many levels of refinement cause domain-based techniques to generate
    intractable amounts of load imbalance ... the case improves with
    scattered refinement").  We measure localization as one minus the
    mean-to-max ratio of per-column workloads:

    * uniform refinement -> all columns equal -> ``beta_L = 0``;
    * one deep needle of refinement -> max column dwarfs the mean ->
      ``beta_L -> 1``.
    """
    work = np.zeros(hierarchy.domain.shape, dtype=np.float64)
    for level in hierarchy:
        ratio = hierarchy.cumulative_ratio(level.index)
        w = float(level.time_refinement_weight())
        # Per-patch block overlaps are integer-valued, so the float
        # accumulation is exact — identical to the dense mask block_sum.
        for patch in level.patches:
            add_box_overlap(work, patch, ratio, w)
    peak = work.max()
    if peak == 0:
        return 0.0
    return float(1.0 - work.mean() / peak)


def dimension1(beta_l: float, beta_c: float) -> float:
    """Dimension I coordinate: load balance vs communication.

    Scale-invariant comparison (section 4.3's "disregards the amplitude"):
    0 means communication is the sole concern, 1 means load balance is.
    0.5 when the penalties agree — including the degenerate all-zero case.
    """
    for name, v in (("beta_l", beta_l), ("beta_c", beta_c)):
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {v}")
    total = beta_l + beta_c
    if total == 0.0:
        return 0.5
    return beta_l / total
