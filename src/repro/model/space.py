"""The absolute, continuous partitioner-centric classification space.

Section 4 replaces the octant approach's discrete cube with a space whose
three axes are exactly the three universal partitioning trade-offs:

* **dimension I** — communication versus load balance,
* **dimension II** — speed versus overall quality,
* **dimension III** — data migration.

"A state sampling will generate a mapping onto a point defined in a
continuous coordinate space within the classification space.  The locus of
all such points, as a simulation evolves, will be a curve in the same
space."  The curve enables fine-grained partitioner *configuration*, not
just coarse selection; the octant discretization is retained only as the
ArMADA-style baseline (:meth:`ClassificationPoint.octant`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["ClassificationPoint", "StateTrajectory"]


@dataclass(frozen=True, slots=True)
class ClassificationPoint:
    """One sampled state: a point in ``[0, 1]^3``.

    Attributes
    ----------
    dim1 :
        Load balance (1) versus communication (0) optimization need.
    dim2 :
        Speed (1) versus quality (0) optimization need.
    dim3 :
        Data-migration optimization need (``beta_m``).
    """

    dim1: float
    dim2: float
    dim3: float

    def __post_init__(self) -> None:
        for name in ("dim1", "dim2", "dim3"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")

    def as_array(self) -> np.ndarray:
        """The coordinates as a length-3 float array."""
        return np.array([self.dim1, self.dim2, self.dim3], dtype=np.float64)

    def octant(self, threshold: float = 0.5) -> int:
        """ArMADA-style discretization: the octant index in ``[0, 8)``.

        Bit 0 = dim1 high, bit 1 = dim2 high, bit 2 = dim3 high.  This is
        the coarse classification the continuous space supersedes; kept as
        the comparison baseline (section 3).
        """
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        return (
            (self.dim1 >= threshold)
            + 2 * (self.dim2 >= threshold)
            + 4 * (self.dim3 >= threshold)
        )

    def distance(self, other: "ClassificationPoint") -> float:
        """Euclidean distance in the classification space."""
        return float(np.linalg.norm(self.as_array() - other.as_array()))


class StateTrajectory:
    """The locus of classification points as a simulation evolves.

    Supports the smooth-curve view of section 4: per-dimension series,
    octant transition counting (how jittery the discrete baseline would
    be) and arc length (how dynamic the application state is).
    """

    def __init__(self, points: Sequence[ClassificationPoint] = ()) -> None:
        self._points: list[ClassificationPoint] = list(points)

    def append(self, point: ClassificationPoint) -> None:
        """Extend the trajectory by one sample."""
        self._points.append(point)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ClassificationPoint]:
        return iter(self._points)

    def __getitem__(self, i: int) -> ClassificationPoint:
        return self._points[i]

    def series(self, dim: int) -> np.ndarray:
        """The coordinate series of dimension ``dim`` (1, 2 or 3)."""
        if dim not in (1, 2, 3):
            raise ValueError("dim must be 1, 2 or 3")
        attr = f"dim{dim}"
        return np.array(
            [getattr(p, attr) for p in self._points], dtype=np.float64
        )

    def arc_length(self) -> float:
        """Total path length of the curve in ``[0, 1]^3``."""
        if len(self._points) < 2:
            return 0.0
        coords = np.stack([p.as_array() for p in self._points])
        return float(np.linalg.norm(np.diff(coords, axis=0), axis=1).sum())

    def octant_transitions(self, threshold: float = 0.5) -> int:
        """Number of discrete octant changes along the trajectory."""
        octants = [p.octant(threshold) for p in self._points]
        return sum(a != b for a, b in zip(octants, octants[1:]))
