"""The paper's model: penalties, trade-offs and the classification space."""

from .penalties import (
    communication_penalty,
    dimension1,
    load_imbalance_penalty,
    migration_penalty,
)
from .sampler import PenaltySeries, StateSample, StateSampler
from .space import ClassificationPoint, StateTrajectory
from .tradeoff2 import GridSizeTracker, Tradeoff2Model, Tradeoff2Sample

__all__ = [
    "communication_penalty",
    "dimension1",
    "load_imbalance_penalty",
    "migration_penalty",
    "PenaltySeries",
    "StateSample",
    "StateSampler",
    "ClassificationPoint",
    "StateTrajectory",
    "GridSizeTracker",
    "Tradeoff2Model",
    "Tradeoff2Sample",
]
