"""Trade-off 2: partitioning speed vs. overall quality (dimension II).

Section 4.3 lays out the theory: dimension II compares

1. *how much time the partitioner would like to spend* — quantified as the
   mean of the penalties (``beta_L``, ``beta_C``, ``beta_m``), which
   approaches 1 exactly when optimization need is greatest, **multiplied
   by the normalized grid size** ``|H_t| / max_{s<=t} |H_s|`` (the
   "absolute importance of relative metrics" of section 4.2: a bad
   partition of a tiny grid is not worth partitioner time; the same
   badness at a grid-size peak is); and

2. *what time slot the application can realistically offer* — measured by
   the partitioner calling "a timer to determine the invocation
   intervals": the more infrequently the partitioner is invoked, the
   greater the time slot it can claim.

The paper explicitly leaves the final normalization of (2) and the
comparison of (1) and (2) to "hands-on, practical experimenting"
(section 4.3, last paragraph).  Our concrete completion, documented as a
reproduction decision:

* the offered slot is ``slack * interval`` — a fixed fraction (default
  10 %) of the measured inter-invocation interval is acceptable
  partitioning overhead;
* the requested slot converts (1) from "fraction of maximal desire" to
  seconds by scaling with the cost of the highest-quality partitioner
  configuration on the current hierarchy;
* the dimension-II coordinate is ``requested / (requested + offered)``:
  0 means quality is free (optimize quality), 1 means any time spent
  partitioning is too much (optimize speed), 0.5 the break-even point.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GridSizeTracker", "Tradeoff2Model", "Tradeoff2Sample"]


class GridSizeTracker:
    """Running maximum of hierarchy sizes (section 4.2).

    "Optimally, we would like to normalize the current grid size with
    respect to the largest of all grid hierarchies in the simulation.
    Since this information is unavailable, we propose to normalize the
    current grid size with respect to the largest grid encountered so far."
    """

    def __init__(self) -> None:
        self._max_cells = 0

    @property
    def max_cells(self) -> int:
        """Largest ``|H_s|`` observed so far."""
        return self._max_cells

    def observe(self, ncells: int) -> float:
        """Record ``|H_t|`` and return the normalized size in ``(0, 1]``."""
        if ncells < 0:
            raise ValueError("ncells must be >= 0")
        self._max_cells = max(self._max_cells, ncells)
        if self._max_cells == 0:
            return 0.0
        return ncells / self._max_cells


@dataclass(frozen=True, slots=True)
class Tradeoff2Sample:
    """One dimension-II evaluation with its intermediate quantities."""

    requested_fraction: float
    normalized_grid_size: float
    requested_seconds: float
    offered_seconds: float
    dimension2: float


class Tradeoff2Model:
    """The speed-vs-quality comparator.

    Parameters
    ----------
    slack :
        Fraction of the inter-invocation interval the application can
        afford to spend partitioning.
    quality_cost_per_cell :
        Seconds per hierarchy cell of the *highest-quality* partitioner
        configuration (the price of maximal desire).
    """

    def __init__(
        self, slack: float = 0.1, quality_cost_per_cell: float = 1e-6
    ) -> None:
        if not 0.0 < slack <= 1.0:
            raise ValueError("slack must be in (0, 1]")
        if quality_cost_per_cell <= 0:
            raise ValueError("quality_cost_per_cell must be positive")
        self.slack = slack
        self.quality_cost_per_cell = quality_cost_per_cell

    def evaluate(
        self,
        penalties: tuple[float, float, float],
        ncells: int,
        normalized_grid_size: float,
        invocation_interval_seconds: float,
    ) -> Tradeoff2Sample:
        """Compute the dimension-II coordinate.

        Parameters
        ----------
        penalties :
            ``(beta_L, beta_C, beta_m)`` of the current state.
        ncells :
            ``|H_t|``.
        normalized_grid_size :
            ``|H_t| / max_{s<=t} |H_s|`` from :class:`GridSizeTracker`.
        invocation_interval_seconds :
            Measured time since the previous partitioner invocation.
        """
        for i, p in enumerate(penalties):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"penalty {i} must be in [0, 1], got {p}")
        if not 0.0 <= normalized_grid_size <= 1.0:
            raise ValueError("normalized_grid_size must be in [0, 1]")
        if invocation_interval_seconds < 0:
            raise ValueError("invocation interval must be >= 0")
        requested_fraction = (sum(penalties) / 3.0) * normalized_grid_size
        requested_seconds = (
            requested_fraction * self.quality_cost_per_cell * ncells
        )
        offered_seconds = self.slack * invocation_interval_seconds
        total = requested_seconds + offered_seconds
        dim2 = 0.5 if total == 0 else requested_seconds / total
        return Tradeoff2Sample(
            requested_fraction=requested_fraction,
            normalized_grid_size=normalized_grid_size,
            requested_seconds=requested_seconds,
            offered_seconds=offered_seconds,
            dimension2=dim2,
        )
