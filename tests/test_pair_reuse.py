"""The persistent pair-index reuse layer: delta updates and counters.

The temporal-coherence fast path rests on one invariant: a
:class:`~repro.geometry.PairIndex` that was *delta-updated* from a
previous step's index must answer every query with the same exact pair
set as an index built from scratch — and both must be supersets of the
true overlapping pairs, because downstream kernels do exact arithmetic
on whatever candidates come back.  The property suite drives random
add/remove sequences (1-D through 4-D, including full replacement and
no-op diffs) through :meth:`PairIndex.updated_to` and checks that
invariant against a brute-force reference.

The simulator-facing tests assert the layer actually engages on a paper
trace (``index_reuses``/``delta_updates`` counters move), that
``REPRO_PAIR_REUSE=off`` restores the per-query path, and that both
modes produce identical step metrics with the dense cross-check on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.components import create
from repro.experiments import paper_trace
from repro.geometry import (
    PairIndex,
    pair_counters_scope,
    pair_index_forced,
    pair_reuse_forced,
    pair_reuse_mode,
)
from repro.simulator import TraceSimulator

# ---------------------------------------------------------------------------
# strategies


@st.composite
def corner_arrays(draw, ndim: int, max_boxes: int = 14, max_coord: int = 24):
    """Unique ``(n, 2*ndim)`` corner rows with positive extent per axis."""
    n = draw(st.integers(min_value=0, max_value=max_boxes))
    rows: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for _ in range(n):
        lo = tuple(
            draw(st.integers(min_value=0, max_value=max_coord - 1))
            for _ in range(ndim)
        )
        hi = tuple(
            l + draw(st.integers(min_value=1, max_value=6)) for l in lo
        )
        row = lo + hi
        if row in seen:
            continue
        seen.add(row)
        rows.append(row)
    if not rows:
        return np.empty((0, 2 * ndim), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


@st.composite
def update_sequences(draw, ndim: int):
    """``(old, new)`` corner arrays related by a random add/remove diff.

    Covers the adversarial corners: empty old, empty new, pure removal,
    pure addition, full replacement and the no-op diff (``new`` equal in
    content but a distinct array object).
    """
    old = draw(corner_arrays(ndim))
    keep_mask = draw(
        st.lists(
            st.booleans(), min_size=old.shape[0], max_size=old.shape[0]
        )
    )
    kept = old[np.asarray(keep_mask, dtype=bool)] if old.size else old
    added = draw(corner_arrays(ndim))
    if kept.size and added.size:
        kept_keys = {tuple(r) for r in kept.tolist()}
        fresh = [r for r in added.tolist() if tuple(r) not in kept_keys]
        added = (
            np.asarray(fresh, dtype=np.int64).reshape(-1, 2 * ndim)
            if fresh
            else np.empty((0, 2 * ndim), dtype=np.int64)
        )
    new = np.concatenate([kept, added], axis=0)
    if draw(st.booleans()):
        new = np.asarray(draw(st.permutations(new.tolist())), dtype=np.int64)
        new = new.reshape(-1, 2 * ndim)
    return old, new


def _exact_pairs(a: np.ndarray, b: np.ndarray, closed: bool) -> set:
    """Brute-force reference: all ``(ai, bj)`` whose boxes meet."""
    ndim = a.shape[1] // 2
    out = set()
    for i in range(a.shape[0]):
        for j in range(b.shape[0]):
            lo = np.maximum(a[i, :ndim], b[j, :ndim])
            hi = np.minimum(a[i, ndim:], b[j, ndim:])
            meets = bool((lo <= hi).all()) if closed else bool((lo < hi).all())
            if meets:
                out.add((i, j))
    return out


def _query_pairs(index: PairIndex, q: np.ndarray, closed: bool) -> set | None:
    hit = index.query(q, closed)
    if hit is None:
        return None
    qi, xj = hit
    return set(zip(qi.tolist(), xj.tolist()))


def _filter_exact(
    pairs: set, q: np.ndarray, x: np.ndarray, closed: bool
) -> set:
    """Reduce a candidate superset to the exactly-meeting pairs."""
    ndim = q.shape[1] // 2
    out = set()
    for i, j in pairs:
        lo = np.maximum(q[i, :ndim], x[j, :ndim])
        hi = np.minimum(q[i, ndim:], x[j, ndim:])
        meets = bool((lo <= hi).all()) if closed else bool((lo < hi).all())
        if meets:
            out.add((i, j))
    return out


# ---------------------------------------------------------------------------
# the delta == rebuild property


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
@pytest.mark.parametrize("kind", ["grid", "sweep"])
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_delta_update_matches_fresh_rebuild(ndim, kind, data):
    """A delta-updated index answers like a from-scratch rebuild."""
    old, new = data.draw(update_sequences(ndim))
    q = data.draw(corner_arrays(ndim, max_boxes=8))
    shape = tuple([32] * ndim)
    with pair_index_forced(kind):
        base = PairIndex(shape, old)
        delta = base.updated_to(new)
        fresh = PairIndex(shape, new)
    assert delta.nboxes == new.shape[0]
    assert delta.indexes(new)
    assert not delta.indexes(old) or new is old
    for closed in (False, True):
        want = _exact_pairs(q, new, closed)
        for index in (delta, fresh):
            got = _query_pairs(index, q, closed)
            if got is None:  # probe declined: callers fall back per-query
                continue
            assert got >= want, f"candidates miss exact pairs (closed={closed})"
            assert _filter_exact(got, q, new, closed) == want


@pytest.mark.parametrize("ndim", [1, 2, 3])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_full_replacement_rebuilds(ndim, data):
    """100% churn must fall back to a full rebuild, and still be right."""
    old = data.draw(corner_arrays(ndim, max_boxes=8))
    new = data.draw(corner_arrays(ndim, max_boxes=8))
    if old.size and new.size:
        old_keys = {tuple(r) for r in old.tolist()}
        fresh_rows = [r for r in new.tolist() if tuple(r) not in old_keys]
        new = (
            np.asarray(fresh_rows, dtype=np.int64).reshape(-1, 2 * ndim)
            if fresh_rows
            else np.empty((0, 2 * ndim), dtype=np.int64)
        )
    with pair_index_forced("grid"):
        base = PairIndex(tuple([32] * ndim), old)
        with pair_counters_scope() as counters:
            updated = base.updated_to(new)
    if old.shape[0] and new.shape[0]:
        # zero shared rows => churn above threshold => rebuild, no delta
        assert counters.delta_updates == 0
        assert counters.index_builds >= 1
    q = data.draw(corner_arrays(ndim, max_boxes=6))
    got = _query_pairs(updated, q, False)
    if got is not None:
        want = _exact_pairs(q, new, False)
        assert got >= want
        assert _filter_exact(got, q, new, False) == want


@pytest.mark.parametrize("kind", ["grid", "sweep"])
def test_noop_diff_is_a_delta(kind):
    """Identical content in a new array object takes the delta path."""
    corners = np.asarray(
        [[0, 0, 4, 4], [4, 0, 8, 3], [0, 4, 3, 8], [5, 5, 9, 9]],
        dtype=np.int64,
    )
    with pair_index_forced(kind):
        base = PairIndex((16, 16), corners)
        clone = corners.copy()
        with pair_counters_scope() as counters:
            updated = base.updated_to(clone)
    assert counters.delta_updates == 1
    assert counters.index_builds == 0
    assert updated.indexes(clone) and not updated.indexes(corners)
    q = np.asarray([[1, 1, 6, 6]], dtype=np.int64)
    assert _query_pairs(updated, q, False) == _query_pairs(base, q, False)


def test_chained_delta_updates_stay_correct():
    """Indexes surviving several steps of churn keep answering exactly."""
    rng = np.random.default_rng(7)
    shape = (64, 64)
    corners = np.asarray(
        [[x, y, x + 4, y + 4] for x in range(0, 32, 8) for y in range(0, 32, 8)],
        dtype=np.int64,
    )
    with pair_index_forced("grid"):
        index = PairIndex(shape, corners)
        for step in range(6):
            keep = rng.random(corners.shape[0]) > 0.3
            kept = corners[keep]
            n_add = int(rng.integers(0, 5))
            added = []
            seen = {tuple(r) for r in kept.tolist()}
            while len(added) < n_add:
                x, y = rng.integers(0, 58, size=2)
                row = (int(x), int(y), int(x) + 5, int(y) + 5)
                if row not in seen:
                    seen.add(row)
                    added.append(row)
            corners = np.concatenate(
                [kept, np.asarray(added, dtype=np.int64).reshape(-1, 4)]
            )
            index = index.updated_to(corners)
            assert index.indexes(corners)
            q = np.asarray([[0, 0, 40, 40], [20, 20, 26, 26]], dtype=np.int64)
            got = _query_pairs(index, q, False)
            want = _exact_pairs(q, corners, False)
            assert got is None or (
                got >= want and _filter_exact(got, q, corners, False) == want
            )


# ---------------------------------------------------------------------------
# the batched overlay/subtract engine vs the sequential Box sweep


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_batched_subtract_matches_sequential_sweep(ndim, data):
    """Reuse-on overlay/subtract is bit-identical to the per-box loop.

    Not just the same region: the batched engine must emit the *same
    fragment rows in the same order*, because partitioners consume the
    overlay output structurally.
    """
    from repro.geometry import overlay_corners, subtract_corners
    from strategies import disjoint_boxlists

    top_boxes = data.draw(disjoint_boxlists(max_boxes=6, ndim=ndim))
    bottom_boxes = data.draw(disjoint_boxlists(max_boxes=6, ndim=ndim))
    from repro.geometry import box_corners

    top = box_corners(top_boxes, ndim)
    bottom = box_corners(bottom_boxes, ndim)
    top_ranks = np.arange(top.shape[0], dtype=np.int32) % 3
    bottom_ranks = np.arange(bottom.shape[0], dtype=np.int32) % 3
    with pair_reuse_forced("auto"):
        c_auto, r_auto = overlay_corners(top, top_ranks, bottom, bottom_ranks)
        s_auto = subtract_corners(bottom, top)
    with pair_reuse_forced("off"):
        c_off, r_off = overlay_corners(top, top_ranks, bottom, bottom_ranks)
        s_off = subtract_corners(bottom, top)
    np.testing.assert_array_equal(c_auto, c_off)
    np.testing.assert_array_equal(r_auto, r_off)
    assert r_auto.dtype == r_off.dtype
    np.testing.assert_array_equal(s_auto, s_off)


# ---------------------------------------------------------------------------
# reuse-mode plumbing


def test_reuse_mode_forced_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_PAIR_REUSE", raising=False)
    assert pair_reuse_mode() == "auto"
    monkeypatch.setenv("REPRO_PAIR_REUSE", "off")
    assert pair_reuse_mode() == "off"
    with pair_reuse_forced("auto"):
        assert pair_reuse_mode() == "auto"
    assert pair_reuse_mode() == "off"
    monkeypatch.setenv("REPRO_PAIR_REUSE", "bogus")
    with pytest.raises(ValueError):
        pair_reuse_mode()


def test_reuse_registry_kind():
    from repro.registry import registry

    assert sorted(registry("pair-reuse")) == ["auto", "off"]


def test_owner_map_pair_index_respects_reuse_mode(simple_hierarchy):
    from repro.geometry import OwnerMap

    corners = np.asarray(
        [[0, 0, 8, 8], [8, 0, 16, 8], [0, 8, 16, 16]], dtype=np.int64
    )
    ranks = np.asarray([0, 1, 2], dtype=np.int32)
    m = OwnerMap((16, 16), corners, ranks)
    with pair_index_forced("grid"):
        with pair_reuse_forced("off"):
            assert m.pair_index() is None
        with pair_reuse_forced("auto"):
            index = m.pair_index()
            assert index is not None and index.indexes(m.corners)
            assert m.pair_index() is index  # cached


# ---------------------------------------------------------------------------
# the layer engages on a real trace, without changing a single number


@pytest.fixture(scope="module")
def _small_replay():
    trace = paper_trace("tp2d", "small")
    part = create("partitioner", "nature+fable")
    return trace, part


def test_reuse_engages_on_paper_trace(_small_replay):
    trace, part = _small_replay
    sim = TraceSimulator()
    with pair_index_forced("grid"), pair_reuse_forced("auto"):
        with pair_counters_scope() as counters:
            result_on = sim.run(trace, part, 8)
    assert counters.index_builds > 0
    assert counters.index_reuses > 0, "persistent indexes never reused"
    assert counters.delta_updates > 0, "no step-to-step delta updates"
    with pair_index_forced("grid"), pair_reuse_forced("off"):
        with pair_counters_scope() as off_counters:
            result_off = sim.run(trace, part, 8)
    assert off_counters.index_builds == 0
    assert off_counters.index_reuses == 0
    assert off_counters.delta_updates == 0
    assert len(result_on.steps) == len(result_off.steps)
    for s_on, s_off in zip(result_on.steps, result_off.steps):
        assert s_on == s_off, "reuse layer changed a step metric"


def test_cross_check_passes_with_reuse(_small_replay):
    trace, part = _small_replay
    sim = TraceSimulator(cross_check=True)
    with pair_index_forced("grid"), pair_reuse_forced("auto"):
        result = sim.run(trace, part, 8)
    assert len(result.steps) == len(trace)
