"""Tests for rasterization (masks, owner maps, mask -> boxes recovery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.geometry import (
    NO_OWNER,
    Box,
    boxes_from_mask,
    paint_box,
    rasterize_mask,
    rasterize_owners,
)

from tests.strategies import disjoint_boxlists


class TestPaintBox:
    def test_paint_inside(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        paint_box(arr, Box((1, 1), (3, 3)), 7)
        assert arr.sum() == 7 * 4

    def test_paint_clips_outside(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        paint_box(arr, Box((2, 2), (8, 8)), 1)
        assert arr.sum() == 4  # only the 2x2 corner inside

    def test_paint_fully_outside_noop(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        paint_box(arr, Box((10, 10), (12, 12)), 1)
        assert arr.sum() == 0

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            paint_box(np.zeros((4, 4)), Box((0, 0, 0), (1, 1, 1)), 1)


class TestRasterizeMask:
    def test_counts_match(self):
        domain = Box((0, 0), (8, 8))
        mask = rasterize_mask([Box((0, 0), (2, 2)), Box((4, 4), (6, 6))], domain)
        assert mask.sum() == 8
        assert mask.dtype == bool

    def test_anchoring_enforced(self):
        with pytest.raises(ValueError, match="origin"):
            rasterize_mask([], Box((1, 0), (4, 4)))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            rasterize_mask([], Box((0, 0), (0, 4)))


class TestRasterizeOwners:
    def test_no_owner_default(self):
        domain = Box((0, 0), (4, 4))
        owners = rasterize_owners([], domain)
        assert (owners == NO_OWNER).all()
        assert owners.dtype == np.int32

    def test_assignment(self):
        domain = Box((0, 0), (4, 4))
        owners = rasterize_owners(
            [(Box((0, 0), (2, 4)), 0), (Box((2, 0), (4, 4)), 1)], domain
        )
        assert (owners[:2] == 0).all()
        assert (owners[2:] == 1).all()

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            rasterize_owners([(Box((0, 0), (1, 1)), -2)], Box((0, 0), (4, 4)))


class TestBoxesFromMask:
    def test_single_block(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:5, 3:6] = True
        boxes = boxes_from_mask(mask)
        assert len(boxes) == 1
        assert boxes[0] == Box((2, 3), (5, 6))

    def test_two_components(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:8, 5:8] = True
        boxes = boxes_from_mask(mask)
        assert sum(b.ncells for b in boxes) == 13

    def test_l_shape_exact(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0:4, 0:2] = True
        mask[0:2, 2:5] = True
        boxes = boxes_from_mask(mask)
        recon = rasterize_mask(boxes, Box((0, 0), (6, 6)))
        assert (recon == mask).all()

    def test_empty_mask(self):
        assert boxes_from_mask(np.zeros((4, 4), dtype=bool)) == []

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            boxes_from_mask(np.zeros((2, 2, 2), dtype=bool))

    @given(disjoint_boxlists())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, lst):
        """mask -> boxes -> mask is the identity."""
        domain = Box((0, 0), (24, 24))
        mask = rasterize_mask(lst, domain)
        boxes = boxes_from_mask(mask)
        recon = rasterize_mask(boxes, domain)
        assert (recon == mask).all()
        # Result must be disjoint.
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)
