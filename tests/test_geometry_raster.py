"""Tests for rasterization (masks, owner maps, mask -> boxes recovery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.geometry import (
    NO_OWNER,
    Box,
    block_sum,
    boxes_from_mask,
    paint_box,
    rasterize_mask,
    rasterize_owners,
    upsample,
)

from tests.strategies import disjoint_boxlists


class TestPaintBox:
    def test_paint_inside(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        paint_box(arr, Box((1, 1), (3, 3)), 7)
        assert arr.sum() == 7 * 4

    def test_paint_clips_outside(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        paint_box(arr, Box((2, 2), (8, 8)), 1)
        assert arr.sum() == 4  # only the 2x2 corner inside

    def test_paint_fully_outside_noop(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        paint_box(arr, Box((10, 10), (12, 12)), 1)
        assert arr.sum() == 0

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            paint_box(np.zeros((4, 4)), Box((0, 0, 0), (1, 1, 1)), 1)


class TestRasterizeMask:
    def test_counts_match(self):
        domain = Box((0, 0), (8, 8))
        mask = rasterize_mask([Box((0, 0), (2, 2)), Box((4, 4), (6, 6))], domain)
        assert mask.sum() == 8
        assert mask.dtype == bool

    def test_anchoring_enforced(self):
        with pytest.raises(ValueError, match="origin"):
            rasterize_mask([], Box((1, 0), (4, 4)))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            rasterize_mask([], Box((0, 0), (0, 4)))


class TestRasterizeOwners:
    def test_no_owner_default(self):
        domain = Box((0, 0), (4, 4))
        owners = rasterize_owners([], domain)
        assert (owners == NO_OWNER).all()
        assert owners.dtype == np.int32

    def test_assignment(self):
        domain = Box((0, 0), (4, 4))
        owners = rasterize_owners(
            [(Box((0, 0), (2, 4)), 0), (Box((2, 0), (4, 4)), 1)], domain
        )
        assert (owners[:2] == 0).all()
        assert (owners[2:] == 1).all()

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            rasterize_owners([(Box((0, 0), (1, 1)), -2)], Box((0, 0), (4, 4)))


class TestUpsampleBlockSum:
    @pytest.mark.parametrize("shape", [(4,), (3, 5), (2, 3, 4)])
    def test_upsample_matches_repeat(self, shape):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, size=shape)
        expected = a
        for axis in range(a.ndim):
            expected = np.repeat(expected, 3, axis=axis)
        np.testing.assert_array_equal(upsample(a, 3), expected)

    def test_upsample_identity(self):
        a = np.arange(6).reshape(2, 3)
        assert upsample(a, 1) is a

    def test_upsample_validation(self):
        with pytest.raises(ValueError):
            upsample(np.zeros((2, 2)), 0)

    @pytest.mark.parametrize("shape", [(6,), (4, 6), (4, 2, 6)])
    def test_block_sum_inverts_upsample(self, shape):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 50, size=shape)
        out = block_sum(upsample(a, 2), 2, dtype=np.int64)
        np.testing.assert_array_equal(out, a * 2**a.ndim)

    def test_block_sum_validation(self):
        with pytest.raises(ValueError):
            block_sum(np.zeros((5, 5)), 2)
        with pytest.raises(ValueError):
            block_sum(np.zeros((4, 4)), 0)


class TestBoxesFromMask:
    def test_single_block(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:5, 3:6] = True
        boxes = boxes_from_mask(mask)
        assert len(boxes) == 1
        assert boxes[0] == Box((2, 3), (5, 6))

    def test_two_components(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:8, 5:8] = True
        boxes = boxes_from_mask(mask)
        assert sum(b.ncells for b in boxes) == 13

    def test_l_shape_exact(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0:4, 0:2] = True
        mask[0:2, 2:5] = True
        boxes = boxes_from_mask(mask)
        recon = rasterize_mask(boxes, Box((0, 0), (6, 6)))
        assert (recon == mask).all()

    def test_empty_mask(self):
        assert boxes_from_mask(np.zeros((4, 4), dtype=bool)) == []

    def test_1d_runs(self):
        mask = np.array([0, 1, 1, 0, 1, 0, 1, 1], dtype=bool)
        boxes = boxes_from_mask(mask)
        assert boxes == [Box((1,), (3,)), Box((4,), (5,)), Box((6,), (8,))]

    def test_3d_block(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[1:4, 2:5, 0:3] = True
        boxes = boxes_from_mask(mask)
        assert boxes == [Box((1, 2, 0), (4, 5, 3))]

    def test_deterministic_order(self):
        """Repeated decompositions of the same mask are identical lists."""
        rng = np.random.default_rng(7)
        mask = rng.random((12, 12)) > 0.55
        first = boxes_from_mask(mask)
        for _ in range(3):
            assert boxes_from_mask(mask.copy()) == first

    @given(disjoint_boxlists())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, lst):
        """mask -> boxes -> mask is the identity."""
        domain = Box((0, 0), (24, 24))
        mask = rasterize_mask(lst, domain)
        boxes = boxes_from_mask(mask)
        recon = rasterize_mask(boxes, domain)
        assert (recon == mask).all()
        # Result must be disjoint.
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)

    @given(disjoint_boxlists(max_boxes=4, max_coord=10, ndim=3))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_3d(self, lst):
        """3-D mask -> boxes -> mask is the identity and disjoint."""
        domain = Box((0, 0, 0), (10, 10, 10))
        mask = rasterize_mask(lst, domain)
        boxes = boxes_from_mask(mask)
        recon = rasterize_mask(boxes, domain)
        assert (recon == mask).all()
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)
