"""Tests for BoxList and the intersection-volume kernel behind beta_m."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.geometry import (
    Box,
    BoxList,
    coalesce_boxes,
    intersection_volume,
    subtract_boxes,
    union_ncells,
)

from tests.strategies import disjoint_boxlists


class TestIntersectionVolume:
    def test_identical_lists(self):
        boxes = [Box((0, 0), (4, 4)), Box((5, 5), (8, 8))]
        assert intersection_volume(boxes, boxes) == 16 + 9

    def test_disjoint_lists(self):
        assert intersection_volume([Box((0, 0), (2, 2))], [Box((4, 4), (6, 6))]) == 0

    def test_partial_overlap(self):
        a = [Box((0, 0), (4, 4))]
        b = [Box((2, 2), (6, 6))]
        assert intersection_volume(a, b) == 4

    def test_empty_inputs(self):
        assert intersection_volume([], [Box((0, 0), (1, 1))]) == 0
        assert intersection_volume([Box((0, 0), (1, 1))], []) == 0

    def test_cross_terms_sum(self):
        # Two disjoint pieces of A both overlapping one B box.
        a = [Box((0, 0), (2, 4)), Box((2, 0), (4, 4))]
        b = [Box((1, 1), (3, 3))]
        assert intersection_volume(a, b) == 4

    @given(disjoint_boxlists(), disjoint_boxlists())
    @settings(max_examples=100, deadline=None)
    def test_matches_bruteforce_union(self, la, lb):
        """For disjoint sets, sum_ij |a_i ∩ b_j| == |union(a) ∩ union(b)|."""
        expected = 0
        for a in la:
            for b in lb:
                expected += a.intersection_ncells(b)
        assert intersection_volume(la.boxes, lb.boxes) == expected

    @given(disjoint_boxlists())
    @settings(max_examples=60, deadline=None)
    def test_self_intersection_is_size(self, lst):
        assert intersection_volume(lst.boxes, lst.boxes) == lst.ncells


class TestUnionSubtract:
    def test_union_with_overlaps(self):
        boxes = [Box((0, 0), (4, 4)), Box((2, 2), (6, 6))]
        assert union_ncells(boxes) == 16 + 16 - 4

    def test_union_disjoint(self):
        assert union_ncells([Box((0, 0), (2, 2)), Box((3, 3), (5, 5))]) == 8

    def test_subtract_boxes(self):
        base = [Box((0, 0), (4, 4))]
        holes = [Box((0, 0), (2, 2)), Box((2, 2), (4, 4))]
        frags = subtract_boxes(base, holes)
        assert sum(f.ncells for f in frags) == 8

    def test_coalesce_merges_strips(self):
        strips = [Box((0, i), (4, i + 1)) for i in range(4)]
        merged = coalesce_boxes(strips)
        assert len(merged) == 1
        assert merged[0] == Box((0, 0), (4, 4))

    def test_coalesce_preserves_cells(self):
        boxes = [Box((0, 0), (2, 2)), Box((2, 0), (4, 2)), Box((0, 3), (1, 5))]
        merged = coalesce_boxes(boxes)
        assert sum(b.ncells for b in merged) == sum(b.ncells for b in boxes)
        assert len(merged) == 2


class TestBoxList:
    def test_filters_empty(self):
        lst = BoxList([Box((0, 0), (0, 4)), Box((0, 0), (2, 2))])
        assert len(lst) == 1

    def test_ncells_and_surface(self):
        lst = BoxList([Box((0, 0), (2, 2)), Box((4, 4), (6, 6))])
        assert lst.ncells == 8
        assert lst.surface_cells == 16

    def test_validate_disjoint_raises(self):
        lst = BoxList([Box((0, 0), (4, 4)), Box((2, 2), (6, 6))])
        with pytest.raises(ValueError, match="overlapping"):
            lst.validate_disjoint()

    def test_validate_disjoint_ok(self):
        BoxList([Box((0, 0), (2, 2)), Box((2, 0), (4, 2))]).validate_disjoint()

    def test_contains_point(self):
        lst = BoxList([Box((0, 0), (2, 2)), Box((4, 4), (6, 6))])
        assert lst.contains_point((5, 5))
        assert not lst.contains_point((3, 3))

    def test_intersect_box_clips(self):
        lst = BoxList([Box((0, 0), (4, 4)), Box((6, 6), (8, 8))])
        clipped = lst.intersect_box(Box((2, 2), (7, 7)))
        assert clipped.ncells == 4 + 1

    def test_subtract(self):
        lst = BoxList([Box((0, 0), (4, 4))])
        out = lst.subtract([Box((1, 1), (3, 3))])
        assert out.ncells == 12

    def test_refine_coarsen(self):
        lst = BoxList([Box((1, 1), (3, 3))])
        assert lst.refine(2).ncells == 16
        assert lst.coarsen(2).boxes[0] == Box((0, 0), (2, 2))

    def test_disjointified(self):
        lst = BoxList([Box((0, 0), (4, 4)), Box((2, 2), (6, 6))])
        dj = lst.disjointified()
        dj.validate_disjoint()
        assert dj.ncells == 28

    def test_bounding_box(self):
        lst = BoxList([Box((1, 1), (2, 2)), Box((5, 0), (6, 3))])
        assert lst.bounding_box() == Box((1, 0), (6, 3))

    def test_json_roundtrip(self):
        lst = BoxList([Box((0, 0), (2, 2)), Box((4, 4), (6, 6))])
        assert BoxList.from_json(lst.to_json()) == lst

    def test_equality_and_hash(self):
        a = BoxList([Box((0, 0), (2, 2))])
        b = BoxList([Box((0, 0), (2, 2))])
        assert a == b
        assert hash(a) == hash(b)

    @given(disjoint_boxlists())
    @settings(max_examples=60, deadline=None)
    def test_disjointified_idempotent(self, lst):
        dj = lst.disjointified()
        assert dj.ncells == lst.ncells
        dj.validate_disjoint()

    @given(disjoint_boxlists())
    @settings(max_examples=60, deadline=None)
    def test_coalesced_preserves_cells(self, lst):
        co = lst.coalesced()
        assert co.ncells == lst.ncells
        co.validate_disjoint()
