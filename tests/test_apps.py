"""Tests for the four application kernels and the trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    APPLICATIONS,
    BuckleyLeverett2D,
    RichtmyerMeshkov2D,
    ScalarWave2D,
    TraceGenConfig,
    Transport2D,
    Transport3D,
    build_hierarchy,
    fractional_flow,
    generate_trace,
    make_application,
)
from repro.clustering import gradient_indicator
from repro.experiments import workload_ndim


ALL_APPS = sorted(APPLICATIONS)

#: the kernels covered by the 2-D ``small_traces`` session fixture
TRACED_APPS = [name for name in ALL_APPS if workload_ndim(name) == 2]


def app_shape(name: str, side: int) -> tuple[int, ...]:
    """A cubic shadow-grid shape of the kernel's dimensionality."""
    return (side,) * workload_ndim(name)


class TestRegistry:
    def test_kernels(self):
        assert set(APPLICATIONS) == {
            "tp2d", "bl2d", "sc2d", "rm2d", "tp3d", "bl3d", "sc3d", "rm3d"
        }

    def test_make_application(self):
        app = make_application("tp2d", shape=(32, 32))
        assert isinstance(app, Transport2D)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown application"):
            make_application("nope")


class TestTraceGenConfig:
    def test_level_shape(self):
        cfg = TraceGenConfig(base_shape=(16, 16), refine_ratio=2)
        assert cfg.level_shape(0) == (16, 16)
        assert cfg.level_shape(3) == (128, 128)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_levels": 0},
            {"refine_ratio": 1},
            {"nsteps": 0},
            {"regrid_interval": 0},
            {"flag_threshold": 0.0},
            {"threshold_growth": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TraceGenConfig(**kwargs)

    def test_small_variant(self):
        small = TraceGenConfig().small()
        assert small.max_levels <= 3


@pytest.mark.parametrize("name", ALL_APPS)
class TestKernelBasics:
    def test_advance_progresses_time(self, name):
        app = make_application(name, shape=app_shape(name, 32))
        t0 = app.time
        app.advance()
        assert app.time > t0

    def test_field_shape_and_finite(self, name):
        shape = app_shape(name, 32)
        app = make_application(name, shape=shape)
        for _ in range(3):
            app.advance()
        field = app.indicator_field()
        assert field.shape == shape
        assert np.isfinite(field).all()

    def test_deterministic(self, name):
        shape = app_shape(name, 32)
        a = make_application(name, shape=shape)
        b = make_application(name, shape=shape)
        for _ in range(2):
            a.advance()
            b.advance()
        np.testing.assert_array_equal(a.indicator_field(), b.indicator_field())

    def test_field_changes(self, name):
        app = make_application(name, shape=app_shape(name, 32))
        before = app.indicator_field().copy()
        for _ in range(4):
            app.advance()
        assert not np.array_equal(before, app.indicator_field())

    def test_too_small_grid_rejected(self, name):
        with pytest.raises(ValueError):
            make_application(name, shape=app_shape(name, 4))


class TestPhysics:
    def test_bl2d_saturation_bounds(self):
        app = BuckleyLeverett2D(shape=(32, 32))
        for _ in range(10):
            app.advance()
        s = app.indicator_field()
        assert s.min() >= 0.0 and s.max() <= 1.0

    def test_bl2d_front_advances(self):
        app = BuckleyLeverett2D(shape=(64, 64))
        initial = app.indicator_field().sum()
        for _ in range(10):
            app.advance()
        assert app.indicator_field().sum() > initial  # injection adds water

    def test_fractional_flow_endpoints(self):
        s = np.array([0.0, 1.0])
        f = fractional_flow(s, 2.0)
        np.testing.assert_allclose(f, [0.0, 1.0])

    def test_fractional_flow_monotone(self):
        s = np.linspace(0, 1, 50)
        f = fractional_flow(s, 2.0)
        assert (np.diff(f) >= -1e-12).all()

    def test_fractional_flow_clips(self):
        f = fractional_flow(np.array([-0.5, 1.5]), 2.0)
        np.testing.assert_allclose(f, [0.0, 1.0])

    def test_sc2d_source_pulses(self):
        app = ScalarWave2D(shape=(32, 32), pulse_period=0.4, pulse_width=0.03)
        amp_peak = app.source_amplitude(3.0 * 0.03)
        amp_quiet = app.source_amplitude(0.25)
        assert amp_peak > 0.9
        assert amp_quiet < 0.1

    def test_sc2d_wave_expands(self):
        app = ScalarWave2D(shape=(64, 64))
        for _ in range(6):
            app.advance()
        u = np.abs(app.indicator_field())
        centre = u[28:36, 28:36].max()
        assert centre > 0  # wave emitted

    def test_rm2d_density_positive(self):
        app = RichtmyerMeshkov2D(shape=(32, 32))
        for _ in range(5):
            app.advance()
        assert app.indicator_field().min() > 0

    def test_rm2d_mass_conserved(self):
        """Reflective walls: total mass is conserved by the FV scheme."""
        app = RichtmyerMeshkov2D(shape=(32, 32))
        m0 = app.indicator_field().sum()
        for _ in range(5):
            app.advance()
        assert app.indicator_field().sum() == pytest.approx(m0, rel=1e-10)

    def test_rm2d_atwood_validation(self):
        with pytest.raises(ValueError):
            RichtmyerMeshkov2D(atwood=1.5)

    def test_tp2d_gust_range(self):
        app = Transport2D(shape=(32, 32))
        gusts = [app._gust(t) for t in np.linspace(0, 5, 200)]
        assert min(gusts) >= 0.2 and max(gusts) <= 1.8

    def test_tp2d_mass_roughly_conserved(self):
        """Semi-Lagrangian advection approximately conserves the pulse mass."""
        app = Transport2D(shape=(64, 64))
        m0 = app.indicator_field().sum()
        for _ in range(10):
            app.advance()
        assert app.indicator_field().sum() == pytest.approx(m0, rel=0.1)

    def test_tp3d_mass_roughly_conserved(self):
        app = Transport3D(shape=(32, 32, 32))
        m0 = app.indicator_field().sum()
        for _ in range(10):
            app.advance()
        assert app.indicator_field().sum() == pytest.approx(m0, rel=0.1)

    def test_tp3d_blobs_move_in_all_dimensions(self):
        """The vertical shear must push features through the third axis."""
        app = Transport3D(shape=(32, 32, 32))
        profile0 = app.indicator_field().sum(axis=(0, 1))
        for _ in range(8):
            app.advance()
        profile1 = app.indicator_field().sum(axis=(0, 1))
        assert not np.allclose(profile0, profile1, rtol=1e-3)

    def test_tp3d_rejects_2d_shape(self):
        with pytest.raises(ValueError):
            Transport3D(shape=(32, 32))


class TestBuildHierarchy:
    def test_flat_indicator_gives_base_only(self):
        cfg = TraceGenConfig(base_shape=(16, 16), max_levels=3)
        h = build_hierarchy(np.zeros((64, 64)), cfg)
        assert h.nlevels == 1

    def test_peak_is_refined_to_max_depth(self):
        cfg = TraceGenConfig(base_shape=(16, 16), max_levels=3)
        ind = np.zeros((64, 64))
        ind[30:34, 30:34] = 1.0
        h = build_hierarchy(ind, cfg)
        assert h.nlevels == 3
        h.validate()

    def test_nesting_always_holds(self):
        rng = np.random.default_rng(5)
        cfg = TraceGenConfig(base_shape=(16, 16), max_levels=3)
        for _ in range(5):
            field = rng.random((64, 64))
            for _ in range(3):  # smooth
                field = 0.25 * (
                    np.roll(field, 1, 0)
                    + np.roll(field, -1, 0)
                    + np.roll(field, 1, 1)
                    + np.roll(field, -1, 1)
                )
            ind = gradient_indicator(field)
            h = build_hierarchy(ind, cfg)
            h.validate()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            build_hierarchy(np.zeros(16), TraceGenConfig())

    @pytest.mark.parametrize("ndim,factor", [(2, 1), (2, 2), (2, 4), (3, 2)])
    def test_windowed_equals_full_domain_reference(self, ndim, factor):
        # build_hierarchy windows all per-level arrays to the refined
        # parent's buffered bounding box; this must be *exactly* the
        # hierarchy the straightforward full-domain arrays produce.
        from repro.clustering import buffer_flags, cluster_flags
        from repro.apps.base import _resample
        from repro.geometry import Box, BoxList, rasterize_mask
        from repro.hierarchy import GridHierarchy, PatchLevel

        def reference(indicator, config):
            domain = Box((0,) * config.ndim, config.base_shape)
            levels = [PatchLevel(0, [domain], ratio=1)]
            parents = BoxList([domain])
            for l in range(1, config.max_levels):
                shape = config.level_shape(l)
                tau = min(
                    0.95,
                    config.flag_threshold
                    * config.threshold_growth ** (l - 1),
                )
                flags = _resample(indicator > tau, shape, reduce="any")
                if config.buffer_width:
                    width = (
                        config.buffer_width
                        * config.refine_ratio ** (l - 1)
                    )
                    flags = buffer_flags(flags, width)
                refined = parents.refine(config.refine_ratio)
                flags &= rasterize_mask(
                    refined, Box((0,) * config.ndim, shape)
                )
                if not flags.any():
                    break
                clipped = [
                    piece
                    for box in cluster_flags(flags, config.cluster)
                    for parent in refined
                    if (piece := box.intersect(parent)) is not None
                ]
                patches = BoxList(clipped).disjointified().coalesced()
                if patches.ncells == 0:
                    break
                levels.append(
                    PatchLevel(l, patches, ratio=config.refine_ratio)
                )
                parents = patches
            return GridHierarchy(domain, levels)

        rng = np.random.default_rng(ndim * 10 + factor)
        base = (16,) * ndim if ndim == 2 else (8,) * ndim
        cfg = TraceGenConfig(base_shape=base, max_levels=4)
        for trial in range(4):
            ind = rng.random(tuple(factor * s for s in base)) ** 3
            got = build_hierarchy(ind, cfg)
            ref = reference(ind, cfg)
            assert got.nlevels == ref.nlevels
            for a, b in zip(got, ref):
                assert sorted(
                    (x.lo, x.hi) for x in a.patches
                ) == sorted((x.lo, x.hi) for x in b.patches)


class TestGenerateTrace:
    def test_snapshot_schedule(self, small_traces):
        tr = small_traces["tp2d"]
        assert [s.step for s in tr] == [0, 4, 8, 12]

    @pytest.mark.parametrize("name", TRACED_APPS)
    def test_all_hierarchies_valid(self, small_traces, name):
        for snap in small_traces[name]:
            snap.hierarchy.validate()

    @pytest.mark.parametrize("name", TRACED_APPS)
    def test_metadata_recorded(self, small_traces, name):
        md = small_traces[name].metadata
        assert md["max_levels"] == 3
        assert md["regrid_interval"] == 4

    def test_trace_name_matches_app(self, small_traces):
        for name, tr in small_traces.items():
            assert tr.name == name

    def test_deterministic_regeneration(self, small_config):
        a = generate_trace(make_application("bl2d", shape=(64, 64)), small_config)
        b = generate_trace(make_application("bl2d", shape=(64, 64)), small_config)
        assert [s.hierarchy for s in a] == [s.hierarchy for s in b]
