"""Shared fixtures: small deterministic hierarchies, traces and partitions."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps import APPLICATIONS, TraceGenConfig, generate_trace, make_application
from repro.experiments import workload_ndim
from repro.geometry import Box
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.trace import Trace


SMALL_CONFIG = TraceGenConfig(
    base_shape=(16, 16), max_levels=3, nsteps=12, regrid_interval=4
)


@pytest.fixture(scope="session", autouse=True)
def isolated_result_store(tmp_path_factory):
    """Point the engine's content-addressed store at a throwaway directory.

    Keeps the tier-1 suite hermetic: tests neither read a developer's
    warm ``~/.cache/repro`` nor leave artifacts behind.
    """
    root = tmp_path_factory.mktemp("repro-store")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    # Telemetry stays off unless a test opts in: a developer's exported
    # REPRO_TELEMETRY must not leak event logs into every test store.
    previous_telemetry = os.environ.pop("REPRO_TELEMETRY", None)
    yield root
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    if previous_telemetry is not None:
        os.environ["REPRO_TELEMETRY"] = previous_telemetry


@pytest.fixture(scope="session")
def small_config() -> TraceGenConfig:
    """Cheap trace-generation setup for unit tests."""
    return SMALL_CONFIG


@pytest.fixture(scope="session")
def small_traces(small_config) -> dict[str, Trace]:
    """One small trace per 2-D application kernel (generated once per session)."""
    return {
        name: generate_trace(make_application(name, shape=(64, 64)), small_config)
        for name in sorted(APPLICATIONS)
        if workload_ndim(name) == 2
    }


@pytest.fixture()
def simple_hierarchy() -> GridHierarchy:
    """A 3-level hand-built hierarchy with known cell counts.

    Level 0: 16x16 = 256 cells.
    Level 1: one 16x8 patch (128 cells) in the 32x32 index space.
    Level 2: one 8x8 patch (64 cells) in the 64x64 index space.
    """
    domain = Box((0, 0), (16, 16))
    return GridHierarchy(
        domain,
        [
            PatchLevel(0, [domain], ratio=1),
            PatchLevel(1, [Box((8, 8), (24, 16))], ratio=2),
            PatchLevel(2, [Box((20, 18), (28, 26))], ratio=2),
        ],
    )


@pytest.fixture()
def flat_hierarchy() -> GridHierarchy:
    """A base-grid-only hierarchy."""
    return GridHierarchy.base_only(Box((0, 0), (16, 16)))


@pytest.fixture()
def shifted_hierarchy(simple_hierarchy) -> GridHierarchy:
    """``simple_hierarchy`` with every refined patch shifted by 2 cells."""
    domain = simple_hierarchy.domain
    return GridHierarchy(
        domain,
        [
            PatchLevel(0, [domain], ratio=1),
            PatchLevel(1, [Box((10, 8), (26, 16))], ratio=2),
            PatchLevel(2, [Box((24, 18), (32, 26))], ratio=2),
        ],
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session RNG for randomized (but seeded) inputs."""
    return np.random.default_rng(20260612)
