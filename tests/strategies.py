"""Shared hypothesis strategies for the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.geometry import Box, BoxList


def boxes_nd(ndim: int = 2, max_coord: int = 32, allow_empty: bool = False):
    """Strategy for ``ndim``-dimensional boxes within ``[0, max_coord)**ndim``."""
    if ndim < 1:
        raise ValueError("ndim must be >= 1")

    coord = st.integers(min_value=0, max_value=max_coord)
    pair = st.tuples(coord, coord)

    def make(pairs):
        lo = tuple(min(a, b) for a, b in pairs)
        hi = tuple(max(a, b) for a, b in pairs)
        return Box(lo, hi)

    strat = st.builds(make, st.tuples(*([pair] * ndim)))
    if not allow_empty:
        strat = strat.filter(lambda b: not b.empty)
    return strat


def boxes_2d(max_coord: int = 32, allow_empty: bool = False):
    """Strategy for 2-d boxes within ``[0, max_coord)^2``."""
    return boxes_nd(2, max_coord=max_coord, allow_empty=allow_empty)


def disjoint_boxlists(max_boxes: int = 6, max_coord: int = 24, ndim: int = 2):
    """Strategy for internally-disjoint box sets (subtract as we build)."""

    @st.composite
    def build(draw):
        raw = draw(
            st.lists(
                boxes_nd(ndim, max_coord=max_coord), max_size=max_boxes
            )
        )
        out: list[Box] = []
        for b in raw:
            frags = [b]
            for prior in out:
                nxt = []
                for f in frags:
                    nxt.extend(f.subtract(prior))
                frags = nxt
            out.extend(frags)
        return BoxList(out)

    return build()
