"""Shared hypothesis strategies for the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.geometry import Box, BoxList


def boxes_2d(max_coord: int = 32, allow_empty: bool = False):
    """Strategy for 2-d boxes within ``[0, max_coord)^2``."""

    def make(x0, x1, y0, y1):
        lo = (min(x0, x1), min(y0, y1))
        hi = (max(x0, x1), max(y0, y1))
        return Box(lo, hi)

    coord = st.integers(min_value=0, max_value=max_coord)
    strat = st.builds(make, coord, coord, coord, coord)
    if not allow_empty:
        strat = strat.filter(lambda b: not b.empty)
    return strat


def disjoint_boxlists(max_boxes: int = 6, max_coord: int = 24):
    """Strategy for internally-disjoint box sets (subtract as we build)."""

    @st.composite
    def build(draw):
        raw = draw(st.lists(boxes_2d(max_coord=max_coord), max_size=max_boxes))
        out: list[Box] = []
        for b in raw:
            frags = [b]
            for prior in out:
                nxt = []
                for f in frags:
                    nxt.extend(f.subtract(prior))
                frags = nxt
            out.extend(frags)
        return BoxList(out)

    return build()
