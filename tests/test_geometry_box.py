"""Unit and property tests for the integer box calculus."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, bounding_box

from tests.strategies import boxes_2d


# ---------------------------------------------------------------------------
# Construction and basic queries
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_shape_and_ncells(self):
        b = Box((1, 2), (4, 7))
        assert b.shape == (3, 5)
        assert b.ncells == 15
        assert not b.empty

    def test_empty_box(self):
        b = Box((3, 3), (3, 8))
        assert b.empty
        assert b.ncells == 0

    def test_inverted_raises(self):
        with pytest.raises(ValueError, match="inverted"):
            Box((5, 0), (3, 2))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            Box((0, 0), (1, 1, 1))

    def test_zero_dim_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            Box((), ())

    def test_3d_box(self):
        b = Box((0, 0, 0), (2, 3, 4))
        assert b.ndim == 3
        assert b.ncells == 24

    def test_hashable_and_equal(self):
        assert Box((0, 0), (2, 2)) == Box((0, 0), (2, 2))
        assert hash(Box((0, 0), (2, 2))) == hash(Box((0, 0), (2, 2)))
        assert Box((0, 0), (2, 2)) != Box((0, 0), (2, 3))

    def test_surface_cells_square(self):
        assert Box((0, 0), (4, 4)).surface_cells == 16

    def test_surface_cells_3d(self):
        # 2*(3*4 + 2*4 + 2*3) = 52
        assert Box((0, 0, 0), (2, 3, 4)).surface_cells == 52

    def test_surface_cells_empty(self):
        assert Box((0, 0), (0, 5)).surface_cells == 0


class TestContainment:
    def test_contains_point(self):
        b = Box((1, 1), (4, 4))
        assert b.contains_point((1, 1))
        assert b.contains_point((3, 3))
        assert not b.contains_point((4, 4))  # half-open
        assert not b.contains_point((0, 2))

    def test_contains_point_dim_mismatch(self):
        with pytest.raises(ValueError):
            Box((0, 0), (2, 2)).contains_point((1,))

    def test_contains_box(self):
        outer = Box((0, 0), (10, 10))
        assert outer.contains_box(Box((2, 2), (5, 5)))
        assert outer.contains_box(outer)
        assert not outer.contains_box(Box((5, 5), (11, 8)))

    def test_empty_contained_everywhere(self):
        assert Box((3, 3), (4, 4)).contains_box(Box((0, 0), (0, 0)))


# ---------------------------------------------------------------------------
# Intersection / subtraction
# ---------------------------------------------------------------------------
class TestIntersection:
    def test_basic(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 2), (6, 6))
        assert a.intersect(b) == Box((2, 2), (4, 4))
        assert a.intersection_ncells(b) == 4

    def test_disjoint(self):
        a = Box((0, 0), (2, 2))
        b = Box((2, 0), (4, 2))  # abutting, half-open => disjoint
        assert a.intersect(b) is None
        assert not a.intersects(b)
        assert a.intersection_ncells(b) == 0

    def test_self_intersection(self):
        a = Box((1, 1), (5, 5))
        assert a.intersect(a) == a

    @given(boxes_2d(), boxes_2d())
    def test_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)
        assert a.intersection_ncells(b) == b.intersection_ncells(a)

    @given(boxes_2d(), boxes_2d())
    def test_intersection_contained(self, a, b):
        c = a.intersect(b)
        if c is not None:
            assert a.contains_box(c)
            assert b.contains_box(c)
            assert c.ncells == a.intersection_ncells(b)


class TestSubtraction:
    def test_hole_in_middle(self):
        outer = Box((0, 0), (6, 6))
        hole = Box((2, 2), (4, 4))
        pieces = outer.subtract(hole)
        assert sum(p.ncells for p in pieces) == 36 - 4
        for p in pieces:
            assert not p.intersects(hole)

    def test_disjoint_returns_self(self):
        a = Box((0, 0), (2, 2))
        assert a.subtract(Box((5, 5), (6, 6))) == [a]

    def test_full_cover_returns_empty(self):
        a = Box((1, 1), (3, 3))
        assert a.subtract(Box((0, 0), (5, 5))) == []

    @given(boxes_2d(), boxes_2d())
    @settings(max_examples=200)
    def test_subtract_partition_property(self, a, b):
        """a = (a \\ b) + (a ∩ b), all pieces disjoint."""
        pieces = a.subtract(b)
        inter = a.intersect(b)
        total = sum(p.ncells for p in pieces) + (inter.ncells if inter else 0)
        assert total == a.ncells
        for i, p in enumerate(pieces):
            assert a.contains_box(p)
            assert not p.intersects(b)
            for q in pieces[i + 1 :]:
                assert not p.intersects(q)


# ---------------------------------------------------------------------------
# Refinement maps
# ---------------------------------------------------------------------------
class TestRefineCoarsen:
    def test_refine(self):
        assert Box((1, 2), (3, 4)).refine(2) == Box((2, 4), (6, 8))

    def test_coarsen_rounds_outward(self):
        assert Box((1, 3), (5, 6)).coarsen(2) == Box((0, 1), (3, 3))

    def test_refine_invalid_ratio(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1)).refine(0)

    @given(boxes_2d(), st.integers(min_value=1, max_value=4))
    def test_coarsen_refine_covers(self, b, r):
        assert b.coarsen(r).refine(r).contains_box(b)

    @given(boxes_2d(), st.integers(min_value=1, max_value=4))
    def test_refine_coarsen_identity(self, b, r):
        assert b.refine(r).coarsen(r) == b

    @given(boxes_2d(), st.integers(min_value=1, max_value=4))
    def test_refine_scales_cells(self, b, r):
        assert b.refine(r).ncells == b.ncells * r * r


class TestGrowShiftSplit:
    def test_grow(self):
        assert Box((2, 2), (4, 4)).grow(1) == Box((1, 1), (5, 5))

    def test_grow_anisotropic(self):
        assert Box((2, 2), (4, 4)).grow((1, 0)) == Box((1, 2), (5, 4))

    def test_shrink_inverted_raises(self):
        with pytest.raises(ValueError, match="inverted"):
            Box((0, 0), (2, 2)).grow(-2)

    def test_shift(self):
        assert Box((0, 0), (2, 2)).shift((3, -1)) == Box((3, -1), (5, 1))

    def test_split(self):
        lo, hi = Box((0, 0), (4, 4)).split(0, 1)
        assert lo == Box((0, 0), (1, 4))
        assert hi == Box((1, 0), (4, 4))

    def test_split_at_edge_gives_empty(self):
        lo, hi = Box((0, 0), (4, 4)).split(1, 0)
        assert lo.empty
        assert hi == Box((0, 0), (4, 4))

    def test_split_out_of_range(self):
        with pytest.raises(ValueError):
            Box((0, 0), (4, 4)).split(0, 5)
        with pytest.raises(ValueError):
            Box((0, 0), (4, 4)).split(2, 1)

    def test_chop(self):
        pieces = Box((0, 0), (10, 2)).chop(0, 4)
        assert [p.shape[0] for p in pieces] == [4, 4, 2]
        assert sum(p.ncells for p in pieces) == 20

    def test_tile_exact(self):
        tiles = Box((0, 0), (4, 4)).tile((2, 2))
        assert len(tiles) == 4
        assert sum(t.ncells for t in tiles) == 16

    def test_tile_ragged(self):
        tiles = Box((0, 0), (5, 3)).tile((2, 2))
        assert sum(t.ncells for t in tiles) == 15

    @given(
        boxes_2d(max_coord=12),
        st.tuples(st.integers(1, 5), st.integers(1, 5)),
    )
    @settings(max_examples=60, deadline=None)
    def test_tile_partition_property(self, b, shape):
        tiles = b.tile(shape)
        assert sum(t.ncells for t in tiles) == b.ncells
        for i, t in enumerate(tiles):
            assert b.contains_box(t)
            for u in tiles[i + 1 :]:
                assert not t.intersects(u)

    def test_cells_iteration(self):
        cells = list(Box((0, 0), (2, 2)).cells())
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestMergeCoalesce:
    def test_merge_bounding(self):
        a = Box((0, 0), (2, 2))
        b = Box((4, 4), (6, 6))
        assert a.merge_bounding(b) == Box((0, 0), (6, 6))

    def test_can_coalesce_abutting(self):
        assert Box((0, 0), (2, 2)).can_coalesce(Box((2, 0), (4, 2)))
        assert not Box((0, 0), (2, 2)).can_coalesce(Box((2, 1), (4, 3)))

    def test_can_coalesce_identical(self):
        b = Box((0, 0), (2, 2))
        assert b.can_coalesce(b)

    def test_bounding_box_helper(self):
        bb = bounding_box([Box((0, 0), (1, 1)), Box((3, 2), (5, 4))])
        assert bb == Box((0, 0), (5, 4))

    def test_bounding_box_empty_input(self):
        assert bounding_box([]) is None
        assert bounding_box([Box((1, 1), (1, 1))]) is None


class TestSerialization:
    @given(boxes_2d(allow_empty=True))
    def test_json_roundtrip(self, b):
        assert Box.from_json(b.to_json()) == b
