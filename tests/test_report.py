"""Tests for the ASCII figure rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ascii_chart,
    figure1,
    figure_app,
    render_figure1,
    render_figure_app,
    render_regret,
)


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"a": np.array([0.0, 0.5, 1.0])}, height=4)
        lines = out.splitlines()
        assert len(lines) == 4 + 2  # body + axis + legend
        assert "a" in lines[-1]
        body = "\n".join(lines[:-2])  # exclude axis and legend
        assert body.count("*") == 3

    def test_two_series_two_markers(self):
        out = ascii_chart(
            {"x": np.array([0.0, 1.0]), "y": np.array([1.0, 0.0])}, height=5
        )
        assert "*" in out and "o" in out

    def test_constant_series(self):
        out = ascii_chart({"c": np.full(5, 2.0)})
        body = "\n".join(out.splitlines()[:-2])
        assert body.count("*") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": np.array([1.0]), "b": np.array([1.0, 2.0])})
        with pytest.raises(ValueError):
            ascii_chart({"a": np.array([])})
        with pytest.raises(ValueError):
            ascii_chart({"a": np.array([1.0])}, height=1)

    def test_explicit_range(self):
        out = ascii_chart({"a": np.array([0.2, 0.4])}, ymin=0.0, ymax=1.0)
        assert "1.000" in out and "0.000" in out


class TestRenderers:
    def test_render_figure_app(self):
        fig = figure_app("bl2d", scale="small", nprocs=4)
        text = render_figure_app(fig, figure_number=5)
        assert "Figure 5" in text
        assert "BL2D" in text
        assert "beta_m" in text and "beta_C" in text
        assert "corr(beta_m, migration)" in text

    def test_render_figure1(self):
        fig = figure1(scale="small", nprocs=4)
        text = render_figure1(fig)
        assert "Figure 1" in text
        assert "load imbalance" in text

    def test_render_regret(self):
        text = render_regret({"static-a": 2.0, "meta": 0.1})
        lines = text.splitlines()
        assert "meta" in lines[1]  # sorted ascending
        assert "#" in lines[1] and "#" in lines[2]
