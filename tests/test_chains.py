"""Tests for the chains-on-chains 1-D partitioning solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.partition import exact_chains, greedy_chains, segments_to_ranks


weights_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(0, 40),
    elements=st.floats(0, 100, allow_nan=False),
)


def max_segment(weights: np.ndarray, bounds: np.ndarray) -> float:
    return max(
        (weights[bounds[p] : bounds[p + 1]].sum() for p in range(bounds.size - 1)),
        default=0.0,
    )


class TestGreedyChains:
    def test_uniform_split(self):
        bounds = greedy_chains(np.ones(8), 4)
        np.testing.assert_array_equal(bounds, [0, 2, 4, 6, 8])

    def test_single_part(self):
        bounds = greedy_chains(np.ones(5), 1)
        np.testing.assert_array_equal(bounds, [0, 5])

    def test_more_parts_than_items(self):
        bounds = greedy_chains(np.ones(2), 4)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert (np.diff(bounds) >= 0).all()

    def test_empty_weights(self):
        bounds = greedy_chains(np.array([]), 3)
        assert bounds.tolist() == [0, 0, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            greedy_chains(np.array([-1.0]), 2)

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            greedy_chains(np.ones(4), 0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            greedy_chains(np.ones((2, 2)), 2)

    @given(weights_arrays, st.integers(1, 8))
    @settings(max_examples=150)
    def test_valid_bounds(self, w, p):
        bounds = greedy_chains(w, p)
        assert bounds.size == p + 1
        assert bounds[0] == 0 and bounds[-1] == w.size
        assert (np.diff(bounds) >= 0).all()


class TestExactChains:
    def test_optimal_on_known_case(self):
        # [3,1,1,3] into 2: best max is 4 (3+1 | 1+3).
        w = np.array([3.0, 1.0, 1.0, 3.0])
        bounds = exact_chains(w, 2)
        assert max_segment(w, bounds) == 4.0

    def test_greedy_can_be_beaten(self):
        # Greedy cuts at the prefix >= total/2 = 5 -> [9] [1 9] worse than
        # the optimal [9 1][9].
        w = np.array([9.0, 1.0, 9.0])
        g = max_segment(w, greedy_chains(w, 2))
        e = max_segment(w, exact_chains(w, 2))
        assert e <= g
        assert e == 10.0

    @given(weights_arrays, st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_exact_never_worse_than_greedy(self, w, p):
        g = max_segment(w, greedy_chains(w, p))
        e = max_segment(w, exact_chains(w, p))
        assert e <= g + 1e-9

    @given(weights_arrays, st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_exact_lower_bound(self, w, p):
        """Bottleneck >= max(total/p, max single weight)."""
        bounds = exact_chains(w, p)
        lower = max(w.sum() / p if w.size else 0.0, w.max() if w.size else 0.0)
        assert max_segment(w, bounds) >= lower - 1e-9

    @given(weights_arrays, st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_exact_matches_bruteforce_small(self, w, p):
        if w.size > 10:
            w = w[:10]
        bounds = exact_chains(w, p)
        achieved = max_segment(w, bounds)
        # Brute-force optimum by dynamic programming.
        n = w.size
        prefix = np.concatenate(([0.0], np.cumsum(w)))
        INF = float("inf")
        dp = np.full((p + 1, n + 1), INF)
        dp[0, 0] = 0.0
        for parts in range(1, p + 1):
            for end in range(n + 1):
                for start in range(end + 1):
                    seg = prefix[end] - prefix[start]
                    cand = max(dp[parts - 1, start], seg)
                    if cand < dp[parts, end]:
                        dp[parts, end] = cand
        optimum = dp[p, n]
        assert achieved <= optimum + 1e-6


class TestSegmentsToRanks:
    def test_expansion(self):
        ranks = segments_to_ranks(np.array([0, 2, 2, 5]), 5)
        assert ranks.tolist() == [0, 0, 2, 2, 2]

    def test_empty(self):
        ranks = segments_to_ranks(np.array([0, 0]), 0)
        assert ranks.size == 0
