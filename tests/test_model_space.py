"""Tests for trade-off 2, the classification space and the state sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import (
    ClassificationPoint,
    GridSizeTracker,
    StateSampler,
    StateTrajectory,
    Tradeoff2Model,
)


class TestGridSizeTracker:
    def test_running_max(self):
        t = GridSizeTracker()
        assert t.observe(100) == pytest.approx(1.0)
        assert t.observe(50) == pytest.approx(0.5)
        assert t.observe(200) == pytest.approx(1.0)
        assert t.max_cells == 200

    def test_zero_start(self):
        t = GridSizeTracker()
        assert t.observe(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GridSizeTracker().observe(-1)


class TestTradeoff2Model:
    def test_no_need_no_request(self):
        m = Tradeoff2Model()
        s = m.evaluate((0.0, 0.0, 0.0), 1000, 1.0, 10.0)
        assert s.requested_fraction == 0.0
        assert s.requested_seconds == 0.0
        assert s.dimension2 == 0.0  # anything on offer wins

    def test_max_need_tiny_slot(self):
        m = Tradeoff2Model(slack=0.1)
        s = m.evaluate((1.0, 1.0, 1.0), 10_000, 1.0, 1e-9)
        assert s.dimension2 > 0.99  # must optimize speed

    def test_grid_size_scales_request(self):
        """Section 4.2: same penalties at a grid-size peak request more."""
        m = Tradeoff2Model()
        at_peak = m.evaluate((0.5, 0.5, 0.5), 1000, 1.0, 1.0)
        at_trough = m.evaluate((0.5, 0.5, 0.5), 1000, 0.1, 1.0)
        assert at_peak.requested_seconds > at_trough.requested_seconds
        assert at_peak.dimension2 >= at_trough.dimension2

    def test_longer_interval_offers_more(self):
        """Section 4.3: infrequent invocation -> greater claimable slot."""
        m = Tradeoff2Model()
        rare = m.evaluate((0.5, 0.5, 0.5), 1000, 1.0, 100.0)
        frequent = m.evaluate((0.5, 0.5, 0.5), 1000, 1.0, 0.001)
        assert rare.offered_seconds > frequent.offered_seconds
        assert rare.dimension2 < frequent.dimension2

    def test_break_even_at_equal(self):
        m = Tradeoff2Model(slack=1.0, quality_cost_per_cell=1.0)
        s = m.evaluate((1.0, 1.0, 1.0), 100, 1.0, 100.0)
        assert s.dimension2 == pytest.approx(0.5)

    def test_degenerate_zero_everything(self):
        m = Tradeoff2Model()
        s = m.evaluate((0.0, 0.0, 0.0), 0, 0.0, 0.0)
        assert s.dimension2 == 0.5

    def test_validation(self):
        m = Tradeoff2Model()
        with pytest.raises(ValueError):
            m.evaluate((1.5, 0.0, 0.0), 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            m.evaluate((0.0, 0.0, 0.0), 10, 2.0, 1.0)
        with pytest.raises(ValueError):
            m.evaluate((0.0, 0.0, 0.0), 10, 1.0, -1.0)
        with pytest.raises(ValueError):
            Tradeoff2Model(slack=0.0)
        with pytest.raises(ValueError):
            Tradeoff2Model(quality_cost_per_cell=0.0)


class TestClassificationPoint:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            ClassificationPoint(1.5, 0.0, 0.0)

    def test_octants(self):
        assert ClassificationPoint(0.1, 0.1, 0.1).octant() == 0
        assert ClassificationPoint(0.9, 0.1, 0.1).octant() == 1
        assert ClassificationPoint(0.1, 0.9, 0.1).octant() == 2
        assert ClassificationPoint(0.9, 0.9, 0.9).octant() == 7

    def test_octant_threshold(self):
        p = ClassificationPoint(0.4, 0.4, 0.4)
        assert p.octant(threshold=0.3) == 7
        with pytest.raises(ValueError):
            p.octant(threshold=1.0)

    def test_distance(self):
        a = ClassificationPoint(0.0, 0.0, 0.0)
        b = ClassificationPoint(1.0, 0.0, 0.0)
        assert a.distance(b) == pytest.approx(1.0)

    def test_as_array(self):
        p = ClassificationPoint(0.2, 0.4, 0.6)
        np.testing.assert_allclose(p.as_array(), [0.2, 0.4, 0.6])


class TestStateTrajectory:
    def make(self) -> StateTrajectory:
        return StateTrajectory(
            [
                ClassificationPoint(0.1, 0.2, 0.3),
                ClassificationPoint(0.2, 0.2, 0.3),
                ClassificationPoint(0.9, 0.8, 0.7),
            ]
        )

    def test_series(self):
        tr = self.make()
        np.testing.assert_allclose(tr.series(1), [0.1, 0.2, 0.9])
        np.testing.assert_allclose(tr.series(3), [0.3, 0.3, 0.7])
        with pytest.raises(ValueError):
            tr.series(4)

    def test_arc_length(self):
        tr = self.make()
        assert tr.arc_length() > 0
        assert StateTrajectory([ClassificationPoint(0, 0, 0)]).arc_length() == 0.0

    def test_octant_transitions(self):
        tr = self.make()
        assert tr.octant_transitions() == 1

    def test_append_and_container(self):
        tr = StateTrajectory()
        tr.append(ClassificationPoint(0.5, 0.5, 0.5))
        assert len(tr) == 1
        assert tr[0].dim1 == 0.5
        assert list(iter(tr))


class TestStateSampler:
    def test_sample_counts(self, small_traces):
        sampler = StateSampler(nprocs=4)
        samples = sampler.sample_trace(small_traces["bl2d"])
        assert len(samples) == len(small_traces["bl2d"])

    def test_first_beta_m_zero(self, small_traces):
        sampler = StateSampler(nprocs=4)
        samples = sampler.sample_trace(small_traces["bl2d"])
        assert samples[0].beta_m == 0.0

    def test_all_penalties_in_range(self, small_traces):
        sampler = StateSampler(nprocs=4)
        for name, tr in small_traces.items():
            for s in sampler.sample_trace(tr):
                assert 0.0 <= s.beta_l <= 1.0
                assert 0.0 <= s.beta_c <= 1.0
                assert 0.0 <= s.beta_m <= 1.0

    def test_penalty_series_shapes(self, small_traces):
        sampler = StateSampler(nprocs=4)
        ps = sampler.penalty_series(small_traces["sc2d"])
        n = len(small_traces["sc2d"])
        for arr in (ps.beta_l, ps.beta_c, ps.beta_m, ps.dim1, ps.dim2, ps.dim3):
            assert arr.shape == (n,)
        assert (ps.dim3 == ps.beta_m).all()

    def test_trajectory_matches_samples(self, small_traces):
        sampler = StateSampler(nprocs=4)
        traj = sampler.trajectory(small_traces["sc2d"])
        assert len(traj) == len(small_traces["sc2d"])

    def test_denominator_option_plumbed(self, small_traces):
        cur = StateSampler(nprocs=4, migration_denominator="current")
        prev = StateSampler(nprocs=4, migration_denominator="previous")
        a = cur.penalty_series(small_traces["sc2d"]).beta_m
        b = prev.penalty_series(small_traces["sc2d"]).beta_m
        assert not np.allclose(a, b)  # sc2d grid size changes, so they differ

    def test_invocation_interval_scales_with_workload(self):
        sampler = StateSampler(nprocs=4)
        assert sampler.invocation_interval(2000) > sampler.invocation_interval(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            StateSampler(steps_per_snapshot=0)
        with pytest.raises(ValueError):
            StateSampler(nprocs=0)
