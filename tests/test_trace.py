"""Tests for the trace substrate (snapshots, container, serialization)."""

from __future__ import annotations

import pytest

from repro.trace import Trace, TraceStep


class TestTraceStep:
    def test_json_roundtrip(self, simple_hierarchy):
        snap = TraceStep(step=4, time=0.25, hierarchy=simple_hierarchy)
        back = TraceStep.from_json(snap.to_json())
        assert back.step == 4
        assert back.time == 0.25
        assert back.hierarchy == simple_hierarchy


class TestTrace:
    def make_trace(self, simple_hierarchy, shifted_hierarchy) -> Trace:
        return Trace(
            "demo",
            [
                TraceStep(0, 0.0, simple_hierarchy),
                TraceStep(4, 0.5, shifted_hierarchy),
            ],
            metadata={"k": 1},
        )

    def test_container_protocol(self, simple_hierarchy, shifted_hierarchy):
        tr = self.make_trace(simple_hierarchy, shifted_hierarchy)
        assert len(tr) == 2
        assert tr[1].step == 4
        assert [s.step for s in tr] == [0, 4]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Trace("demo", [])

    def test_non_monotone_rejected(self, simple_hierarchy):
        steps = [
            TraceStep(4, 0.0, simple_hierarchy),
            TraceStep(4, 0.1, simple_hierarchy),
        ]
        with pytest.raises(ValueError, match="strictly increasing"):
            Trace("demo", steps)

    def test_consecutive_pairs(self, simple_hierarchy, shifted_hierarchy):
        tr = self.make_trace(simple_hierarchy, shifted_hierarchy)
        pairs = list(tr.consecutive_pairs())
        assert len(pairs) == 1
        assert pairs[0][0].step == 0 and pairs[0][1].step == 4

    def test_stats(self, simple_hierarchy, shifted_hierarchy):
        tr = self.make_trace(simple_hierarchy, shifted_hierarchy)
        stats = tr.stats()
        assert stats.nsteps == 2
        assert stats.min_cells == min(
            simple_hierarchy.ncells, shifted_hierarchy.ncells
        )
        assert stats.max_levels == 3
        assert stats.to_json()["nsteps"] == 2

    def test_json_roundtrip(self, simple_hierarchy, shifted_hierarchy):
        tr = self.make_trace(simple_hierarchy, shifted_hierarchy)
        back = Trace.from_json(tr.to_json())
        assert back.name == tr.name
        assert back.metadata == {"k": 1}
        assert back.hierarchies() == tr.hierarchies()

    def test_save_load_plain(self, tmp_path, simple_hierarchy, shifted_hierarchy):
        tr = self.make_trace(simple_hierarchy, shifted_hierarchy)
        path = tmp_path / "trace.json"
        tr.save(path)
        back = Trace.load(path)
        assert back.hierarchies() == tr.hierarchies()

    def test_save_load_gzip(self, tmp_path, simple_hierarchy, shifted_hierarchy):
        tr = self.make_trace(simple_hierarchy, shifted_hierarchy)
        path = tmp_path / "trace.json.gz"
        tr.save(path)
        back = Trace.load(path)
        assert back.hierarchies() == tr.hierarchies()
        # Compressed files should actually be gzip.
        import gzip

        with gzip.open(path) as fh:
            fh.read(16)

    def test_real_trace_roundtrip(self, tmp_path, small_traces):
        tr = small_traces["sc2d"]
        path = tmp_path / "sc2d.json.gz"
        tr.save(path)
        back = Trace.load(path)
        assert len(back) == len(tr)
        assert back.hierarchies() == tr.hierarchies()
