"""End-to-end 3-D coverage: tp3d traces through the whole stack.

The acceptance bar of the dimension-generalization refactor: a 3-D trace
replays under the domain-SFC partitioner (both curves), Nature+Fable and
the ArMADA classifier schedule, with every distribution passing
:meth:`PartitionResult.validate` and the simulator producing finite,
sensible metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import TraceGenConfig, build_hierarchy, generate_trace, make_application
from repro.clustering import gradient_indicator
from repro.meta.armada import ArmadaClassifier
from repro.model import (
    communication_penalty,
    load_imbalance_penalty,
    migration_penalty,
)
from repro.partition import (
    DomainSfcPartitioner,
    NaturePlusFable,
    PatchBasedPartitioner,
    StickyRepartitioner,
    column_workloads,
)
from repro.simulator import TraceSimulator
from repro.trace import Trace


@pytest.fixture(scope="module")
def trace3d() -> Trace:
    cfg = TraceGenConfig(
        base_shape=(8, 8, 8), max_levels=3, nsteps=12, regrid_interval=4
    )
    return generate_trace(make_application("tp3d", shape=(32, 32, 32)), cfg)


class TestTrace3D:
    def test_hierarchies_are_3d_and_valid(self, trace3d):
        assert len(trace3d) == 4
        for snap in trace3d:
            assert snap.hierarchy.ndim == 3
            snap.hierarchy.validate()

    def test_refinement_happens(self, trace3d):
        assert all(snap.hierarchy.nlevels >= 2 for snap in trace3d)

    def test_json_roundtrip(self, trace3d):
        again = Trace.from_json(trace3d.to_json())
        assert [s.hierarchy for s in again] == [s.hierarchy for s in trace3d]

    def test_deterministic(self, trace3d):
        cfg = TraceGenConfig(
            base_shape=(8, 8, 8), max_levels=3, nsteps=12, regrid_interval=4
        )
        again = generate_trace(make_application("tp3d", shape=(32, 32, 32)), cfg)
        assert [s.hierarchy for s in again] == [s.hierarchy for s in trace3d]


PARTITIONERS = [
    DomainSfcPartitioner(curve="hilbert", unit_size=2),
    DomainSfcPartitioner(curve="morton", unit_size=2, exact=True),
    NaturePlusFable(),
    PatchBasedPartitioner(strategy="lpt"),
    StickyRepartitioner(DomainSfcPartitioner(curve="hilbert")),
]


@pytest.mark.parametrize("part", PARTITIONERS, ids=lambda p: repr(p.describe()))
class TestPartitioners3D:
    def test_replay_validates_every_step(self, trace3d, part):
        previous = None
        for snap in trace3d:
            result = part.partition(snap.hierarchy, 8, previous)
            result.validate(snap.hierarchy)
            previous = result

    def test_loads_cover_workload(self, trace3d, part):
        h = trace3d[-1].hierarchy
        result = part.partition(h, 8)
        assert result.loads(h).sum() == pytest.approx(h.workload)


class TestDomainSfc3D:
    def test_column_workloads_shape_and_total(self, trace3d):
        h = trace3d[-1].hierarchy
        weights = column_workloads(h, unit_size=2)
        assert weights.shape == (4, 4, 4)
        assert weights.sum() == pytest.approx(h.workload)

    def test_zero_interlevel_communication(self, trace3d):
        """Strictly domain-based: whole columns land on one rank."""
        sim = TraceSimulator()
        part = DomainSfcPartitioner(curve="hilbert")
        for snap in trace3d:
            result = part.partition(snap.hierarchy, 8)
            metrics = sim.measure_step(snap.hierarchy, result, None, None)
            assert metrics.interlevel_cells == 0


class TestSimulator3D:
    def test_static_replay_metrics_finite(self, trace3d):
        sim = TraceSimulator()
        res = sim.run(trace3d, DomainSfcPartitioner(), 8)
        assert len(res.steps) == len(trace3d)
        for s in res.steps:
            assert s.load_imbalance >= 1.0
            assert s.comm_cells >= 0
            assert np.isfinite(s.total_seconds) and s.total_seconds > 0

    def test_armada_schedule_replays(self, trace3d):
        """The ArMADA classifier drives a 3-D trace end to end."""
        sim = TraceSimulator()
        sched = ArmadaClassifier()
        res = sim.run_scheduled(trace3d, sched, 8)
        assert len(res.steps) == len(trace3d)
        assert len(sched.history) == len(trace3d)
        assert all(0 <= o < 8 for o in sched.history)

    def test_armada_validates_every_step(self, trace3d):
        sched = ArmadaClassifier()
        previous = None
        for i, snap in enumerate(trace3d):
            part = sched(i, snap, previous)
            result = part.partition(snap.hierarchy, 8, previous)
            result.validate(snap.hierarchy)
            previous = result


class TestPenalties3D:
    def test_migration_penalty_in_range(self, trace3d):
        values = [
            migration_penalty(a.hierarchy, b.hierarchy)
            for a, b in zip(trace3d, trace3d.steps[1:])
        ]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert any(v > 0.0 for v in values)

    def test_ab_initio_penalties_in_range(self, trace3d):
        for snap in trace3d:
            bc = communication_penalty(snap.hierarchy, nprocs=8)
            bl = load_imbalance_penalty(snap.hierarchy)
            assert 0.0 <= bc <= 1.0
            assert 0.0 <= bl <= 1.0


class TestBuildHierarchy3D:
    def test_peak_refined_to_max_depth(self):
        cfg = TraceGenConfig(base_shape=(8, 8, 8), max_levels=3)
        ind = np.zeros((32, 32, 32))
        ind[14:18, 14:18, 14:18] = 1.0
        h = build_hierarchy(ind, cfg)
        assert h.nlevels == 3
        h.validate()

    def test_cluster_params_ndim_threaded(self):
        cfg = TraceGenConfig(base_shape=(8, 8, 8))
        assert cfg.cluster.ndim == 3

    def test_dimension_mismatch_rejected(self):
        cfg = TraceGenConfig(base_shape=(8, 8, 8))
        with pytest.raises(ValueError, match="indicator"):
            build_hierarchy(np.zeros((32, 32)), cfg)

    def test_nesting_random_fields(self):
        rng = np.random.default_rng(9)
        cfg = TraceGenConfig(base_shape=(8, 8, 8), max_levels=3)
        for _ in range(3):
            field = rng.random((32, 32, 32))
            for axis in range(3):
                field = 0.5 * (field + np.roll(field, 1, axis))
            h = build_hierarchy(gradient_indicator(field), cfg)
            h.validate()
