"""Tests for the always-on metrics plane and the crash flight recorder.

Covers the registry contract (labels, histograms, collectors, thread
safety under concurrent increments), the Prometheus text exposition
(render -> parse round-trip, label escaping), the HTTP endpoints and
atomic file snapshots, the flight recorder's bounded ring and crash
dumps (including a real SIGKILLed worker via ``--die-after-claims``),
the ``repro health`` threshold checks and exit codes, the clamped
cluster-status ages, and the ``repro top --json`` / ``repro report
--timings`` surfaces.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import JobQueue, ResultStore, cli, trace_spec
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    MetricsServer,
    cluster_status_doc,
    evaluate_health,
    find_crash_dumps,
    load_crash_dump,
    load_metrics_snapshots,
    metrics_registry,
    parse_prometheus,
    render_blackbox,
    render_cluster_status,
    render_prometheus,
    render_timings,
    write_metrics_files,
)
from repro.telemetry.profile import aggregate_timings

from test_backends import _spawn_worker


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_counter_gauge_and_labels():
    reg = MetricsRegistry()
    reg.inc("repro_jobs_total", outcome="completed")
    reg.inc("repro_jobs_total", 2, outcome="completed")
    reg.inc("repro_jobs_total", outcome="failed")
    reg.set("repro_depth", 7, layer=0)
    assert reg.counter_value("repro_jobs_total", outcome="completed") == 3
    assert reg.counter_value("repro_jobs_total", outcome="failed") == 1
    assert reg.counter_value("repro_jobs_total", outcome="missing") == 0
    snap = reg.snapshot(run_collectors=False)
    names = {(c["name"], tuple(sorted(c["labels"].items())))
             for c in snap["counters"]}
    assert ("repro_jobs_total", (("outcome", "completed"),)) in names
    assert snap["gauges"] == [
        {"name": "repro_depth", "labels": {"layer": "0"}, "value": 7.0}
    ]


def test_set_total_is_absolute():
    reg = MetricsRegistry()
    reg.set_total("repro_pair_index_builds_total", 5)
    reg.set_total("repro_pair_index_builds_total", 9)
    assert reg.counter_value("repro_pair_index_builds_total") == 9


def test_invalid_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.inc("bad-name")
    with pytest.raises(ValueError):
        reg.inc("ok_name", **{"bad-label": 1})


def test_histogram_bucketing():
    reg = MetricsRegistry()
    bounds = (0.1, 1.0, 10.0)
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        reg.observe("repro_lat_seconds", value, buckets=bounds)
    [hist] = reg.snapshot(run_collectors=False)["histograms"]
    assert hist["bounds"] == [0.1, 1.0, 10.0]
    assert hist["counts"] == [1, 2, 1, 1]  # last slot is +Inf overflow
    assert hist["count"] == 5
    assert hist["sum"] == pytest.approx(56.05)


def test_histogram_bounds_pinned_by_first_observation():
    reg = MetricsRegistry()
    reg.observe("repro_x_seconds", 1.0, buckets=(1.0, 2.0))
    reg.observe("repro_x_seconds", 1.5)  # later calls may omit bounds
    [hist] = reg.snapshot(run_collectors=False)["histograms"]
    assert hist["counts"] == [1, 1, 0]
    with pytest.raises(ValueError):
        reg.observe("repro_bad_seconds", 1.0, buckets=(2.0, 1.0))


def test_registry_thread_safety_under_concurrent_increments():
    reg = MetricsRegistry()
    threads = 8
    per_thread = 1000

    def worker():
        for _ in range(per_thread):
            reg.inc("repro_contended_total")
            reg.observe("repro_contended_seconds", 0.01, buckets=(1.0,))

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert reg.counter_value("repro_contended_total") == threads * per_thread
    [hist] = reg.snapshot(run_collectors=False)["histograms"]
    assert hist["count"] == threads * per_thread
    assert hist["counts"][0] == threads * per_thread


def test_collectors_run_at_snapshot_and_never_raise():
    reg = MetricsRegistry()
    reg.add_collector("ok", lambda r: r.set_total("repro_ok_total", 4))
    reg.add_collector("boom", lambda r: 1 / 0)
    snap = reg.snapshot()
    assert any(c["name"] == "repro_ok_total" for c in snap["counters"])


def test_global_registry_exports_pair_and_store_cache_counters():
    snap = metrics_registry().snapshot()
    names = {c["name"] for c in snap["counters"]}
    # Collector-sourced series: the pair-kernel frame and the store
    # read cache are always visible, even at zero.
    assert "repro_pair_index_builds_total" in names
    assert "repro_pair_index_reuses_total" in names
    assert "repro_store_read_cache_hits_total" in names
    assert "repro_store_read_cache_misses_total" in names


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

def test_prometheus_render_parse_round_trip():
    reg = MetricsRegistry()
    reg.inc("repro_jobs_total", 3, outcome="completed")
    reg.set("repro_queue_depth", 5, depth=0)
    for value in (0.05, 0.5, 5.0):
        reg.observe("repro_job_seconds", value, buckets=(0.1, 1.0))
    text = render_prometheus(reg.snapshot(run_collectors=False))
    doc = parse_prometheus(text)
    assert doc["types"]["repro_jobs_total"] == "counter"
    assert doc["types"]["repro_queue_depth"] == "gauge"
    assert doc["types"]["repro_job_seconds"] == "histogram"
    by_name = {}
    for sample in doc["samples"]:
        by_name.setdefault(sample["name"], []).append(sample)
    [jobs] = by_name["repro_jobs_total"]
    assert jobs["labels"] == {"outcome": "completed"} and jobs["value"] == 3
    buckets = {
        s["labels"]["le"]: s["value"]
        for s in by_name["repro_job_seconds_bucket"]
    }
    # Cumulative buckets, +Inf last.
    assert buckets["0.1"] == 1 and buckets["1"] == 2 and buckets["+Inf"] == 3
    assert by_name["repro_job_seconds_count"][0]["value"] == 3
    assert by_name["repro_job_seconds_sum"][0]["value"] == pytest.approx(5.55)


def test_prometheus_label_escaping_round_trip():
    reg = MetricsRegistry()
    tricky = 'quote " backslash \\ newline \n end'
    reg.inc("repro_esc_total", path=tricky)
    text = render_prometheus(reg.snapshot(run_collectors=False))
    [sample] = parse_prometheus(text)["samples"]
    assert sample["labels"]["path"] == tricky


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("orphan_sample 1\n")  # no # TYPE
    with pytest.raises(ValueError):
        parse_prometheus("# TYPE x counter\nx notanumber\n")


# ---------------------------------------------------------------------------
# HTTP endpoints + file snapshots
# ---------------------------------------------------------------------------

def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode()


def test_metrics_server_endpoints():
    reg = MetricsRegistry()
    reg.inc("repro_http_total", 2)
    health_doc = {"status": "ok", "worker_id": "w-test"}
    with MetricsServer(registry=reg, health=lambda: health_doc) as server:
        base = f"http://127.0.0.1:{server.port}"
        status, text = _get(f"{base}/metrics")
        assert status == 200
        parsed = parse_prometheus(text)
        assert any(
            s["name"] == "repro_http_total" and s["value"] == 2
            for s in parsed["samples"]
        )
        status, body = _get(f"{base}/metrics.json")
        assert status == 200
        assert json.loads(body)["schema"] == 1
        status, body = _get(f"{base}/healthz")
        assert status == 200 and json.loads(body)["worker_id"] == "w-test"
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/nope")
        assert err.value.code == 404


def test_metrics_server_unhealthy_is_503():
    with MetricsServer(
        registry=MetricsRegistry(),
        health=lambda: {"status": "unhealthy", "reason": "stalled"},
    ) as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"http://127.0.0.1:{server.port}/healthz")
        assert err.value.code == 503
        assert json.loads(err.value.read().decode())["reason"] == "stalled"


def test_write_and_load_metrics_snapshots(tmp_path):
    reg = MetricsRegistry()
    reg.inc("repro_snap_total", 7)
    prom = write_metrics_files(tmp_path, registry=reg)
    assert prom.is_file() and prom.suffix == ".prom"
    parse_prometheus(prom.read_text(encoding="utf-8"))  # valid by parse
    [snap] = load_metrics_snapshots(tmp_path)
    assert any(
        c["name"] == "repro_snap_total" and c["value"] == 7
        for c in snap["counters"]
    )
    # Re-writing replaces (stable per-process names), never accumulates.
    write_metrics_files(tmp_path, registry=reg)
    assert len(load_metrics_snapshots(tmp_path)) == 1


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

def test_flight_ring_is_bounded():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record("job", "start", seq=i)
    events = rec.events()
    assert len(events) == 4
    assert [e["seq"] for e in events] == [6, 7, 8, 9]


def test_flight_capacity_zero_disables(monkeypatch):
    rec = FlightRecorder(capacity=0)
    rec.record("job", "start")
    assert rec.events() == []


def test_flight_dump_and_render(tmp_path):
    rec = FlightRecorder(capacity=8)
    rec.record("claim", "abcdef123456", worker="w-1")
    rec.record("job", "start", key="abcdef123456")
    path = rec.dump(
        tmp_path, "unit-test", error="boom",
        extra={"worker_id": "w-1", "job": "abcdef123456"},
    )
    assert path.parent == tmp_path / "telemetry" / "crash"
    [found] = find_crash_dumps(tmp_path)
    assert found == path
    doc = load_crash_dump(path)
    assert doc["reason"] == "unit-test" and doc["error"] == "boom"
    assert len(doc["events"]) == 2
    assert doc["metrics"]["schema"] == 1  # metrics ride along in the dump
    text = render_blackbox(doc)
    assert "unit-test" in text and "abcdef123456"[:12] in text
    assert "w-1" in text


def test_worker_die_after_claims_leaves_crash_dump(tmp_path):
    """The acceptance path: a SIGKILLed worker leaves a renderable dump."""
    store = ResultStore(tmp_path / "store")
    queue = JobQueue.for_store(store)
    spec = trace_spec("tp2d", "small")
    queue.enqueue(spec)
    proc = _spawn_worker(store.root, "--die-after-claims", "1")
    try:
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - hung worker
            proc.kill()
            proc.wait()
    assert proc.returncode == -9  # SIGKILLed itself while holding the lease
    dumps = find_crash_dumps(store.root)
    assert dumps, "fault-injection SIGKILL must dump the flight recorder"
    doc = load_crash_dump(dumps[-1])
    assert doc["reason"] == "fault-injection-sigkill"
    assert doc["job"] == spec.key()
    kinds = {(e["kind"], e["name"]) for e in doc["events"]}
    assert ("claim", spec.key()[:12]) in kinds
    render_blackbox(doc)  # renders without raising
    # The lease the dead worker held is still on disk: `repro health`
    # must flag it (and the dump) and exit nonzero.
    assert queue.leases(), "SIGKILL must leave the lease behind"
    time.sleep(0.3)  # let the orphaned lease's heartbeat go stale
    verdict = evaluate_health(store, queue, lease_timeout=0.1)
    assert verdict["status"] == "unhealthy"
    failed = {c["name"] for c in verdict["checks"] if not c["ok"]}
    assert "crash_dumps" in failed
    assert "stale_leases" in failed or "stale_workers" in failed
    # blackbox CLI renders it; health CLI exits nonzero.
    assert cli.main(["blackbox", "--cache-dir", str(store.root)]) == 0
    assert cli.main(
        ["health", "--cache-dir", str(store.root), "--lease-timeout", "0.1"]
    ) == 1
    # After triage, --clear makes health's crash check green again.
    assert cli.main(
        ["blackbox", "--cache-dir", str(store.root), "--clear"]
    ) == 0
    assert not find_crash_dumps(store.root)


# ---------------------------------------------------------------------------
# cluster status / health
# ---------------------------------------------------------------------------

class _FakeStore:
    def __init__(self, root):
        self.root = root


def _queue_with_worker(tmp_path, heartbeat_at: float) -> JobQueue:
    queue = JobQueue(tmp_path / "queue")
    queue.register_worker("w-test", now=heartbeat_at)
    return queue


def test_cluster_status_clamps_negative_beat_age(tmp_path):
    """Cross-host clock skew must render as 'just now', not negative."""
    now = time.time()
    queue = _queue_with_worker(tmp_path, heartbeat_at=now + 120.0)
    store = _FakeStore(tmp_path)
    doc = cluster_status_doc(store, queue, now=now)
    [row] = doc["workers"]
    assert row["beat_age_s"] == 0.0
    rendered = render_cluster_status(store, queue, now=now)
    assert "0.0s" in rendered and "-120.0s" not in rendered


def test_cluster_status_clamps_negative_lease_ages(tmp_path):
    now = time.time()
    queue = JobQueue(tmp_path / "queue")
    queue.claim("k" * 64, "w-skew", 0, now=now + 60.0)
    doc = cluster_status_doc(_FakeStore(tmp_path), queue, now=now)
    [lease] = doc["leases"]
    assert lease["age_s"] == 0.0 and lease["beat_age_s"] == 0.0


def test_evaluate_health_ok_on_quiet_cluster(tmp_path):
    queue = _queue_with_worker(tmp_path, heartbeat_at=time.time())
    verdict = evaluate_health(_FakeStore(tmp_path), queue)
    assert verdict["status"] == "ok"
    assert all(c["ok"] for c in verdict["checks"])


def test_evaluate_health_flags_stale_worker_and_stall(tmp_path):
    queue = _queue_with_worker(tmp_path, heartbeat_at=time.time() - 3600.0)
    queue.enqueue(trace_spec("tp2d", "small"))
    verdict = evaluate_health(_FakeStore(tmp_path), queue)
    assert verdict["status"] == "unhealthy"
    failed = {c["name"] for c in verdict["checks"] if not c["ok"]}
    assert failed == {"stale_workers", "queue_stall"}


def test_evaluate_health_flags_retry_spike(tmp_path):
    queue = JobQueue(tmp_path / "queue")
    queue.register_worker("w-live")
    for attempt in range(3):
        queue.fail("a" * 64, "w-live", attempt, "traceback")
    verdict = evaluate_health(
        _FakeStore(tmp_path), queue, max_failures=3
    )
    failed = {c["name"] for c in verdict["checks"] if not c["ok"]}
    assert "retry_spikes" in failed
    # A looser threshold passes.
    assert evaluate_health(
        _FakeStore(tmp_path), queue, max_failures=10
    )["status"] == "ok"


def test_top_json_snapshot(tmp_path, capsys):
    queue = _queue_with_worker(tmp_path / "store", heartbeat_at=time.time())
    queue.enqueue(trace_spec("tp2d", "small"))
    assert cli.main([
        "top", "--json", "--cache-dir", str(tmp_path / "store"),
        "--queue-dir", str(queue.root),
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["tickets_open"] == 1
    assert doc["workers"][0]["worker_id"] == "w-test"
    assert doc["workers"][0]["state"] == "alive"
    with pytest.raises(SystemExit):
        cli.main([
            "top", "--json", "--watch", "1",
            "--cache-dir", str(tmp_path / "store"),
        ])


def test_worker_rates_join_status_by_host_pid(tmp_path):
    reg = MetricsRegistry()
    reg.started_at -= 30.0  # 30s of uptime
    reg.inc("repro_worker_jobs_total", 10, outcome="completed")
    write_metrics_files(tmp_path, registry=reg)
    [snap] = load_metrics_snapshots(tmp_path)
    queue = JobQueue(tmp_path / "queue")
    queue.register_worker("w-rate")
    # The registry entry carries this process's host/pid — the same
    # identity the snapshot stamps, so the join lands.
    doc = cluster_status_doc(_FakeStore(tmp_path), queue)
    [row] = doc["workers"]
    assert row["jobs_per_min"] == pytest.approx(
        10.0 / (snap["written_at"] - snap["started_at"]) * 60.0
    )
    assert "j/min" in render_cluster_status(_FakeStore(tmp_path), queue)


# ---------------------------------------------------------------------------
# report --timings surfacing
# ---------------------------------------------------------------------------

def test_timings_surface_fleet_metrics(tmp_path):
    # One hand-crafted run profile (the spans side)...
    profile_dir = tmp_path / "telemetry" / "runs" / "ab"
    profile_dir.mkdir(parents=True)
    (profile_dir / ("ab" + "0" * 62 + ".json")).write_text(json.dumps({
        "schema": 1, "key": "ab" + "0" * 62, "kind": "sim",
        "label": "tp2d small", "wall_s": 1.0,
        "pair_counters": {}, "spans": [],
    }), encoding="utf-8")
    # ...plus one metrics snapshot (the fleet side).
    reg = MetricsRegistry()
    reg.set_total("repro_store_read_cache_hits_total", 30)
    reg.set_total("repro_store_read_cache_misses_total", 10)
    reg.set_total("repro_pair_index_builds_total", 2)
    reg.set_total("repro_pair_index_reuses_total", 6)
    reg.inc("repro_worker_jobs_total", 5, outcome="completed")
    write_metrics_files(tmp_path, registry=reg)
    doc = aggregate_timings(tmp_path)
    assert doc["metrics"]["repro_store_read_cache_hits_total"] == 30
    assert doc["metrics_snapshots"] == 1
    text = render_timings(doc)
    assert "store read cache: 30 hits / 10 misses (75% hit rate)" in text
    assert "pair-index reuse: 2 builds" in text and "6 reuses" in text
    assert "(75% served warm)" in text
    assert "worker jobs completed: 5" in text
