"""End-to-end integration tests: kernels -> traces -> model + simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import pearson
from repro.meta import MetaScheduler
from repro.model import StateSampler, migration_penalty
from repro.partition import NaturePlusFable, StickyRepartitioner, DomainSfcPartitioner
from repro.simulator import TraceSimulator, migration_cells


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["tp2d", "bl2d", "sc2d", "rm2d"])
    def test_full_pipeline(self, small_traces, name):
        """Trace -> model penalties and simulator metrics, all consistent."""
        trace = small_traces[name]
        sampler = StateSampler(nprocs=4)
        model = sampler.penalty_series(trace)
        sim = TraceSimulator()
        actual = sim.run(trace, NaturePlusFable(), 4)
        n = len(trace)
        assert model.beta_m.shape == (n,)
        assert len(actual.steps) == n
        # The model's normalization and the simulator's agree on sizes.
        for snap, step in zip(trace, actual.steps):
            assert step.ncells == snap.hierarchy.ncells
            assert step.workload == snap.hierarchy.workload

    def test_beta_m_matches_paper_formula_on_trace(self, small_traces):
        """Recompute beta_m independently via raw box intersections."""
        from repro.geometry import intersection_volume

        trace = small_traces["sc2d"]
        sampler = StateSampler(nprocs=4)
        series = sampler.penalty_series(trace).beta_m
        for i, (prev, cur) in enumerate(trace.consecutive_pairs()):
            hp, hc = prev.hierarchy, cur.hierarchy
            overlap = 0
            for l in range(min(hp.nlevels, hc.nlevels)):
                overlap += intersection_volume(
                    hp.levels[l].patches.boxes, hc.levels[l].patches.boxes
                )
            expected = 1.0 - overlap / hc.ncells
            assert series[i + 1] == pytest.approx(expected)

    def test_sticky_reduces_measured_migration_everywhere(self, small_traces):
        """Trade-off 3 in action: the sticky wrapper cuts migration on all
        four kernels (what the meta-partitioner exploits when beta_m is
        high)."""
        sim = TraceSimulator()
        for name, trace in small_traces.items():
            fresh = sim.run(trace, NaturePlusFable(), 4)
            sticky = sim.run(
                trace, StickyRepartitioner(NaturePlusFable(), migration_budget=0.1), 4
            )
            assert (
                sticky.series("migration_cells").sum()
                <= fresh.series("migration_cells").sum()
            ), name

    def test_migration_penalty_nonnegative_correlation(self, small_traces):
        """On the oscillatory kernels the penalty must co-move with the
        measured migration even at test scale."""
        sim = TraceSimulator()
        sampler = StateSampler(nprocs=4)
        for name in ("sc2d",):
            trace = small_traces[name]
            beta_m = sampler.penalty_series(trace).beta_m[1:]
            actual = sim.run(trace, NaturePlusFable(), 4).series(
                "relative_migration"
            )[1:]
            if beta_m.std() > 0 and actual.std() > 0:
                assert pearson(beta_m, actual) > -0.2, name

    def test_meta_scheduler_never_catastrophic(self, small_traces):
        """The dynamic PAC should stay within 2x of the static default."""
        sim = TraceSimulator()
        for name, trace in small_traces.items():
            static = sim.run(trace, NaturePlusFable(), 4).total_execution_seconds
            sched = MetaScheduler(sampler=StateSampler(nprocs=4))
            dynamic = sim.run_scheduled(trace, sched, 4).total_execution_seconds
            assert dynamic <= 2.0 * static, name

    def test_trace_roundtrip_preserves_model_outputs(self, tmp_path, small_traces):
        """Serialization must not change any penalty value."""
        trace = small_traces["rm2d"]
        path = tmp_path / "rm2d.json.gz"
        trace.save(path)
        from repro.trace import Trace

        back = Trace.load(path)
        sampler = StateSampler(nprocs=4)
        a = sampler.penalty_series(trace)
        b = sampler.penalty_series(back)
        np.testing.assert_allclose(a.beta_m, b.beta_m)
        np.testing.assert_allclose(a.beta_c, b.beta_c)
        np.testing.assert_allclose(a.beta_l, b.beta_l)

    def test_symmetric_migration_definitions(self, small_traces):
        """migration_penalty(a, b) == 0 iff hierarchies cover identically;
        simulator migration is 0 when partitions are identical."""
        trace = small_traces["bl2d"]
        h = trace[0].hierarchy
        assert migration_penalty(h, h) == 0.0
        part = DomainSfcPartitioner()
        res = part.partition(h, 4)
        assert migration_cells(res, res) == 0
