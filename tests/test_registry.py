"""Tests for the unified component registry and the engine's name layer.

Covers the redesigned public surface: decorator registration, live
mapping views, parameter-schema introspection and validation,
duplicate/unknown names, entry-point plugin discovery, the deprecation
shims for the PR-2 ``make_*`` helpers, and the hash-stability guarantee
the redesign ships under (existing store keys must not move).
"""

from __future__ import annotations

import pytest

import repro.registry as registry_module
from repro.apps import APPLICATIONS, ShadowApplication, make_application
from repro.engine import (
    ENGINE_API_VERSION,
    STATIC_SUITE,
    create,
    describe,
    make_machine,
    make_partitioner,
    make_schedule,
    penalties_spec,
    registry,
    resolve_machine,
    sim_spec,
    trace_spec,
)
from repro.engine.spec import _normalize_pairs
from repro.partition import NaturePlusFable, PatchBasedPartitioner
from repro.simulator import MachineModel


@pytest.fixture()
def scratch_name():
    """A temporary registry name, removed again after the test."""
    name = "test-scratch-component"
    yield name
    for kind in ("app", "partitioner", "machine", "schedule", "scale"):
        registry(kind).unregister(name)


class TestRegistryBasics:
    def test_live_mapping_view(self):
        apps = registry("app")
        assert apps is APPLICATIONS
        assert "bl2d" in apps
        assert "sc3d" in apps  # registered purely via the decorator API
        assert apps["bl2d"].ndim == 2
        assert set(dict(apps)) == set(apps.names())

    def test_decorator_registration_and_unregister(self, scratch_name):
        @registry_module.register(
            "partitioner", scratch_name, description="scratch", tags=("test",)
        )
        def _factory(knob: int = 3):
            return ("scratch", knob)

        partitioners = registry("partitioner")
        assert scratch_name in partitioners
        assert partitioners[scratch_name] is _factory  # decorator returns obj
        assert create("partitioner", scratch_name, knob=5) == ("scratch", 5)
        assert scratch_name in partitioners.names(tag="test")
        assert partitioners.unregister(scratch_name)
        assert scratch_name not in partitioners

    def test_duplicate_name_rejected(self, scratch_name):
        machines = registry("machine")
        machines.register(scratch_name, MachineModel)
        with pytest.raises(ValueError, match="already registered"):
            machines.register(scratch_name, MachineModel)
        machines.register(scratch_name, MachineModel, replace=True)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            create("partitioner", "warp-drive")
        with pytest.raises(ValueError, match="unknown machine scenario"):
            create("machine", "cray-1")
        with pytest.raises(ValueError, match="unknown application"):
            make_application("nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown component kind"):
            registry("frobnicator")

    def test_param_validation(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            create("partitioner", "patch-lpt", bogus=1)
        # The wrapper factories validate against the wrapped class.
        with pytest.raises(ValueError, match="unknown parameter"):
            create("partitioner", "nature+fable", warp=9)
        with pytest.raises(ValueError, match="curve"):
            # 'curve' is bound by the domain-sfc-hilbert entry itself.
            create("partitioner", "domain-sfc-hilbert", curve="morton")
        part = create("partitioner", "patch-lpt", strategy="round-robin")
        assert isinstance(part, PatchBasedPartitioner)
        assert part.strategy == "round-robin"

    def test_describe_schema(self):
        doc = describe("partitioner", "nature+fable")
        assert doc["kind"] == "partitioner"
        params = {p["name"]: p for p in doc["params"]}
        assert params["atomic_unit"]["default"] == 4
        assert not params["atomic_unit"]["required"]
        everything = registry_module.describe()
        assert set(everything) >= {
            "app", "partitioner", "schedule", "machine", "scale"
        }
        assert "sc3d" in everything["app"]
        assert {"paper", "small"} <= set(everything["scale"])

    def test_static_suite_is_registered(self):
        partitioners = registry("partitioner")
        for name in STATIC_SUITE:
            assert name in partitioners


class TestAppRegistration:
    def test_runtime_registered_kernel_is_sweepable(self, scratch_name):
        class TinyKernel(ShadowApplication):
            name = scratch_name
            ndim = 2

            def __init__(self, shape=(16, 16)):
                self._shape = tuple(shape)
                self._t = 0.0

            @property
            def shape(self):
                return self._shape

            @property
            def time(self):
                return self._t

            def advance(self):
                self._t += 1.0

            def indicator_field(self):
                import numpy as np

                return np.zeros(self._shape)

        registry("app").register(scratch_name, TinyKernel)
        assert scratch_name in APPLICATIONS
        app = make_application(scratch_name)
        assert isinstance(app, TinyKernel)
        # Specs resolve the new kernel by name, end to end.
        spec = trace_spec(scratch_name, "small")
        assert spec.ndim == 2
        assert len(spec.key()) == 64
        # ... and the enumeration surfaces see it too: the CLI's 2d/all
        # aliases are built from app_names().
        from repro.experiments.workloads import APP_NAMES, app_names

        assert scratch_name in app_names(2)
        assert scratch_name in app_names()
        assert app_names(2)[: len(APP_NAMES)] == APP_NAMES  # canonical first

    def test_factory_function_apps_supported(self, scratch_name):
        from repro.apps import Transport2D

        def tiny_factory(**kwargs):
            return Transport2D(**kwargs)

        tiny_factory.ndim = 2
        registry("app").register(scratch_name, tiny_factory)
        spec = trace_spec(scratch_name, "small")  # must not crash
        assert spec.ndim == 2
        assert isinstance(make_application(scratch_name), Transport2D)

    def test_factory_without_ndim_fails_with_clear_error(self, scratch_name):
        registry("app").register(scratch_name, lambda **kw: None)
        with pytest.raises(ValueError, match="'ndim' attribute"):
            trace_spec(scratch_name, "small")
        from repro.experiments.workloads import app_names, workload_ndim

        with pytest.raises(ValueError, match="'ndim' attribute"):
            workload_ndim(scratch_name)
        assert scratch_name not in app_names()  # skipped, not misclassified

    def test_custom_group_does_not_suppress_default_discovery(
        self, monkeypatch
    ):
        monkeypatch.setattr(registry_module, "_loaded_groups", set())
        monkeypatch.setattr(
            "importlib.metadata.entry_points", lambda group=None: []
        )
        registry_module.load_plugins("my.custom.group")
        # The default group is still pending: the next implicit call scans it.
        assert "my.custom.group" in registry_module._loaded_groups
        assert registry_module.PLUGIN_GROUP not in registry_module._loaded_groups

    def test_custom_scale_gets_consistent_shadow_shape(self, scratch_name):
        from repro.apps import TraceGenConfig
        from repro.experiments.workloads import SHADOW_FACTOR, shadow_shape

        @registry_module.register("scale", scratch_name)
        def _large_scale(ndim: int = 2) -> TraceGenConfig:
            return TraceGenConfig(
                base_shape=(128,) * ndim, max_levels=6, nsteps=200
            )

        # No silent fallback to the small shadow grid: the resolution
        # follows the scale's own base grid.
        assert shadow_shape(scratch_name, 2) == (128 * SHADOW_FACTOR,) * 2
        # The built-in scales keep their historical (hash-stable) values.
        assert shadow_shape("paper", 2) == (256, 256)
        assert shadow_shape("small", 2) == (64, 64)
        assert shadow_shape("paper", 3) == (64, 64, 64)
        assert shadow_shape("small", 3) == (32, 32, 32)

    def test_entry_point_discovery_resolves_misses(
        self, scratch_name, monkeypatch
    ):
        class FakeEntryPoint:
            name = "test-plugin"

            @staticmethod
            def load():
                def _register():
                    registry("machine").register(
                        scratch_name, MachineModel, replace=True
                    )

                return _register

        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: [FakeEntryPoint()] if group else [],
        )
        monkeypatch.setattr(registry_module, "_loaded_groups", set())
        # The miss triggers one discovery pass, then the name resolves.
        machine = create("machine", scratch_name)
        assert isinstance(machine, MachineModel)

    def test_enumeration_discovers_plugins(self, scratch_name, monkeypatch):
        class FakeEntryPoint:
            name = "test-enum-plugin"

            @staticmethod
            def load():
                def _register():
                    registry("partitioner").register(
                        scratch_name, PatchBasedPartitioner, replace=True
                    )

                return _register

        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: [FakeEntryPoint()] if group else [],
        )
        monkeypatch.setattr(registry_module, "_loaded_groups", set())
        # Iteration / describe must surface the plugin without a miss.
        assert scratch_name in tuple(registry("partitioner"))
        assert scratch_name in describe("partitioner")

    def test_broken_plugin_is_skipped_with_warning(self, monkeypatch):
        class BrokenEntryPoint:
            name = "broken-plugin"

            @staticmethod
            def load():
                raise RuntimeError("boom")

        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: [BrokenEntryPoint()],
        )
        monkeypatch.setattr(registry_module, "_loaded_groups", set())
        with pytest.warns(RuntimeWarning, match="broken-plugin"):
            registry_module.load_plugins(reload=True)


class TestDeprecationShims:
    def test_make_partitioner_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="make_partitioner"):
            part = make_partitioner("nature+fable")
        assert isinstance(part, NaturePlusFable)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="schedule"):
                make_partitioner("meta-partitioner")

    def test_make_schedule_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="make_schedule"):
            schedule = make_schedule("armada-octant", MachineModel(), 8)
        assert schedule is not None
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown schedule"):
                make_schedule("nope", MachineModel(), 8)

    def test_make_machine_accepts_instances_and_names(self):
        # The old type hint lied about MachineModel instances; the fixed
        # surface accepts names, override mappings and built models.
        model = MachineModel(bandwidth_bytes_per_s=1.0)
        with pytest.warns(DeprecationWarning, match="make_machine"):
            assert make_machine(model) is model
        assert resolve_machine(model) is model
        assert resolve_machine("net-starved").bandwidth_bytes_per_s == 5.0e7
        assert (
            resolve_machine({"latency_seconds": 1e-6}).latency_seconds == 1e-6
        )

    def test_engine_all_is_clean(self):
        import repro.engine as engine

        assert isinstance(ENGINE_API_VERSION, str)
        for name in engine.__all__:
            assert not name.startswith("_"), name
            assert getattr(engine, name) is not None, name

    def test_registry_name_is_not_module_shadowed(self):
        # `repro.engine.registry` is unambiguously the accessor function;
        # the built-in registrations live in repro.engine.components.
        import repro.engine
        import repro.engine.components as components

        assert callable(repro.engine.registry)
        assert repro.engine.registry("app") is APPLICATIONS
        assert components.STATIC_SUITE == STATIC_SUITE


class TestNormalizePairs:
    def test_sorts_by_key_only(self):
        # Heterogeneous values used to reach tuple comparison and raise
        # TypeError when keys tied; key-only sorting never compares them.
        pairs = [("b", "text"), ("a", 3), ("b", 7)]
        out = _normalize_pairs(pairs)
        assert out == (("a", 3), ("b", "text"), ("b", 7))

    def test_mapping_order_invariant(self):
        a = _normalize_pairs({"x": 1, "curve": "hilbert"})
        b = _normalize_pairs({"curve": "hilbert", "x": 1})
        assert a == b == (("curve", "hilbert"), ("x", 1))

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="param names"):
            _normalize_pairs([(1, "x")])


class TestHashStability:
    """The redesign must not move existing store keys (PR-2 baseline)."""

    BASELINE = {
        ("trace", "bl2d"): (
            lambda: trace_spec("bl2d", "small"),
            "4c6d45adccfc483e03c2f2a97da8d0b44f8089394a0626691db12420eb3c77a8",
        ),
        ("sim", "default"): (
            lambda: sim_spec("bl2d", "small"),
            "eeda8601cf7164108e3509fdfe1ef68fef7b1684d12bd778bf97ee63473c944a",
        ),
        ("sim", "params"): (
            lambda: sim_spec(
                "bl2d",
                "small",
                partitioner="patch-lpt",
                params={"strategy": "lpt", "split_oversized": True},
            ),
            "bfae602724d42d36aee80a804ce2c7ff7e4afe35b2147bc1c2a2b4522b515b4a",
        ),
        ("sim", "machine"): (
            lambda: sim_spec("tp2d", "paper", nprocs=32, machine="net-starved"),
            "295dd2d5b8f49ba5aa7d2e76b9b0afbffc00ce2a039bdfdff10a9d4ded309555",
        ),
        ("penalties", "denominator"): (
            lambda: penalties_spec(
                "sc2d", "small", migration_denominator="max"
            ),
            "9b4770025c5d55b6143379122d712aa8b9a0c52aabfeb50d3f4ba32ba6b05fb6",
        ),
    }

    @pytest.mark.parametrize("case", sorted(BASELINE), ids=str)
    def test_keys_pinned_to_pr2_baseline(self, case):
        build, expected = self.BASELINE[case]
        assert build().key() == expected
