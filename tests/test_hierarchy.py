"""Tests for PatchLevel and GridHierarchy invariants."""

from __future__ import annotations

import pytest

from repro.geometry import Box
from repro.hierarchy import GridHierarchy, PatchLevel


class TestPatchLevel:
    def test_counts_and_workload(self):
        level = PatchLevel(2, [Box((0, 0), (4, 4)), Box((8, 8), (10, 10))])
        assert level.ncells == 20
        assert level.npatches == 2
        assert level.time_refinement_weight() == 4
        assert level.workload == 80

    def test_base_level_weight(self):
        assert PatchLevel(0, [Box((0, 0), (4, 4))], ratio=1).workload == 16

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            PatchLevel(-1, [])

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            PatchLevel(0, [], ratio=0)

    def test_validate_overlap(self):
        level = PatchLevel(1, [Box((0, 0), (4, 4)), Box((2, 2), (6, 6))])
        with pytest.raises(ValueError):
            level.validate()

    def test_equality_order_insensitive(self):
        a = PatchLevel(1, [Box((0, 0), (2, 2)), Box((4, 4), (6, 6))])
        b = PatchLevel(1, [Box((4, 4), (6, 6)), Box((0, 0), (2, 2))])
        assert a == b

    def test_json_roundtrip(self):
        level = PatchLevel(1, [Box((0, 0), (2, 2))], ratio=2)
        back = PatchLevel.from_json(level.to_json())
        assert back == level
        assert back.ratio == 2


class TestGridHierarchy:
    def test_sizes(self, simple_hierarchy):
        assert simple_hierarchy.nlevels == 3
        assert simple_hierarchy.ncells == 256 + 128 + 64
        # workload = 256*1 + 128*2 + 64*4
        assert simple_hierarchy.workload == 256 + 256 + 256
        assert simple_hierarchy.npatches == 3

    def test_level_domains(self, simple_hierarchy):
        assert simple_hierarchy.level_domain(0) == Box((0, 0), (16, 16))
        assert simple_hierarchy.level_domain(2) == Box((0, 0), (64, 64))
        assert simple_hierarchy.cumulative_ratio(2) == 4

    def test_cumulative_ratio_out_of_range(self, simple_hierarchy):
        with pytest.raises(ValueError):
            simple_hierarchy.cumulative_ratio(3)

    def test_validate_ok(self, simple_hierarchy):
        simple_hierarchy.validate()

    def test_validate_detects_bad_nesting(self):
        domain = Box((0, 0), (8, 8))
        bad = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((0, 0), (4, 4))], ratio=2),
                # Level 2 escapes level 1's footprint (level-1 covers
                # [0,8)^2 of the level-2 space).
                PatchLevel(2, [Box((12, 12), (16, 16))], ratio=2),
            ],
        )
        with pytest.raises(ValueError, match="not nested"):
            bad.validate()

    def test_validate_detects_incomplete_base(self):
        domain = Box((0, 0), (8, 8))
        with pytest.raises(ValueError, match="base level"):
            GridHierarchy(
                domain, [PatchLevel(0, [Box((0, 0), (4, 8))], ratio=1)]
            ).validate()

    def test_validate_detects_escaping_patch(self):
        domain = Box((0, 0), (8, 8))
        bad = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((10, 10), (20, 20))], ratio=2),
            ],
        )
        with pytest.raises(ValueError, match="outside level domain"):
            bad.validate()

    def test_noncontiguous_levels_rejected(self):
        domain = Box((0, 0), (8, 8))
        with pytest.raises(ValueError, match="contiguous"):
            GridHierarchy(
                domain,
                [PatchLevel(0, [domain], ratio=1), PatchLevel(2, [], ratio=2)],
            )

    def test_domain_must_be_anchored(self):
        with pytest.raises(ValueError, match="origin"):
            GridHierarchy(
                Box((1, 0), (9, 8)), [PatchLevel(0, [Box((1, 0), (9, 8))], ratio=1)]
            )

    def test_base_only(self, flat_hierarchy):
        assert flat_hierarchy.nlevels == 1
        assert flat_hierarchy.ncells == 256
        flat_hierarchy.validate()

    def test_level_mask(self, simple_hierarchy):
        mask1 = simple_hierarchy.level_mask(1)
        assert mask1.shape == (32, 32)
        assert mask1.sum() == 128

    def test_refined_mask_on_base(self, simple_hierarchy):
        mask = simple_hierarchy.refined_mask_on_base()
        assert mask.shape == (16, 16)
        assert mask.sum() == 32  # the 16x8 level-1 patch coarsened by 2 -> 8x4

    def test_refined_mask_flat(self, flat_hierarchy):
        assert not flat_hierarchy.refined_mask_on_base().any()

    def test_with_levels(self, simple_hierarchy):
        flat = simple_hierarchy.with_levels([simple_hierarchy.levels[0]])
        assert flat.nlevels == 1
        assert flat.domain == simple_hierarchy.domain

    def test_json_roundtrip(self, simple_hierarchy):
        back = GridHierarchy.from_json(simple_hierarchy.to_json())
        assert back == simple_hierarchy

    def test_equality(self, simple_hierarchy, shifted_hierarchy):
        assert simple_hierarchy != shifted_hierarchy
        assert simple_hierarchy == GridHierarchy.from_json(
            simple_hierarchy.to_json()
        )

    def test_nesting_buffer_strictness(self):
        """With a positive buffer the fine level must stay away from the
        parent boundary; a patch flush against it fails."""
        domain = Box((0, 0), (8, 8))
        h = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((0, 0), (8, 8))], ratio=2),
                PatchLevel(2, [Box((0, 0), (4, 4))], ratio=2),
            ],
        )
        h.validate(nesting_buffer=0)
        # Level-2 patch [0,4)^2 sits at the corner of level-1 [0,8)^2 (in
        # the coarse frame [0,2)^2 inside [0,4)^2): still properly nested
        # even with a buffer because level-1 touches the domain boundary,
        # where the buffer is clipped.
        h.validate(nesting_buffer=1)
