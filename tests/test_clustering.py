"""Tests for Berger--Rigoutsos clustering and the flagging utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering import (
    ClusterParams,
    buffer_flags,
    cluster_flags,
    downsample_mask,
    flags_from_indicator,
    gradient_indicator,
    restrict_flags_to_mask,
)
from repro.geometry import Box, rasterize_mask


class TestClusterParams:
    def test_defaults(self):
        p = ClusterParams()
        assert 0 < p.efficiency <= 1
        assert p.granularity >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"efficiency": 0.0},
            {"efficiency": 1.5},
            {"granularity": 0},
            {"granularity": 4, "max_cells": 8},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ClusterParams(**kwargs)


class TestClusterFlags:
    def test_empty_flags(self):
        assert cluster_flags(np.zeros((16, 16), dtype=bool)) == []

    def test_single_block(self):
        flags = np.zeros((16, 16), dtype=bool)
        flags[4:8, 4:8] = True
        boxes = cluster_flags(flags)
        assert len(boxes) == 1
        assert boxes[0] == Box((4, 4), (8, 8))

    def test_two_separated_blocks_split_at_hole(self):
        flags = np.zeros((16, 16), dtype=bool)
        flags[1:4, 1:4] = True
        flags[10:14, 10:14] = True
        boxes = cluster_flags(flags)
        assert len(boxes) == 2
        total = sum(b.ncells for b in boxes)
        assert total == 9 + 16

    def test_covers_all_flags(self):
        rng = np.random.default_rng(7)
        flags = rng.random((32, 32)) > 0.85
        boxes = cluster_flags(flags)
        covered = rasterize_mask(boxes, Box((0, 0), (32, 32)))
        assert (covered | ~flags).all()  # flags => covered

    def test_boxes_disjoint(self):
        rng = np.random.default_rng(9)
        flags = rng.random((32, 32)) > 0.7
        boxes = cluster_flags(flags)
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)

    def test_efficiency_met_or_unsplittable(self):
        rng = np.random.default_rng(11)
        flags = rng.random((64, 64)) > 0.8
        params = ClusterParams(efficiency=0.7, granularity=2)
        boxes = cluster_flags(flags, params)
        for b in boxes:
            sub = flags[b.lo[0] : b.hi[0], b.lo[1] : b.hi[1]]
            eff = sub.sum() / sub.size
            splittable = any(s >= 2 * params.granularity for s in b.shape)
            assert eff >= params.efficiency or not splittable

    def test_max_cells_respected_when_splittable(self):
        flags = np.ones((32, 32), dtype=bool)
        boxes = cluster_flags(flags, ClusterParams(max_cells=64, granularity=2))
        assert all(b.ncells <= 64 for b in boxes)
        assert sum(b.ncells for b in boxes) == 32 * 32

    def test_l_shaped_region(self):
        flags = np.zeros((16, 16), dtype=bool)
        flags[0:12, 0:4] = True
        flags[0:4, 4:12] = True
        boxes = cluster_flags(flags, ClusterParams(efficiency=0.9))
        covered = rasterize_mask(boxes, Box((0, 0), (16, 16)))
        assert (covered | ~flags).all()
        # High efficiency forces the L to split rather than bound.
        assert len(boxes) >= 2

    def test_dtype_coercion(self):
        flags = np.zeros((8, 8), dtype=np.int64)
        flags[2:4, 2:4] = 1
        boxes = cluster_flags(flags)
        assert sum(b.ncells for b in boxes) >= 4

    @given(
        hnp.arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(4, 24), st.integers(4, 24)
            ),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_cover_and_disjoint_property(self, flags):
        boxes = cluster_flags(flags)
        domain = Box((0, 0), flags.shape)
        covered = rasterize_mask(boxes, domain)
        assert (covered | ~flags).all()
        for i, a in enumerate(boxes):
            assert domain.contains_box(a)
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)


class TestIndicator:
    def test_constant_field_zero(self):
        ind = gradient_indicator(np.full((8, 8), 3.5))
        assert (ind == 0).all()

    def test_step_detected(self):
        field = np.zeros((16, 16))
        field[8:, :] = 1.0
        ind = gradient_indicator(field)
        assert ind.max() == 1.0
        assert ind[7:9, :].max() == 1.0
        assert ind[0:4, :].max() == 0.0

    def test_normalized_range(self):
        rng = np.random.default_rng(3)
        ind = gradient_indicator(rng.random((16, 16)))
        assert 0 <= ind.min() and ind.max() == 1.0

    def test_flags_from_indicator(self):
        ind = np.linspace(0, 1, 16).reshape(4, 4)
        flags = flags_from_indicator(ind, 0.5)
        assert flags.sum() == (ind > 0.5).sum()

    def test_flags_threshold_validation(self):
        with pytest.raises(ValueError):
            flags_from_indicator(np.zeros((2, 2)), 1.5)


class TestBufferRestrictDownsample:
    def test_buffer_grows(self):
        flags = np.zeros((16, 16), dtype=bool)
        flags[8, 8] = True
        buffered = buffer_flags(flags, 2)
        assert buffered.sum() == 25

    def test_buffer_zero_identity(self):
        flags = np.zeros((8, 8), dtype=bool)
        flags[1, 1] = True
        assert (buffer_flags(flags, 0) == flags).all()

    def test_buffer_negative_rejected(self):
        with pytest.raises(ValueError):
            buffer_flags(np.zeros((4, 4), dtype=bool), -1)

    def test_restrict(self):
        flags = np.ones((4, 4), dtype=bool)
        mask = np.zeros((4, 4), dtype=bool)
        mask[:2] = True
        out = restrict_flags_to_mask(flags, mask)
        assert out.sum() == 8

    def test_restrict_shape_mismatch(self):
        with pytest.raises(ValueError):
            restrict_flags_to_mask(
                np.ones((4, 4), dtype=bool), np.ones((2, 2), dtype=bool)
            )

    def test_downsample_any(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        down = downsample_mask(mask, 4)
        assert down.shape == (2, 2)
        assert down[0, 0] and down.sum() == 1

    def test_downsample_identity(self):
        mask = np.eye(4, dtype=bool)
        assert (downsample_mask(mask, 1) == mask).all()

    def test_downsample_indivisible(self):
        with pytest.raises(ValueError):
            downsample_mask(np.zeros((5, 5), dtype=bool), 2)
