"""Tests for the paper's penalties: beta_m (section 4.4), beta_C, beta_L."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.geometry import Box
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.model import (
    communication_penalty,
    dimension1,
    load_imbalance_penalty,
    migration_penalty,
)

from tests.strategies import disjoint_boxlists


def hierarchy_from_level1(boxes, domain_size=16) -> GridHierarchy:
    domain = Box((0, 0), (domain_size, domain_size))
    level1 = [
        b.intersect(domain.refine(2))
        for b in boxes
        if b.intersect(domain.refine(2)) is not None
    ]
    return GridHierarchy(
        domain,
        [PatchLevel(0, [domain], ratio=1), PatchLevel(1, level1, ratio=2)],
    )


class TestMigrationPenalty:
    def test_identical_hierarchies_zero(self, simple_hierarchy):
        assert migration_penalty(simple_hierarchy, simple_hierarchy) == 0.0

    def test_disjoint_refinement_high(self):
        a = hierarchy_from_level1([Box((0, 0), (8, 8))])
        b = hierarchy_from_level1([Box((16, 16), (24, 24))])
        # Level 0 fully overlaps (256 cells); level 1 not at all.
        expected = 1.0 - 256 / (256 + 64)
        assert migration_penalty(a, b) == pytest.approx(expected)

    def test_hand_computed_partial_overlap(self, simple_hierarchy, shifted_hierarchy):
        # Level 0: full 256-cell overlap.  Level 1: 16x8 at (8,8) vs
        # (10,8): overlap 14x8 = 112.  Level 2: 8x8 at (20,18) vs (24,18):
        # overlap 4x8 = 32.
        overlap = 256 + 112 + 32
        expected = 1.0 - overlap / shifted_hierarchy.ncells
        assert migration_penalty(
            simple_hierarchy, shifted_hierarchy
        ) == pytest.approx(expected)

    def test_denominator_variants(self, simple_hierarchy):
        grown = hierarchy_from_level1([Box((0, 0), (32, 16))])
        small = hierarchy_from_level1([Box((0, 0), (8, 8))])
        cur = migration_penalty(small, grown, denominator="current")
        prev = migration_penalty(small, grown, denominator="previous")
        mx = migration_penalty(small, grown, denominator="max")
        for v in (cur, prev, mx):
            assert 0.0 <= v <= 1.0
        assert mx == pytest.approx(cur)  # grown is the max here

    def test_invalid_denominator(self, simple_hierarchy):
        with pytest.raises(ValueError, match="denominator"):
            migration_penalty(simple_hierarchy, simple_hierarchy, denominator="x")

    def test_growth_yields_larger_value_with_current(self):
        """Section 4.4: for |H_{t-1}| < |H_t| the |H_t| denominator is
        chosen "to yield a larger value when it is subtracted from 1" —
        a growing grid should predict *more* migration."""
        small = hierarchy_from_level1([Box((0, 0), (8, 8))])
        big = hierarchy_from_level1([Box((8, 8), (32, 32))])  # disjoint L1
        grow = migration_penalty(small, big, denominator="current")
        grow_prev = migration_penalty(small, big, denominator="previous")
        assert grow >= grow_prev - 1e-12

    @given(disjoint_boxlists(max_coord=31), disjoint_boxlists(max_coord=31))
    @settings(max_examples=60, deadline=None)
    def test_range_property(self, la, lb):
        a = hierarchy_from_level1(list(la))
        b = hierarchy_from_level1(list(lb))
        for denom in ("current", "previous", "max"):
            v = migration_penalty(a, b, denominator=denom)
            assert 0.0 <= v <= 1.0

    @given(disjoint_boxlists(max_coord=31))
    @settings(max_examples=40, deadline=None)
    def test_self_penalty_zero(self, lst):
        h = hierarchy_from_level1(list(lst))
        assert migration_penalty(h, h) == 0.0


class TestCommunicationPenalty:
    def test_range(self, simple_hierarchy):
        v = communication_penalty(simple_hierarchy, nprocs=8)
        assert 0.0 <= v <= 1.0

    def test_flat_hierarchy_small(self, flat_hierarchy):
        v = communication_penalty(flat_hierarchy, nprocs=4, fragmentation=0.0)
        # Only the base-grid hull: 4*16 faces / 256 cells.
        assert v == pytest.approx(64 / 256)

    def test_more_procs_more_penalty(self, simple_hierarchy):
        lo = communication_penalty(simple_hierarchy, nprocs=2)
        hi = communication_penalty(simple_hierarchy, nprocs=64)
        assert hi >= lo

    def test_fragmented_worse_than_compact(self):
        compact = hierarchy_from_level1([Box((0, 0), (16, 16))])
        pieces = [
            Box((2 * i, 2 * j), (2 * i + 2, 2 * j + 2))
            for i in range(0, 16, 4)
            for j in range(0, 16, 4)
        ]
        fragmented = hierarchy_from_level1(pieces)
        assert communication_penalty(
            fragmented, nprocs=4, fragmentation=0.0
        ) > communication_penalty(compact, nprocs=4, fragmentation=0.0)

    def test_surface_conventions(self, simple_hierarchy):
        patch = communication_penalty(simple_hierarchy, surface="patch")
        region = communication_penalty(simple_hierarchy, surface="region")
        assert patch >= region - 1e-12  # hull counts at least the union surface

    def test_invalid_surface(self, simple_hierarchy):
        with pytest.raises(ValueError):
            communication_penalty(simple_hierarchy, surface="volume")

    def test_invalid_params(self, simple_hierarchy):
        with pytest.raises(ValueError):
            communication_penalty(simple_hierarchy, ghost_width=-1)
        with pytest.raises(ValueError):
            communication_penalty(simple_hierarchy, nprocs=0)
        with pytest.raises(ValueError):
            communication_penalty(simple_hierarchy, fragmentation=-1.0)


class TestLoadImbalancePenalty:
    def test_uniform_refinement_zero(self):
        h = hierarchy_from_level1([Box((0, 0), (32, 32))])
        assert load_imbalance_penalty(h) == pytest.approx(0.0)

    def test_flat_hierarchy_zero(self, flat_hierarchy):
        assert load_imbalance_penalty(flat_hierarchy) == pytest.approx(0.0)

    def test_needle_high(self):
        domain = Box((0, 0), (16, 16))
        h = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((0, 0), (2, 2))], ratio=2),
                PatchLevel(2, [Box((0, 0), (4, 4))], ratio=2),
                PatchLevel(3, [Box((0, 0), (8, 8))], ratio=2),
            ],
        )
        assert load_imbalance_penalty(h) > 0.8

    def test_deeper_stack_raises_penalty(self):
        """Adding a deeper level on the same footprint concentrates the
        column workload further, raising beta_L (section 3.1's 'many
        levels of refinement' risk)."""
        domain = Box((0, 0), (16, 16))
        shallow = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((0, 0), (8, 8))], ratio=2),
            ],
        )
        deep = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((0, 0), (8, 8))], ratio=2),
                PatchLevel(2, [Box((0, 0), (8, 8))], ratio=2),
            ],
        )
        assert load_imbalance_penalty(deep) > load_imbalance_penalty(shallow)

    def test_broad_refinement_beats_narrow(self):
        """At a fixed depth, refining a larger fraction of the domain
        lowers the localization penalty."""
        narrow = hierarchy_from_level1([Box((0, 0), (8, 8))])
        broad = hierarchy_from_level1([Box((0, 0), (32, 16))])
        assert load_imbalance_penalty(broad) < load_imbalance_penalty(narrow)

    @given(disjoint_boxlists(max_coord=31))
    @settings(max_examples=40, deadline=None)
    def test_range_property(self, lst):
        h = hierarchy_from_level1(list(lst))
        assert 0.0 <= load_imbalance_penalty(h) <= 1.0


class TestDimension1:
    def test_scale_invariance(self):
        """'beta_L = beta_C = 0.1 yields the same result as 0.4' (§4.3)."""
        assert dimension1(0.1, 0.1) == dimension1(0.4, 0.4) == 0.5

    def test_extremes(self):
        assert dimension1(1.0, 0.0) == 1.0
        assert dimension1(0.0, 1.0) == 0.0

    def test_zero_zero_neutral(self):
        assert dimension1(0.0, 0.0) == 0.5

    def test_range_validation(self):
        with pytest.raises(ValueError):
            dimension1(1.5, 0.5)
        with pytest.raises(ValueError):
            dimension1(0.5, -0.1)
